"""Bill-of-Materials analysis: the §IV "Why the Raspberry Pi?" economics.

The paper reasons about the Pi's cost structure (its actual BoM is under
NDA, so the authors *estimate* from comparable ARM products): "the
processor [is] the most expensive component for around 10$, followed by
the cost of Printed Circuit Board (PCB), RAM, the Ethernet connector and
the rest of the components."  It then argues "a significant cost for
this System on Chip can be cut for a Data Centre-tuned ARM chip, by
removing most of the multimedia-related external peripherals while
adding another Ethernet PHY."

This module makes that argument computable: the estimated Model B BoM,
the SoC's internal block breakdown, and the derivation of the
hypothetical DC-tuned part.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class BomComponent:
    """One line of a bill of materials."""

    name: str
    cost_usd: float

    def __post_init__(self) -> None:
        if self.cost_usd < 0:
            raise ValueError(f"component {self.name!r} cannot have negative cost")


# The paper's ordering: processor (~$10) > PCB > RAM > Ethernet > rest.
RASPBERRY_PI_B_BOM: List[BomComponent] = [
    BomComponent("BCM2835 SoC", 10.00),
    BomComponent("PCB", 5.00),
    BomComponent("RAM (256 MB)", 4.50),
    BomComponent("Ethernet connector + PHY", 3.50),
    BomComponent("power regulation", 2.00),
    BomComponent("connectors (USB/HDMI/GPIO)", 3.00),
    BomComponent("passives + assembly", 4.00),
]

# Inside the SoC: the multimedia blocks the paper says a DC part can shed.
# Fractions of the $10 SoC cost attributable to each block (die area as a
# cost proxy; the paper lists the blocks in §IV).
SOC_BLOCK_FRACTIONS: Dict[str, float] = {
    "ARM core + caches": 0.25,
    "multimedia co-processor": 0.15,
    "HD video encode/decode": 0.20,
    "image sensing pipeline": 0.10,
    "GPU": 0.15,
    "video display unit": 0.05,
    "interconnect + IO": 0.10,
}

MULTIMEDIA_BLOCKS = (
    "multimedia co-processor",
    "HD video encode/decode",
    "image sensing pipeline",
    "GPU",
    "video display unit",
)

EXTRA_ETHERNET_PHY_USD = 1.50


def bom_total(components: List[BomComponent]) -> float:
    return sum(component.cost_usd for component in components)


def most_expensive(components: List[BomComponent]) -> BomComponent:
    return max(components, key=lambda component: component.cost_usd)


def soc_block_costs(soc_cost_usd: float = 10.0) -> Dict[str, float]:
    """Dollar cost of each SoC block under the die-area proxy."""
    total_fraction = sum(SOC_BLOCK_FRACTIONS.values())
    if abs(total_fraction - 1.0) > 1e-9:
        raise AssertionError("SoC block fractions must sum to 1")
    return {
        block: soc_cost_usd * fraction
        for block, fraction in SOC_BLOCK_FRACTIONS.items()
    }


@dataclass(frozen=True)
class DcTunedEstimate:
    """The paper's hypothetical data-centre ARM chip, priced out."""

    original_soc_usd: float
    multimedia_savings_usd: float
    extra_phy_usd: float
    tuned_soc_usd: float
    original_board_usd: float
    tuned_board_usd: float

    @property
    def board_saving_usd(self) -> float:
        return self.original_board_usd - self.tuned_board_usd

    @property
    def saving_fraction(self) -> float:
        return self.board_saving_usd / self.original_board_usd


def dc_tuned_variant(soc_cost_usd: float = 10.0) -> DcTunedEstimate:
    """Price the §IV proposal: drop the multimedia blocks, add a PHY."""
    blocks = soc_block_costs(soc_cost_usd)
    savings = sum(blocks[name] for name in MULTIMEDIA_BLOCKS)
    tuned_soc = soc_cost_usd - savings + EXTRA_ETHERNET_PHY_USD
    original_board = bom_total(RASPBERRY_PI_B_BOM)
    # Board level: swap the SoC, drop the HDMI/display connectors share
    # (half of the connector line), keep everything else.
    connector_saving = 1.5
    tuned_board = original_board - (soc_cost_usd - tuned_soc) - connector_saving
    return DcTunedEstimate(
        original_soc_usd=soc_cost_usd,
        multimedia_savings_usd=savings,
        extra_phy_usd=EXTRA_ETHERNET_PHY_USD,
        tuned_soc_usd=tuned_soc,
        original_board_usd=original_board,
        tuned_board_usd=tuned_board,
    )


def arm_license_cost_claim(units_sold: float = 8.7e9,
                           share_of_market: float = 0.32) -> Dict[str, float]:
    """§IV's ARM-economics facts: 8.7e9 chips in 2012, 32% of the market,
    license cost per device below $0.10."""
    return {
        "units_sold_2012": units_sold,
        "market_share": share_of_market,
        "license_cost_ceiling_usd": 0.10,
    }
