"""Power instrumentation and the cost model behind Table I.

"The PiCloud allows us to both isolate individual components to measure
their power consumption characteristics, or instrument directly across
the whole Cloud: we can run the PiCloud from a single trailing power
socket board" (§III).  This package provides:

* :mod:`~repro.power.meter` -- per-machine and whole-cloud power meters
  with exact (gauge-integral) energy accounting.
* :mod:`~repro.power.cooling` -- the cooling overhead model ("reportedly
  accounts for 33% of the total power consumption in Cloud DCs").
* :mod:`~repro.power.cost` -- capex/opex arithmetic and the Table I
  generator.
"""

from repro.power.bom import (
    RASPBERRY_PI_B_BOM,
    BomComponent,
    DcTunedEstimate,
    dc_tuned_variant,
)
from repro.power.cooling import CoolingModel
from repro.power.cost import CostModel, TestbedCostRow, table1_rows
from repro.power.meter import CloudPowerMeter

__all__ = [
    "BomComponent",
    "CloudPowerMeter",
    "DcTunedEstimate",
    "RASPBERRY_PI_B_BOM",
    "dc_tuned_variant",
    "CoolingModel",
    "CostModel",
    "TestbedCostRow",
    "table1_rows",
]
