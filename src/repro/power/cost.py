"""Capex/opex arithmetic and the Table I generator.

Table I of the paper compares a 56-machine commodity-x86 testbed against
the 56-Pi PiCloud:

======== =========================== ============================ ==============
Testbed  Server cost                 Power                        Needs cooling?
======== =========================== ============================ ==============
x86      $112,000 (@$2,000)          10,080 W (@180 W)            Yes
PiCloud  $1,960 (@$35)               196 W (@3.5 W)               No
======== =========================== ============================ ==============

(The paper writes the power column as "W/h"; the figures are peak watts
per machine times machine count.)  :func:`table1_rows` regenerates the
table from the hardware catalog; :class:`CostModel` extends it with
energy opex for total-cost-of-ownership sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.catalog import COMMODITY_X86_SERVER, RASPBERRY_PI_MODEL_B
from repro.hardware.specs import MachineSpec
from repro.power.cooling import CoolingModel
from repro.units import YEAR

DEFAULT_ELECTRICITY_USD_PER_KWH = 0.12


@dataclass(frozen=True)
class TestbedCostRow:
    """One row of Table I (plus derived fields)."""

    label: str
    machine_count: int
    unit_cost_usd: float
    capex_usd: float
    unit_watts: float
    total_watts: float
    needs_cooling: bool

    def as_paper_row(self) -> dict[str, str]:
        """Formatted exactly like the paper's table cells."""
        return {
            "testbed": self.label,
            "server": f"${self.capex_usd:,.0f} (@${self.unit_cost_usd:,.0f})",
            "power": f"{self.total_watts:,.0f}W/h (@{self.unit_watts:g}W/h)",
            "needs_cooling": "Yes" if self.needs_cooling else "No",
        }


def cost_row(label: str, spec: MachineSpec, count: int) -> TestbedCostRow:
    """Build a Table I row from a catalog spec."""
    if count < 1:
        raise ValueError("machine count must be >= 1")
    unit_watts = spec.power.peak_watts
    return TestbedCostRow(
        label=label,
        machine_count=count,
        unit_cost_usd=spec.unit_cost_usd,
        capex_usd=spec.unit_cost_usd * count,
        unit_watts=unit_watts,
        total_watts=unit_watts * count,
        needs_cooling=spec.power.needs_cooling,
    )


def table1_rows(count: int = 56) -> list[TestbedCostRow]:
    """Regenerate Table I for ``count`` machines (the paper uses 56)."""
    return [
        cost_row("Testbed", COMMODITY_X86_SERVER, count),
        cost_row("PiCloud", RASPBERRY_PI_MODEL_B, count),
    ]


class CostModel:
    """Total cost of ownership: capex + powered-on opex (+ cooling)."""

    def __init__(
        self,
        electricity_usd_per_kwh: float = DEFAULT_ELECTRICITY_USD_PER_KWH,
        cooling: CoolingModel | None = None,
    ) -> None:
        if electricity_usd_per_kwh < 0:
            raise ValueError("electricity price must be >= 0")
        self.electricity_usd_per_kwh = electricity_usd_per_kwh
        self.cooling = cooling or CoolingModel()

    def energy_cost_usd(self, joules: float, needs_cooling: bool) -> float:
        """Opex for measured IT energy, including cooling overhead."""
        total_joules = self.cooling.total_watts(1.0, needs_cooling) * joules
        return total_joules / 3.6e6 * self.electricity_usd_per_kwh

    def annual_opex_usd(self, spec: MachineSpec, count: int,
                        mean_utilization: float = 0.5) -> float:
        """Steady-state yearly electricity bill for a testbed."""
        it_watts = spec.power.watts_at(mean_utilization) * count
        total = self.cooling.total_watts(it_watts, spec.power.needs_cooling)
        kwh = total * YEAR / 3.6e6
        return kwh * self.electricity_usd_per_kwh

    def tco_usd(self, spec: MachineSpec, count: int, years: float,
                mean_utilization: float = 0.5) -> float:
        """Capex plus ``years`` of opex."""
        return (
            spec.unit_cost_usd * count
            + self.annual_opex_usd(spec, count, mean_utilization) * years
        )

    def payback_analysis(self, count: int = 56, years: float = 3.0) -> dict[str, float]:
        """x86-vs-Pi TCO comparison over a horizon (extends Table I)."""
        x86 = self.tco_usd(COMMODITY_X86_SERVER, count, years)
        pi = self.tco_usd(RASPBERRY_PI_MODEL_B, count, years)
        return {
            "x86_tco_usd": x86,
            "picloud_tco_usd": pi,
            "savings_usd": x86 - pi,
            "ratio": x86 / pi if pi > 0 else float("inf"),
        }
