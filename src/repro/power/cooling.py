"""Cooling overhead: the hidden multiplier on x86 testbeds.

The paper cites cooling as "reportedly ... 33% of the total power
consumption in Cloud DCs" and lists "Needs Cooling? Yes/No" as a Table I
column.  If cooling is fraction ``f`` of *total* power, then for IT draw
``P`` the cooling draw is ``P * f / (1 - f)`` -- about 0.5 W per IT watt
at f = 1/3.
"""

from __future__ import annotations


class CoolingModel:
    """Cooling draw as a fraction of total facility power."""

    def __init__(self, fraction_of_total: float = 1.0 / 3.0) -> None:
        if not (0.0 <= fraction_of_total < 1.0):
            raise ValueError("cooling fraction must be in [0, 1)")
        self.fraction_of_total = fraction_of_total

    @property
    def overhead_per_it_watt(self) -> float:
        """Cooling watts added per IT watt."""
        f = self.fraction_of_total
        return f / (1.0 - f)

    def cooling_watts(self, it_watts: float, needs_cooling: bool) -> float:
        if not needs_cooling:
            return 0.0
        return it_watts * self.overhead_per_it_watt

    def total_watts(self, it_watts: float, needs_cooling: bool) -> float:
        return it_watts + self.cooling_watts(it_watts, needs_cooling)

    def effective_pue(self, needs_cooling: bool) -> float:
        """Power Usage Effectiveness implied by this model."""
        return 1.0 + (self.overhead_per_it_watt if needs_cooling else 0.0)
