"""Whole-cloud power metering: the "single trailing power socket board".

Aggregates the per-machine power models.  Because each machine's draw is
a step-function gauge, the cloud meter's energy numbers are *exact*
integrals, not sampled approximations -- matching the paper's point that
a physical testbed gives real power data where simulators guess.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.hardware.machine import Machine


class CloudPowerMeter:
    """One socket board: every machine plugged into it."""

    def __init__(self, machines: Iterable[Machine]) -> None:
        self.machines: list[Machine] = list(machines)
        if not self.machines:
            raise ValueError("a power meter needs at least one machine")

    def add(self, machine: Machine) -> None:
        self.machines.append(machine)

    # -- instantaneous ------------------------------------------------------

    def current_watts(self) -> float:
        return sum(m.power.current_watts for m in self.machines)

    def per_machine_watts(self) -> dict[str, float]:
        """Component isolation: each machine's current draw."""
        return {m.machine_id: m.power.current_watts for m in self.machines}

    # -- integrals -----------------------------------------------------------

    def energy_joules(
        self, start: Optional[float] = None, end: Optional[float] = None
    ) -> float:
        return sum(m.power.energy_joules(start, end) for m in self.machines)

    def energy_kwh(
        self, start: Optional[float] = None, end: Optional[float] = None
    ) -> float:
        return self.energy_joules(start, end) / 3.6e6

    def mean_watts(
        self, start: Optional[float] = None, end: Optional[float] = None
    ) -> float:
        return sum(m.power.mean_watts(start, end) for m in self.machines)

    # -- claims ----------------------------------------------------------------

    def peak_possible_watts(self) -> float:
        """Nameplate worst case: every machine flat out."""
        return sum(m.spec.power.peak_watts for m in self.machines)

    def fits_single_socket(self, socket_limit_watts: float = 2300.0) -> bool:
        """Can the whole cloud run from one 10 A / 230 V socket board?

        The paper's claim for the 56-Pi cloud; trivially false for the
        x86 comparison testbed.
        """
        return self.peak_possible_watts() <= socket_limit_watts
