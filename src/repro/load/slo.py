"""SLO objectives and streaming error-budget burn-rate accounting.

Follows the SRE formulation: an objective like "99.9% of requests
under 250 ms" grants an *error budget* of ``1 - objective``; the
*burn rate* over a window is the observed bad fraction divided by the
budget, so burn 1.0 means "spending the budget exactly as fast as
allowed", burn 14.4 over an hour is the classic page-now threshold.
The tracker is fluid-native -- good/bad counts are fractional request
masses from the load engine, and trackers merge for per-service and
fleet rollups exactly like :class:`repro.telemetry.stats.LatencyHistogram`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError

#: Default burn-rate alert windows (seconds) -- scaled-down analogues of
#: the SRE book's 5m/1h/6h multiwindow alerts for simulated-minute runs.
DEFAULT_WINDOWS = (10.0, 60.0, 300.0)


@dataclass(frozen=True)
class SloObjective:
    """A latency SLO: ``objective`` of requests faster than ``threshold_s``."""

    threshold_s: float = 0.25
    objective: float = 0.999
    windows: Tuple[float, ...] = DEFAULT_WINDOWS

    def __post_init__(self) -> None:
        if self.threshold_s <= 0:
            raise ConfigurationError(
                f"threshold_s must be > 0, got {self.threshold_s}"
            )
        if not 0.0 < self.objective < 1.0:
            raise ConfigurationError(
                f"objective must be in (0, 1), got {self.objective}"
            )
        if not self.windows or any(w <= 0 for w in self.windows):
            raise ConfigurationError(
                f"windows must be positive, got {self.windows}"
            )

    @property
    def error_budget(self) -> float:
        """Allowed bad fraction: ``1 - objective``."""
        return 1.0 - self.objective


class SloTracker:
    """Streaming good/bad accounting against one :class:`SloObjective`.

    :meth:`record` takes fluid request masses stamped with simulation
    time; per-window burn rates come from a ring of (time, good, bad)
    samples so the tracker is O(window / epoch) memory regardless of
    request volume.  Peak burn per window is tracked as it happens --
    campaigns report it without replaying the timeline.
    """

    __slots__ = ("objective", "good", "bad", "_samples", "_peak_burn")

    def __init__(self, objective: SloObjective) -> None:
        self.objective = objective
        self.good = 0.0
        self.bad = 0.0
        # Chronological (t, good, bad) epoch samples for window sums.
        self._samples: List[Tuple[float, float, float]] = []
        self._peak_burn: Dict[float, float] = {w: 0.0 for w in objective.windows}

    @property
    def total(self) -> float:
        return self.good + self.bad

    def record(self, t: float, good: float, bad: float) -> None:
        """Account an epoch's request masses at simulation time ``t``."""
        if good < 0 or bad < 0:
            raise ValueError("good/bad request masses must be >= 0")
        if good == 0 and bad == 0:
            return
        if self._samples and t < self._samples[-1][0]:
            raise ValueError(
                f"samples must be recorded in time order "
                f"({t} < {self._samples[-1][0]})"
            )
        self.good += good
        self.bad += bad
        self._samples.append((t, good, bad))
        self._trim(t)
        for window in self.objective.windows:
            self._peak_burn[window] = max(
                self._peak_burn[window], self.burn_rate(window, now=t)
            )

    def _trim(self, now: float) -> None:
        """Drop samples older than the longest window (keeps memory flat)."""
        horizon = now - max(self.objective.windows)
        drop = 0
        while drop < len(self._samples) - 1 and self._samples[drop][0] < horizon:
            drop += 1
        if drop:
            del self._samples[:drop]

    def error_rate(self, window_s: Optional[float] = None,
                   now: Optional[float] = None) -> float:
        """Bad fraction overall, or within the trailing window."""
        if window_s is None:
            total = self.total
            return self.bad / total if total > 0 else 0.0
        if now is None:
            now = self._samples[-1][0] if self._samples else 0.0
        good = bad = 0.0
        for t, g, b in reversed(self._samples):
            if t < now - window_s:
                break
            good += g
            bad += b
        total = good + bad
        return bad / total if total > 0 else 0.0

    def burn_rate(self, window_s: Optional[float] = None,
                  now: Optional[float] = None) -> float:
        """Error-budget burn multiple (1.0 = spending budget exactly)."""
        return self.error_rate(window_s, now) / self.objective.error_budget

    def peak_burn_rate(self, window_s: Optional[float] = None) -> float:
        """Highest burn seen over any ``window_s`` window so far."""
        if window_s is None:
            return max(self._peak_burn.values(), default=0.0)
        if window_s not in self._peak_burn:
            raise ValueError(
                f"window {window_s} not tracked (have {self.objective.windows})"
            )
        return self._peak_burn[window_s]

    @property
    def compliant(self) -> bool:
        """True while the overall error rate is within the objective."""
        return self.error_rate() <= self.objective.error_budget + 1e-12

    def merge(self, other: "SloTracker") -> "SloTracker":
        """Fold ``other`` (same objective) into this tracker, in place.

        Window samples are interleaved by time, so merged burn-rate
        windows stay meaningful; peak burns take the element-wise max
        (a lower bound for the merged stream, exact when the sources
        cover disjoint services that peak together).
        """
        if other.objective != self.objective:
            raise ValueError(
                "cannot merge trackers with different objectives: "
                f"{self.objective} vs {other.objective}"
            )
        self.good += other.good
        self.bad += other.bad
        merged = sorted(self._samples + other._samples)
        self._samples = merged
        if merged:
            self._trim(merged[-1][0])
        for window in self.objective.windows:
            self._peak_burn[window] = max(
                self._peak_burn[window], other._peak_burn[window]
            )
        return self

    def row(self) -> Dict[str, float]:
        """Flat metrics dict (campaign/dashboard naming convention)."""
        out: Dict[str, float] = {
            "slo_threshold_s": self.objective.threshold_s,
            "slo_objective": self.objective.objective,
            "good_requests": self.good,
            "bad_requests": self.bad,
            "error_rate": self.error_rate(),
            "burn_rate": self.burn_rate(),
        }
        for window in self.objective.windows:
            out[f"peak_burn_{window:g}s"] = self.peak_burn_rate(window)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        rate = self.error_rate()
        shown = "nan" if math.isnan(rate) else f"{rate:.2e}"
        return (
            f"<SloTracker {self.objective.objective:.3%}@"
            f"{self.objective.threshold_s * 1e3:g}ms err={shown} "
            f"burn={self.burn_rate():.2f}>"
        )


@dataclass
class SloRollup:
    """Named collection of trackers with a fleet-level aggregate view."""

    trackers: Dict[str, SloTracker] = field(default_factory=dict)

    def tracker(self, name: str, objective: SloObjective) -> SloTracker:
        found = self.trackers.get(name)
        if found is None:
            found = self.trackers[name] = SloTracker(objective)
        return found

    def fleet_error_rate(self) -> float:
        good = sum(t.good for t in self.trackers.values())
        bad = sum(t.bad for t in self.trackers.values())
        total = good + bad
        return bad / total if total > 0 else 0.0

    def worst_burn(self) -> Tuple[Optional[str], float]:
        """(service, burn) with the highest overall burn rate."""
        worst_name, worst = None, 0.0
        for name in sorted(self.trackers):
            burn = self.trackers[name].burn_rate()
            if burn > worst:
                worst_name, worst = name, burn
        return worst_name, worst
