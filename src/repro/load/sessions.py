"""The fluid session model: profiles, services, and demand aggregates.

A *session* is one user's stay on a service: it issues requests at a
steady per-session rate for an (exponentially distributed, fluid) stay.
The engine never materialises sessions individually -- it tracks a
fractional *count* of concurrent sessions per (service, region) and
splits that count across (client edge switch, replica host) pairs, the
same way PR 5's routing engine batched paths per ToR pair.  One epoch
of one aggregate becomes at most one fabric flow, so kernel events
scale with ``aggregates x epochs``, never with users.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.load.slo import SloObjective
from repro.units import kib, mbit_per_s


@dataclass(frozen=True)
class ServiceProfile:
    """What one session of a service asks of the infrastructure.

    ``burst_rate`` is the nominal serialization rate of a single
    request's response when the fabric is idle (client NIC / pacing
    limit); congestion stretches the transfer component of latency
    above this baseline.  ``think_time`` effects are already folded
    into ``requests_per_session_per_s``.
    """

    request_bytes: float = 2 * kib(1)
    response_bytes: float = 32 * kib(1)
    requests_per_session_per_s: float = 0.5
    session_duration_s: float = 60.0
    service_time_s: float = 2e-3
    burst_rate: float = mbit_per_s(25)

    def __post_init__(self) -> None:
        if self.response_bytes <= 0 or self.request_bytes < 0:
            raise ConfigurationError("request/response bytes must be positive")
        if self.requests_per_session_per_s <= 0:
            raise ConfigurationError("requests_per_session_per_s must be > 0")
        if self.session_duration_s <= 0:
            raise ConfigurationError("session_duration_s must be > 0")
        if self.service_time_s < 0:
            raise ConfigurationError("service_time_s must be >= 0")
        if self.burst_rate <= 0:
            raise ConfigurationError("burst_rate must be > 0")

    @property
    def bytes_per_session_per_s(self) -> float:
        """Offered downlink bytes/s of one active session."""
        return self.requests_per_session_per_s * self.response_bytes


@dataclass
class Service:
    """One load-bearing service: a profile, an SLO, and its replicas.

    Replicas are named either explicitly (``nodes=[...]``, pure netsim
    experiments) or by placement group (``group=...``): the engine then
    asks the pimaster for the containers in that group each epoch and
    resolves each one through DNS, so consolidation moves, respawns and
    autoscaling are picked up live -- exactly the naming-policy loop
    the paper's management plane exists for.
    """

    name: str
    profile: ServiceProfile = field(default_factory=ServiceProfile)
    slo: SloObjective = field(default_factory=SloObjective)
    weight: float = 1.0
    nodes: Optional[List[str]] = None
    group: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("service needs a name")
        if self.weight <= 0:
            raise ConfigurationError(
                f"service {self.name!r}: weight must be > 0"
            )
        if self.nodes is not None and not self.nodes:
            raise ConfigurationError(
                f"service {self.name!r}: nodes list cannot be empty"
            )
        if self.nodes is None and self.group is None:
            self.group = self.name


class SessionPool:
    """Fluid concurrent-session accounting for one (service, region).

    Arrivals add to the count; departures drain it exponentially at
    ``1/session_duration`` per second (the fluid limit of exponential
    session lifetimes).  Counts are fractional -- a million users and
    half a user cost the same arithmetic.
    """

    __slots__ = ("service", "region", "sessions", "arrived_total")

    def __init__(self, service: Service, region: str) -> None:
        self.service = service
        self.region = region
        self.sessions = 0.0
        self.arrived_total = 0.0

    def step(self, arrivals: float, dt: float) -> None:
        """Advance one epoch: add arrivals, drain departures."""
        self.arrived_total += arrivals
        duration = self.service.profile.session_duration_s
        # Exact fluid solution of n' = a/dt - n/D over the epoch.
        decay = pow(2.718281828459045, -dt / duration)
        inflow_rate = arrivals / dt if dt > 0 else 0.0
        steady = inflow_rate * duration
        self.sessions = steady + (self.sessions - steady) * decay


@dataclass
class Aggregate:
    """Per-(service, client edge switch, replica host) demand bucket.

    ``outstanding`` counts epoch flows still in flight -- the open-loop
    backpressure signal: past ``backlog_epochs`` the engine sheds the
    epoch's requests instead of queueing more flows.
    """

    service: Service
    client_edge: str
    replica_node: str
    outstanding: int = 0
    shed_requests: float = 0.0
    rtt_s: Optional[float] = None      # learned from the first flow

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.service.name, self.client_edge, self.replica_node)


def spread(total: float, buckets: int) -> List[float]:
    """Split a fluid count evenly over ``buckets`` (deterministic)."""
    if buckets <= 0:
        return []
    share = total / buckets
    return [share] * buckets


def partition_regions(
    edges: List[str], regions: List[str]
) -> Dict[str, List[str]]:
    """Deterministic default region map: round-robin sorted edges."""
    if not regions:
        raise ConfigurationError("need at least one region")
    out: Dict[str, List[str]] = {region: [] for region in sorted(regions)}
    names = sorted(regions)
    for index, edge in enumerate(sorted(edges)):
        out[names[index % len(names)]].append(edge)
    empty = [r for r, e in out.items() if not e]
    if empty:
        raise ConfigurationError(
            f"more regions than client edge switches: {empty} got none"
        )
    return out
