"""Session-level traffic: millions of users against the scale model.

The paper's claim -- the Pi cloud is a scale model on which
cloud-infrastructure behaviours can be *measured* -- needs user-facing
traffic and user-facing latency, not just raw flows.  This package is
the open-loop load engine that provides them:

* :mod:`repro.load.arrivals` -- seeded session arrival processes:
  homogeneous Poisson, diurnal sinusoid, flash crowds (ramp/spike/
  decay) and regional mixtures.  Also the home of the one seeded
  implementation of the classic traffic primitives (``poisson_wait``,
  ``pareto_size``) shared with :mod:`repro.apps.traffic`.
* :mod:`repro.load.sessions` -- the fluid session model: service
  profiles and per-(service, edge-pair) aggregates, so a million
  concurrent users cost O(edge-pairs x epochs) kernel events rather
  than O(users).
* :mod:`repro.load.engine` -- :class:`LoadEngine`: ticks the fluid
  model once per epoch, resolves targets through DNS/placement, maps
  offered load onto the fabric as aggregate flows through the existing
  fair-share solver, and turns achieved rates back into per-request
  latency samples.
* :mod:`repro.load.slo` -- SLO objectives with streaming error-budget
  burn-rate windows, per-service and fleet rollups.

See ``docs/load.md`` for the model, its accuracy envelope, and the
SLO/burn-rate semantics.
"""

from repro.load.arrivals import (
    ArrivalProcess,
    DiurnalArrivals,
    FlashCrowdArrivals,
    PoissonArrivals,
    RegionalMixture,
    pareto_size,
    poisson_count,
    poisson_wait,
)
from repro.load.engine import LoadEngine, LoadReport
from repro.load.sessions import Service, ServiceProfile
from repro.load.slo import SloObjective, SloTracker

__all__ = [
    "ArrivalProcess",
    "DiurnalArrivals",
    "FlashCrowdArrivals",
    "LoadEngine",
    "LoadReport",
    "PoissonArrivals",
    "RegionalMixture",
    "Service",
    "ServiceProfile",
    "SloObjective",
    "SloTracker",
    "pareto_size",
    "poisson_count",
    "poisson_wait",
]
