"""Seeded session arrival processes.

Every process exposes two views of the same random object:

* :meth:`ArrivalProcess.rate` -- the instantaneous intensity
  ``lambda(t)`` in sessions/s, and :meth:`ArrivalProcess.mean_arrivals`,
  its exact integral over an epoch.  These are what the fluid engine
  uses when arrival sampling is off.
* :meth:`ArrivalProcess.arrivals` -- a Poisson draw around that
  integral from a caller-supplied ``random.Random`` stream (obtained
  from :class:`repro.sim.rng.RngRegistry`), so sampled runs are
  byte-reproducible across processes and Python versions.

The module is also the single home of the classic per-event traffic
primitives -- :func:`poisson_wait` and :func:`pareto_size` --
historically duplicated in :mod:`repro.apps.traffic`, which now imports
them from here.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Iterator, Mapping, Tuple

from repro.errors import ConfigurationError

# Above this mean, the exact inversion sampler in poisson_count would
# walk O(mean) terms; a (deterministic, seeded) normal approximation is
# indistinguishable at fleet scale and O(1).
_POISSON_EXACT_LIMIT = 64.0


def poisson_wait(rng: random.Random, rate_per_s: float) -> float:
    """Exponential inter-arrival time for a Poisson process."""
    if rate_per_s <= 0:
        raise ValueError("rate must be positive")
    return rng.expovariate(rate_per_s)


def pareto_size(rng: random.Random, alpha: float = 1.2, minimum: float = 1000.0) -> float:
    """Heavy-tailed (Pareto) flow size in bytes."""
    if alpha <= 0 or minimum <= 0:
        raise ValueError("alpha and minimum must be positive")
    return minimum * rng.paretovariate(alpha)


def poisson_count(rng: random.Random, mean: float) -> int:
    """One Poisson(``mean``) draw from ``rng``.

    Exact (Knuth inversion) for small means; for large means a normal
    approximation -- still driven purely by ``rng``, so the draw is as
    reproducible as the exact path.  At the million-user scale the
    engine runs at, per-epoch means are huge and the O(mean) exact walk
    would dominate the run.
    """
    if mean < 0:
        raise ValueError(f"mean must be >= 0, got {mean}")
    if mean == 0:
        return 0
    if mean <= _POISSON_EXACT_LIMIT:
        limit = math.exp(-mean)
        count = 0
        product = rng.random()
        while product > limit:
            count += 1
            product *= rng.random()
        return count
    return max(0, round(rng.gauss(mean, math.sqrt(mean))))


class ArrivalProcess:
    """Base class: an inhomogeneous Poisson session-arrival process."""

    def rate(self, t: float) -> float:
        """Instantaneous intensity lambda(t), sessions/s."""
        raise NotImplementedError

    def mean_arrivals(self, t0: float, t1: float) -> float:
        """Exact integral of the intensity over ``[t0, t1)``."""
        raise NotImplementedError

    def arrivals(self, t0: float, t1: float, rng: random.Random) -> float:
        """Sessions arriving in ``[t0, t1)``: one seeded Poisson draw."""
        return float(poisson_count(rng, self.mean_arrivals(t0, t1)))

    def iter_waits(self, rng: random.Random, t: float = 0.0) -> Iterator[float]:
        """Per-event view: successive inter-arrival waits from time ``t``.

        Uses thinning against the peak rate near ``t`` for
        inhomogeneous processes; exact for the homogeneous case.  Used
        by closed-loop workloads that want individual arrivals rather
        than fluid epoch counts.
        """
        while True:
            lam = self.rate(t)
            if lam <= 0:
                # Jump forward in dry spells rather than spinning.
                t += 1.0
                continue
            wait = poisson_wait(rng, lam)
            t += wait
            yield wait


class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson arrivals at a constant rate."""

    def __init__(self, rate_per_s: float) -> None:
        if rate_per_s < 0:
            raise ConfigurationError(f"rate_per_s must be >= 0, got {rate_per_s}")
        self.rate_per_s = float(rate_per_s)

    def rate(self, t: float) -> float:
        return self.rate_per_s

    def mean_arrivals(self, t0: float, t1: float) -> float:
        return self.rate_per_s * max(0.0, t1 - t0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PoissonArrivals({self.rate_per_s}/s)"


class DiurnalArrivals(ArrivalProcess):
    """Sinusoidally modulated Poisson arrivals (the day/night curve).

    ``rate(t) = base * (1 + amplitude * sin(2*pi*(t + phase)/period))``;
    with ``amplitude <= 1`` the intensity never goes negative.  The
    default period is a scaled-down day so experiments see full cycles
    in simulated minutes; pass ``period_s=86_400`` for real days.
    """

    def __init__(
        self,
        base_rate_per_s: float,
        amplitude: float = 0.5,
        period_s: float = 600.0,
        phase_s: float = 0.0,
    ) -> None:
        if base_rate_per_s < 0:
            raise ConfigurationError(
                f"base_rate_per_s must be >= 0, got {base_rate_per_s}"
            )
        if not 0.0 <= amplitude <= 1.0:
            raise ConfigurationError(
                f"amplitude must be within [0, 1], got {amplitude}"
            )
        if period_s <= 0:
            raise ConfigurationError(f"period_s must be > 0, got {period_s}")
        self.base_rate_per_s = float(base_rate_per_s)
        self.amplitude = float(amplitude)
        self.period_s = float(period_s)
        self.phase_s = float(phase_s)

    def _angle(self, t: float) -> float:
        return 2.0 * math.pi * (t + self.phase_s) / self.period_s

    def rate(self, t: float) -> float:
        return self.base_rate_per_s * (1.0 + self.amplitude * math.sin(self._angle(t)))

    def mean_arrivals(self, t0: float, t1: float) -> float:
        if t1 <= t0:
            return 0.0
        # Analytic integral: base*(t1-t0) - base*amp*period/(2pi) *
        # [cos(angle(t1)) - cos(angle(t0))].
        scale = self.base_rate_per_s * self.amplitude * self.period_s / (2.0 * math.pi)
        return (
            self.base_rate_per_s * (t1 - t0)
            - scale * (math.cos(self._angle(t1)) - math.cos(self._angle(t0)))
        )


class FlashCrowdArrivals(ArrivalProcess):
    """A flash crowd: baseline, linear ramp, spike plateau, linear decay.

    ::

        rate
        peak ........___________
                    /           \\
        base ______/             \\__________
                 start  ramp hold decay   t

    Piecewise linear, so the epoch integral is exact.  Grounded in the
    Pico-Cloud/edge-fleet arrival mixes (PAPERS.md): a viral event hits
    a steady service, holds, and drains away.
    """

    def __init__(
        self,
        base_rate_per_s: float,
        peak_rate_per_s: float,
        start_s: float,
        ramp_s: float = 10.0,
        hold_s: float = 30.0,
        decay_s: float = 30.0,
    ) -> None:
        if base_rate_per_s < 0 or peak_rate_per_s < 0:
            raise ConfigurationError("rates must be >= 0")
        if peak_rate_per_s < base_rate_per_s:
            raise ConfigurationError(
                f"peak rate {peak_rate_per_s} below base rate {base_rate_per_s}"
            )
        if ramp_s < 0 or hold_s < 0 or decay_s < 0:
            raise ConfigurationError("ramp/hold/decay durations must be >= 0")
        self.base_rate_per_s = float(base_rate_per_s)
        self.peak_rate_per_s = float(peak_rate_per_s)
        self.start_s = float(start_s)
        self.ramp_s = float(ramp_s)
        self.hold_s = float(hold_s)
        self.decay_s = float(decay_s)

    def rate(self, t: float) -> float:
        base, peak = self.base_rate_per_s, self.peak_rate_per_s
        dt = t - self.start_s
        if dt < 0:
            return base
        if dt < self.ramp_s:
            return base + (peak - base) * dt / self.ramp_s
        dt -= self.ramp_s
        if dt < self.hold_s:
            return peak
        dt -= self.hold_s
        if dt < self.decay_s:
            return peak - (peak - base) * dt / self.decay_s
        return base

    def mean_arrivals(self, t0: float, t1: float) -> float:
        if t1 <= t0:
            return 0.0
        # Trapezoid over each piecewise-linear segment boundary inside
        # [t0, t1): exact because rate() is linear between breakpoints.
        breaks = [
            self.start_s,
            self.start_s + self.ramp_s,
            self.start_s + self.ramp_s + self.hold_s,
            self.start_s + self.ramp_s + self.hold_s + self.decay_s,
        ]
        points = sorted({t0, t1, *(b for b in breaks if t0 < b < t1)})
        total = 0.0
        for a, b in zip(points, points[1:]):
            total += 0.5 * (self.rate(a) + self.rate(b)) * (b - a)
        return total


class RegionalMixture(ArrivalProcess):
    """A weighted mixture of per-region arrival processes.

    ``regions`` maps region name -> (process, weight); the aggregate
    intensity is the weighted sum and :meth:`per_region` splits an
    epoch's arrivals by region, each from the caller-provided
    per-region RNG stream, so adding a region never perturbs another
    region's draws.
    """

    def __init__(
        self,
        regions: Mapping[str, Tuple[ArrivalProcess, float]],
    ) -> None:
        if not regions:
            raise ConfigurationError("RegionalMixture needs at least one region")
        for name, (process, weight) in regions.items():
            if weight < 0:
                raise ConfigurationError(
                    f"region {name!r} has negative weight {weight}"
                )
            if not isinstance(process, ArrivalProcess):
                raise ConfigurationError(
                    f"region {name!r}: {process!r} is not an ArrivalProcess"
                )
        self.regions: Dict[str, Tuple[ArrivalProcess, float]] = dict(
            sorted(regions.items())
        )

    def region_names(self) -> list[str]:
        return list(self.regions)

    def rate(self, t: float) -> float:
        return sum(w * p.rate(t) for p, w in self.regions.values())

    def mean_arrivals(self, t0: float, t1: float) -> float:
        return sum(w * p.mean_arrivals(t0, t1) for p, w in self.regions.values())

    def arrivals(self, t0: float, t1: float, rng: random.Random) -> float:
        return sum(self.per_region(t0, t1, {r: rng for r in self.regions}).values())

    def per_region(
        self,
        t0: float,
        t1: float,
        rngs: Mapping[str, random.Random],
        sample: bool = True,
    ) -> Dict[str, float]:
        """Epoch arrivals split by region (sampled or fluid-exact)."""
        out: Dict[str, float] = {}
        for name, (process, weight) in self.regions.items():
            mean = weight * process.mean_arrivals(t0, t1)
            if sample:
                out[name] = float(poisson_count(rngs[name], mean))
            else:
                out[name] = mean
        return out
