"""The fluid load engine: millions of sessions as O(aggregates) flows.

Once per epoch the engine

1. draws (or integrates) session arrivals per region from the arrival
   process, seeded through :class:`repro.sim.rng.RngRegistry` streams;
2. advances the fluid per-(service, region) session pools;
3. re-resolves each service's replicas through the pimaster registry
   and DNS, so placement moves re-key the demand aggregates;
4. converts each aggregate's offered request mass into **one** fabric
   flow (replica host -> client edge switch) through the existing
   max-min fair-share solver, with the offered rate as the rate cap;
5. on flow completion, turns the achieved rate back into a per-request
   latency sample -- congestion *stretches* the transfer component --
   and records it once, weighted by the request mass, into streaming
   histograms and SLO trackers.

Kernel cost is therefore O(aggregates x epochs): a million concurrent
users and a thousand cost the same number of events, which is the whole
point of running user-scale experiments on the scale model.

Latency model (per request, for an aggregate-epoch)::

    latency = rtt * retx + service_time * slow
              + (response_bytes / burst_rate) * stretch * retx
    stretch = max(1, offered_rate / achieved_rate)
    retx    = 1 / (1 - path_loss)
    slow    = cloud.slow_factor(replica_node)

where ``achieved_rate`` is what the fair-share solver actually granted
the aggregate's flow, ``path_loss`` is the combined packet-loss
probability of the (possibly degraded) links on the flow's path, and
``slow`` is the gray-failure service-time stretch of the replica's
host.  A healthy path (``loss == 0``, ``slow == 1``) multiplies by
exactly ``1.0`` everywhere, so runs without gray faults are
bit-identical to the pre-gray-failure model.  Requests shed by the
``backlog_epochs`` guard are recorded at ``inf`` (the histogram
overflow bucket) and count against the SLO -- overload shows up as
burn, not as silent queueing.

When the gen-2 failure detector is active, replicas on DEAD or
UNREACHABLE nodes are excluded from resolution; demand that loses
*every* replica to exclusion is deferred and retried on later epochs
(aging out as shed past ``backlog_epochs``) instead of being silently
recorded at ``inf`` -- a partitioned service burns SLO for the epochs
it was dark, then recovers when the partition heals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

from repro import trace
from repro.errors import ConfigurationError, LoadError, PiCloudError
from repro.load.arrivals import ArrivalProcess, RegionalMixture
from repro.load.sessions import (
    Aggregate,
    Service,
    SessionPool,
    partition_regions,
)
from repro.load.slo import SloTracker
from repro.netsim.topology import TOR
from repro.sim.process import Timeout
from repro.telemetry.stats import LatencyHistogram, Summary, format_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cloud import PiCloud
    from repro.netsim.fabric import FlowTransfer

_GLOBAL_REGION = "global"


@dataclass
class ServiceReport:
    """Per-service outcome: latency distribution + SLO accounting."""

    name: str
    histogram: LatencyHistogram
    slo: SloTracker
    arrived_sessions: float = 0.0
    peak_concurrent: float = 0.0
    offered_requests: float = 0.0
    shed_requests: float = 0.0
    deferred_requests: float = 0.0
    retried_requests: float = 0.0
    flows_started: int = 0
    flows_completed: int = 0
    flows_failed: int = 0

    def summary(self) -> Summary:
        return self.histogram.summary()

    def metrics(self) -> Dict[str, float]:
        """Flat metrics dict, keys prefixed with the service name."""
        s = self.summary()
        out = {
            "arrived_sessions": self.arrived_sessions,
            "peak_concurrent": self.peak_concurrent,
            "offered_requests": self.offered_requests,
            "shed_requests": self.shed_requests,
            "deferred_requests": self.deferred_requests,
            "retried_requests": self.retried_requests,
            "p50_ms": s.p50 * 1e3,
            "p99_ms": s.p99 * 1e3,
            "p999_ms": s.p999 * 1e3,
        }
        out.update(self.slo.row())
        return {f"{self.name}_{key}": value for key, value in out.items()}


@dataclass
class LoadReport:
    """The run's outcome: per-service reports plus fleet rollups."""

    services: Dict[str, ServiceReport]
    duration_s: float = 0.0
    epochs: int = 0
    peak_concurrent_sessions: float = 0.0

    def fleet_histogram(self) -> LatencyHistogram:
        """All services' latency streams merged (same layout by design)."""
        merged: Optional[LatencyHistogram] = None
        for report in self.services.values():
            if merged is None:
                merged = report.histogram.copy()
            else:
                merged.merge(report.histogram)
        if merged is None:
            raise LoadError("report has no services")
        return merged

    def fleet_summary(self) -> Summary:
        return self.fleet_histogram().summary()

    def fleet_error_rate(self) -> float:
        good = sum(r.slo.good for r in self.services.values())
        bad = sum(r.slo.bad for r in self.services.values())
        total = good + bad
        return bad / total if total > 0 else 0.0

    def worst_burn(self) -> Tuple[Optional[str], float]:
        worst_name, worst = None, 0.0
        for name in sorted(self.services):
            burn = self.services[name].slo.burn_rate()
            if burn > worst:
                worst_name, worst = name, burn
        return worst_name, worst

    def metrics(self) -> Dict[str, float]:
        """One flat dict for campaign result stores and dashboards."""
        fleet = self.fleet_summary()
        _, worst = self.worst_burn()
        out: Dict[str, float] = {
            "duration_s": self.duration_s,
            "epochs": float(self.epochs),
            "peak_concurrent_sessions": self.peak_concurrent_sessions,
            "total_requests": sum(
                r.offered_requests for r in self.services.values()
            ),
            "shed_requests": sum(
                r.shed_requests for r in self.services.values()
            ),
            "flows_started": float(sum(
                r.flows_started for r in self.services.values()
            )),
            "fleet_p50_ms": fleet.p50 * 1e3,
            "fleet_p95_ms": fleet.p95 * 1e3,
            "fleet_p99_ms": fleet.p99 * 1e3,
            "fleet_p999_ms": fleet.p999 * 1e3,
            "fleet_error_rate": self.fleet_error_rate(),
            "worst_burn_rate": worst,
        }
        for name in sorted(self.services):
            out.update(self.services[name].metrics())
        return out

    def format(self) -> str:
        """Human-readable per-service table (for CLI / examples)."""
        headers = ["service", "requests", "shed", "p50 ms", "p99 ms",
                   "p999 ms", "err rate", "burn", "peak burn"]
        rows = []
        for name in sorted(self.services):
            report = self.services[name]
            s = report.summary()
            rows.append([
                name,
                f"{report.offered_requests:,.0f}",
                f"{report.shed_requests:,.0f}",
                f"{s.p50 * 1e3:.1f}",
                f"{s.p99 * 1e3:.1f}",
                f"{s.p999 * 1e3:.1f}",
                f"{report.slo.error_rate():.2e}",
                f"{report.slo.burn_rate():.2f}",
                f"{report.slo.peak_burn_rate():.2f}",
            ])
        return format_table(headers, rows)


class LoadEngine:
    """Open-loop session load against a built :class:`PiCloud`.

    Parameters
    ----------
    cloud:
        A built cloud; the engine uses its simulator, fabric, topology,
        RNG registry and (for ``group=`` services) pimaster + DNS.
    services:
        The services under load.  Arrivals are split across services in
        proportion to ``Service.weight``.
    arrivals:
        The session arrival process.  A :class:`RegionalMixture` maps
        its regions onto disjoint sets of client edge switches
        (``regions=`` overrides the default round-robin split); any
        other process drives a single global region.
    client_edges:
        Switches where sessions originate (default: every ToR/edge
        switch).  Clients sit *at* the edge, so the modelled path is
        replica host -> fabric -> client edge: the interesting
        (shared) part of the network, without inventing client hosts.

    Epoch cadence, sampling, backlog shedding and histogram layout
    default from ``cloud.config.load`` (:class:`repro.core.config.LoadConfig`).
    """

    def __init__(
        self,
        cloud: "PiCloud",
        services: Sequence[Service],
        arrivals: ArrivalProcess,
        *,
        regions: Optional[Mapping[str, Sequence[str]]] = None,
        client_edges: Optional[Sequence[str]] = None,
        epoch_s: Optional[float] = None,
        sample_arrivals: Optional[bool] = None,
        backlog_epochs: Optional[int] = None,
    ) -> None:
        if not services:
            raise ConfigurationError("LoadEngine needs at least one service")
        names = [service.name for service in services]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate service names in {names}")
        self.cloud = cloud
        self.sim = cloud.sim
        self.network = cloud.network
        self.services: List[Service] = list(services)
        self.arrivals = arrivals

        knobs = cloud.config.load
        self.epoch_s = float(epoch_s if epoch_s is not None else knobs.epoch_s)
        if self.epoch_s <= 0:
            raise ConfigurationError(f"epoch_s must be > 0, got {self.epoch_s}")
        self.sample_arrivals = bool(
            knobs.arrival_sampling if sample_arrivals is None else sample_arrivals
        )
        self.backlog_epochs = int(
            knobs.backlog_epochs if backlog_epochs is None else backlog_epochs
        )
        if self.backlog_epochs < 1:
            raise ConfigurationError(
                f"backlog_epochs must be >= 1, got {self.backlog_epochs}"
            )
        self._hist_layout = (knobs.histogram_min_s, knobs.histogram_max_s,
                             knobs.histogram_buckets_per_decade)

        edges = list(client_edges) if client_edges is not None else (
            cloud.topology.switches(TOR)
        )
        if not edges:
            raise LoadError("no client edge switches available")
        for edge in edges:
            if edge not in cloud.topology.graph:
                raise LoadError(f"client edge {edge!r} not in the topology")
        self.client_edges = sorted(edges)
        self._edge_index = {e: i for i, e in enumerate(self.client_edges)}

        if isinstance(arrivals, RegionalMixture):
            region_names = arrivals.region_names()
        else:
            region_names = [_GLOBAL_REGION]
        if regions is not None:
            unknown = set(regions) - set(region_names)
            if unknown:
                raise ConfigurationError(
                    f"regions {sorted(unknown)} not in the arrival process "
                    f"(has {region_names})"
                )
            missing = set(region_names) - set(regions)
            if missing:
                raise ConfigurationError(
                    f"regions {sorted(missing)} have no edge assignment"
                )
            self.region_edges = {
                name: sorted(regions[name]) for name in region_names
            }
            for name, assigned in self.region_edges.items():
                bad = [e for e in assigned if e not in self._edge_index]
                if bad:
                    raise ConfigurationError(
                        f"region {name!r} maps to unknown edges {bad}"
                    )
                if not assigned:
                    raise ConfigurationError(f"region {name!r} has no edges")
        else:
            self.region_edges = partition_regions(self.client_edges,
                                                  region_names)
        self.regions = sorted(self.region_edges)

        # Seeded per-region arrival streams: adding a region or service
        # never perturbs another's draws.
        self._region_rngs = {
            name: cloud.rng.stream(f"load.arrivals.{name}")
            for name in self.regions
        }

        total_weight = sum(s.weight for s in self.services)
        self._weights = {s.name: s.weight / total_weight for s in self.services}
        self._pools: Dict[Tuple[str, str], SessionPool] = {
            (service.name, region): SessionPool(service, region)
            for service in self.services
            for region in self.regions
        }
        self._aggregates: Dict[Tuple[str, str, str], Aggregate] = {}
        self._replicas: Dict[str, List[str]] = {}
        # Replicas dropped because their host is DEAD/UNREACHABLE (gen-2
        # detector only) -- distinguishes "service has no replicas" from
        # "all replicas are behind a partition", which defers instead of
        # shedding.
        self._excluded: Dict[str, int] = {}
        # Deferred request mass per (service, region): [requests, age]
        # pairs retried on later epochs until replicas come back or the
        # entry ages past backlog_epochs.
        self._deferred: Dict[Tuple[str, str], List[List[float]]] = {}
        self._reports: Dict[str, ServiceReport] = {
            service.name: ServiceReport(
                name=service.name,
                histogram=LatencyHistogram(*self._hist_layout),
                slo=SloTracker(service.slo),
            )
            for service in self.services
        }

        self.epochs_run = 0
        self.peak_concurrent_sessions = 0.0
        self._started_at: Optional[float] = None
        self._finished_at: Optional[float] = None
        self._span = trace.NULL_SPAN
        self._process = None

    # -- driving ----------------------------------------------------------

    def start(self, duration_s: float) -> "LoadEngine":
        """Schedule the epoch loop on the simulator (does not run it)."""
        if duration_s <= 0:
            raise ConfigurationError(f"duration_s must be > 0, got {duration_s}")
        if self._process is not None:
            raise LoadError("LoadEngine.start() called twice")
        self._span = trace.start_span(
            self.sim, "load.engine", kind="load",
            attributes={"services": len(self.services),
                        "regions": len(self.regions),
                        "epoch_s": self.epoch_s},
        )
        self._process = self.sim.process(self._epoch_loop(duration_s),
                                         name="load-engine")
        return self

    def run(self, duration_s: float, drain_s: Optional[float] = None) -> LoadReport:
        """Start the loop, run the cloud, drain in-flight flows, report.

        ``drain_s`` defaults to ``backlog_epochs`` extra epochs -- enough
        for every non-shed flow to finish unless the fabric is still
        badly oversubscribed at the end of the run.
        """
        self.start(duration_s)
        if drain_s is None:
            drain_s = self.backlog_epochs * self.epoch_s
        self.cloud.run_for(duration_s + drain_s)
        return self.report()

    def _epoch_loop(self, duration_s: float):
        self._started_at = self.sim.now
        end = self._started_at + duration_s
        while self.sim.now < end - 1e-9:
            t0 = self.sim.now
            t1 = min(t0 + self.epoch_s, end)
            self._tick(t0, t1)
            yield Timeout(self.sim, t1 - t0)
        self._finished_at = self.sim.now
        self._span.end()

    # -- the epoch --------------------------------------------------------

    def _tick(self, t0: float, t1: float) -> None:
        dt = t1 - t0
        self.epochs_run += 1
        # Arrival processes run on an engine-relative clock: t=0 is the
        # moment the engine started, however long boot/placement took,
        # so FlashCrowdArrivals(start_s=10) always means "10 s into the
        # load run".
        base = self._started_at if self._started_at is not None else t0
        region_arrivals = self._epoch_arrivals(t0 - base, t1 - base)
        self._refresh_replicas()

        concurrent = 0.0
        for service in self.services:
            share = self._weights[service.name]
            report = self._reports[service.name]
            for region in self.regions:
                pool = self._pools[(service.name, region)]
                arrived = region_arrivals[region] * share
                pool.step(arrived, dt)
                report.arrived_sessions += arrived
                concurrent += pool.sessions
                self._offer(service, region, pool.sessions, t0, dt)
            report.peak_concurrent = max(
                report.peak_concurrent,
                sum(self._pools[(service.name, r)].sessions
                    for r in self.regions),
            )
        self.peak_concurrent_sessions = max(self.peak_concurrent_sessions,
                                            concurrent)
        trace.instant(self.sim, "load.epoch", parent=self._span,
                      kind="load",
                      attributes={"concurrent": round(concurrent, 1)})

    def _epoch_arrivals(self, t0: float, t1: float) -> Dict[str, float]:
        if isinstance(self.arrivals, RegionalMixture):
            return self.arrivals.per_region(
                t0, t1, self._region_rngs, sample=self.sample_arrivals
            )
        if self.sample_arrivals:
            count = self.arrivals.arrivals(
                t0, t1, self._region_rngs[_GLOBAL_REGION]
            )
        else:
            count = self.arrivals.mean_arrivals(t0, t1)
        return {_GLOBAL_REGION: count}

    def _refresh_replicas(self) -> None:
        """Re-resolve every service's replica hosts (placement + DNS).

        With the gen-2 failure detector active, replicas whose host is
        DEAD or UNREACHABLE are excluded (counted in ``self._excluded``)
        so partitioned demand defers instead of targeting a host that
        cannot answer.  The legacy detector keeps the historical
        behaviour -- resolution is purely placement + DNS.
        """
        for service in self.services:
            pimaster = getattr(self.cloud, "pimaster", None)
            if service.nodes is not None:
                nodes = sorted(service.nodes)
                self._replicas[service.name], self._excluded[service.name] = (
                    self._filter_unhealthy(pimaster, nodes)
                )
                continue
            if pimaster is None:
                raise LoadError(
                    f"service {service.name!r} uses group= resolution but "
                    "the cloud has no pimaster; pass explicit nodes="
                )
            nodes = []
            for record in pimaster.container_records():
                if record.group != service.group:
                    continue
                try:
                    pimaster.dns.resolve(record.fqdn)
                except PiCloudError:
                    continue           # not (yet) resolvable: skip replica
                nodes.append(record.node_id)
            self._replicas[service.name], self._excluded[service.name] = (
                self._filter_unhealthy(pimaster, sorted(set(nodes)))
            )

    @staticmethod
    def _filter_unhealthy(pimaster, nodes: List[str]) -> Tuple[List[str], int]:
        """Drop DEAD/UNREACHABLE hosts under the gen-2 detector only."""
        if pimaster is None or not pimaster.health.partition_aware:
            return nodes, 0
        from repro.mgmt.health import NodeHealth

        healthy = [
            node for node in nodes
            if pimaster.health.state(node) not in (NodeHealth.DEAD,
                                                   NodeHealth.UNREACHABLE)
        ]
        return healthy, len(nodes) - len(healthy)

    def _offer(self, service: Service, region: str, sessions: float,
               t0: float, dt: float) -> None:
        """Turn one (service, region) pool into aggregate epoch flows."""
        profile = service.profile
        requests = sessions * profile.requests_per_session_per_s * dt
        report = self._reports[service.name]
        if requests > 0:
            report.offered_requests += requests
        replicas = self._replicas.get(service.name) or []
        edges = self.region_edges[region]
        deferred = self._deferred.get((service.name, region))
        if not replicas:
            if requests <= 0 and not deferred:
                return
            if self._excluded.get(service.name, 0) > 0:
                # Every replica exists but is DEAD/UNREACHABLE (gen-2
                # detector): defer this epoch's demand and retry when a
                # later epoch resolves replicas again, instead of the
                # silent +inf record.  Entries age out as shed once they
                # have waited backlog_epochs epochs.
                kept: List[List[float]] = []
                for entry in deferred or []:
                    entry[1] += 1.0
                    if entry[1] >= self.backlog_epochs:
                        report.shed_requests += entry[0]
                        self._record(service, t0, entry[0], math.inf)
                    else:
                        kept.append(entry)
                if requests > 0:
                    kept.append([requests, 0.0])
                    report.deferred_requests += requests
                if kept:
                    self._deferred[(service.name, region)] = kept
                else:
                    self._deferred.pop((service.name, region), None)
                return
            # Nothing to serve the demand, and nothing excluded that
            # could come back: everything (including backlog) is shed.
            for entry in deferred or []:
                report.shed_requests += entry[0]
                self._record(service, t0, entry[0], math.inf)
            self._deferred.pop((service.name, region), None)
            if requests > 0:
                self._record(service, t0, requests, math.inf)
                report.shed_requests += requests
            return
        if deferred:
            # Replicas are resolvable again: fold the deferred backlog
            # into this epoch's offered mass.
            retried = sum(entry[0] for entry in deferred)
            requests += retried
            report.retried_requests += retried
            self._deferred.pop((service.name, region), None)
        if requests <= 0:
            return
        per_edge = requests / len(edges)
        for edge in edges:
            # Deterministic edge->replica mapping: placement changes
            # re-key aggregates, stable placements keep stable flow
            # keys (and therefore stable ECMP hashes).
            replica = replicas[self._edge_index[edge] % len(replicas)]
            aggregate = self._aggregates.get((service.name, edge, replica))
            if aggregate is None:
                aggregate = Aggregate(service, edge, replica)
                self._aggregates[aggregate.key] = aggregate
            self._launch(aggregate, per_edge, t0, dt)

    def _launch(self, aggregate: Aggregate, requests: float,
                t0: float, dt: float) -> None:
        service = aggregate.service
        profile = service.profile
        report = self._reports[service.name]
        if aggregate.outstanding >= self.backlog_epochs:
            # Open-loop overload guard: shed instead of queueing more
            # fabric work.  Shed requests are SLO-bad at the ceiling.
            aggregate.shed_requests += requests
            report.shed_requests += requests
            self._record(service, t0, requests, math.inf)
            return
        demand_bytes = requests * profile.response_bytes
        offered_rate = demand_bytes / dt
        try:
            flow = self.network.transfer(
                aggregate.replica_node,
                aggregate.client_edge,
                demand_bytes,
                flow_key=("load",) + aggregate.key,
                rate_cap=offered_rate,
                tag=f"load:{service.name}",
                parent=self._span,
            )
        except PiCloudError:
            # Replica currently unreachable (e.g. its host just died):
            # the epoch's requests fail outright.
            report.shed_requests += requests
            self._record(service, t0, requests, math.inf)
            return
        aggregate.outstanding += 1
        report.flows_started += 1

        def finished(signal, aggregate=aggregate, requests=requests,
                     offered_rate=offered_rate, demand_bytes=demand_bytes,
                     flow=flow):
            aggregate.outstanding -= 1
            if signal.exception is not None:
                self._reports[aggregate.service.name].flows_failed += 1
                self._record(aggregate.service, self.sim.now, requests,
                             math.inf)
                return
            self._reports[aggregate.service.name].flows_completed += 1
            self._settle(aggregate, flow, requests, offered_rate,
                         demand_bytes)

        flow.done.add_done_callback(finished)

    def _settle(self, aggregate: Aggregate, flow: "FlowTransfer",
                requests: float, offered_rate: float,
                demand_bytes: float) -> None:
        """Flow done: achieved rate -> stretch -> request latency.

        Gray failures feed in here: degraded-link loss along the flow's
        path inflates the network components by the expected
        retransmission factor ``1 / (1 - loss)``, and a slowed replica
        host stretches the service-time component.  Both factors are
        exactly ``1.0`` on healthy paths, keeping fault-free runs
        bit-identical.

        Under a congestion-control rate model the path's current
        queueing delay is added as well -- standing ToR/host buffers
        show up directly in request latency.  The term is exactly
        ``0.0`` under the default max-min model (no queue state exists),
        and is only added when non-zero, so default-path runs stay
        bit-identical.
        """
        one_way = sum(d.latency for d in flow.directions)
        if aggregate.rtt_s is None:
            aggregate.rtt_s = 2.0 * one_way
        duration = flow.completed_at - flow.requested_at
        transfer_time = max(duration - one_way, 1e-12)
        achieved_rate = demand_bytes / transfer_time
        stretch = max(1.0, offered_rate / achieved_rate)
        loss = 1.0
        for d in flow.directions:
            loss *= 1.0 - d.link.loss
        retx = 1.0 / loss
        slow = self.cloud.slow_factor(aggregate.replica_node)
        profile = aggregate.service.profile
        latency = (
            2.0 * one_way * retx
            + profile.service_time_s * slow
            + (profile.response_bytes / profile.burst_rate) * stretch * retx
        )
        queue_delay = self.network.path_queue_delay(flow.directions)
        if queue_delay > 0.0:
            latency += queue_delay
        self._record(aggregate.service, self.sim.now, requests, latency)

    def _record(self, service: Service, t: float, requests: float,
                latency_s: float) -> None:
        report = self._reports[service.name]
        report.histogram.record(latency_s, count=requests)
        if latency_s <= service.slo.threshold_s:
            report.slo.record(t, good=requests, bad=0.0)
        else:
            report.slo.record(t, good=0.0, bad=requests)

    # -- results ----------------------------------------------------------

    def report(self) -> LoadReport:
        """A snapshot report (callable mid-run or after draining)."""
        started = self._started_at if self._started_at is not None else 0.0
        finished = (self._finished_at if self._finished_at is not None
                    else self.sim.now)
        return LoadReport(
            services=dict(self._reports),
            duration_s=max(0.0, finished - started),
            epochs=self.epochs_run,
            peak_concurrent_sessions=self.peak_concurrent_sessions,
        )
