"""Classic placement policies.

All operate on the :func:`~repro.placement.base.feasible` candidate set,
so hard constraints (memory, power state, rack filters, anti-affinity)
are enforced uniformly; the policy only expresses *preference*.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.placement.base import NodeView, PlacementRequest, feasible


class FirstFit:
    """First node (in the given order) that fits.  Fast, packs the front."""

    def choose(self, request: PlacementRequest, nodes: Sequence[NodeView]) -> str:
        return feasible(request, nodes)[0].node_id


class BestFit:
    """Tightest fit: least leftover memory.  Packs hosts densely."""

    def choose(self, request: PlacementRequest, nodes: Sequence[NodeView]) -> str:
        candidates = feasible(request, nodes)
        return min(
            candidates,
            key=lambda v: (v.memory_available - request.memory_bytes, v.node_id),
        ).node_id


class WorstFit:
    """Loosest fit: most leftover memory.  Spreads load, keeps headroom."""

    def choose(self, request: PlacementRequest, nodes: Sequence[NodeView]) -> str:
        candidates = feasible(request, nodes)
        return max(
            candidates,
            key=lambda v: (v.memory_available - request.memory_bytes, v.node_id),
        ).node_id


class RoundRobin:
    """Rotate through feasible nodes; stateful across calls."""

    def __init__(self) -> None:
        self._cursor = 0

    def choose(self, request: PlacementRequest, nodes: Sequence[NodeView]) -> str:
        candidates = feasible(request, nodes)
        chosen = candidates[self._cursor % len(candidates)]
        self._cursor += 1
        return chosen.node_id


class RandomFit:
    """Uniform random feasible node (pass a seeded Random for determinism)."""

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self.rng = rng or random.Random(0)

    def choose(self, request: PlacementRequest, nodes: Sequence[NodeView]) -> str:
        return self.rng.choice(feasible(request, nodes)).node_id


class LowestCpuLoad:
    """Least-loaded node first (load balancing for CPU-bound services)."""

    def choose(self, request: PlacementRequest, nodes: Sequence[NodeView]) -> str:
        candidates = feasible(request, nodes)
        return min(candidates, key=lambda v: (v.cpu_load, v.node_id)).node_id


class PackingPlacement:
    """Power-minimising packing: prefer already-busy nodes, best-fit order.

    The consolidation-friendly policy from §III: keeps the active machine
    set small so idle machines can be powered off.  Among nodes that
    already run containers, choose the tightest fit; only open an empty
    node when nothing occupied fits.
    """

    def choose(self, request: PlacementRequest, nodes: Sequence[NodeView]) -> str:
        candidates = feasible(request, nodes)
        occupied = [v for v in candidates if v.running_containers > 0]
        pool = occupied or candidates
        return min(
            pool,
            key=lambda v: (v.memory_available - request.memory_bytes, v.node_id),
        ).node_id
