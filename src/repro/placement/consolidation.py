"""Runtime consolidation: pack containers onto fewer hosts, power off the rest.

Implements the §III research direction ("consolidation to reduce power
consumption") as an executable controller:

1. Snapshot all running containers and hosts.
2. Compute a packed assignment with first-fit-decreasing by RSS onto the
   smallest prefix of hosts that fits (respecting per-host RAM).
3. Emit a migration plan (container -> destination host) and execute it
   with real :func:`~repro.virt.migration.live_migrate` calls -- so the
   plan's network cost is borne on the fabric, and the cross-layer
   congestion side effects the paper warns about are observable.
4. Optionally shut down hosts left empty.

``aggressiveness`` caps how many migrations a single round may issue,
modelling cautious vs. greedy consolidation (ablation experiment C2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import trace
from repro.sim.kernel import Simulator
from repro.sim.process import AllOf, Signal
from repro.virt.container import Container
from repro.virt.lxc import LxcRuntime
from repro.virt.migration import MigrationReport, live_migrate


@dataclass
class ConsolidationReport:
    """Outcome of one consolidation round."""

    planned_migrations: int = 0
    executed_migrations: int = 0
    failed_migrations: int = 0
    hosts_before: int = 0
    hosts_after: int = 0
    hosts_powered_off: List[str] = field(default_factory=list)
    migration_reports: List[MigrationReport] = field(default_factory=list)
    total_bytes_moved: float = 0.0


def plan_packing(
    containers: Sequence[Tuple[Container, str]],
    host_free_memory: Dict[str, int],
    host_order: Sequence[str],
) -> Dict[str, str]:
    """First-fit-decreasing packing plan.

    ``containers`` is ``(container, current_host)`` pairs;
    ``host_free_memory`` maps host -> bytes free for guests *excluding*
    currently-running containers (i.e. capacity available if the host were
    emptied).  Returns ``{container_name: target_host}`` including
    containers that stay put.
    """
    remaining = {host: host_free_memory[host] for host in host_order}
    ordered = sorted(containers, key=lambda pair: (-pair[0].memory_bytes, pair[0].name))
    assignment: Dict[str, str] = {}
    for container, __ in ordered:
        for host in host_order:
            if remaining[host] >= container.memory_bytes:
                assignment[container.name] = host
                remaining[host] -= container.memory_bytes
                break
        else:
            # Cannot pack this container anywhere: leave it where it is.
            current = dict(containers)[container]
            assignment[container.name] = current
    return assignment


class Consolidator:
    """Executes consolidation rounds over a set of per-host LXC runtimes."""

    def __init__(
        self,
        sim: Simulator,
        runtimes: Dict[str, LxcRuntime],
        aggressiveness: int = 1_000_000,
        power_off_empty: bool = False,
        host_order: Optional[Sequence[str]] = None,
        on_power_off: Optional[Callable[[str], None]] = None,
    ) -> None:
        if aggressiveness < 0:
            raise ValueError("aggressiveness must be >= 0")
        self.sim = sim
        self.runtimes = dict(runtimes)
        self.aggressiveness = aggressiveness
        self.power_off_empty = power_off_empty
        self.host_order = list(host_order) if host_order else sorted(runtimes)
        self.on_power_off = on_power_off
        self.rounds_run = 0

    # -- planning ----------------------------------------------------------------

    def _snapshot(self) -> Tuple[list[Tuple[Container, str]], Dict[str, int]]:
        containers: list[Tuple[Container, str]] = []
        free_if_empty: Dict[str, int] = {}
        for host, runtime in self.runtimes.items():
            if not runtime.kernel.machine.is_on:
                free_if_empty[host] = 0
                continue
            running = [c for c in runtime.containers() if c.is_running]
            for container in running:
                containers.append((container, host))
            machine = runtime.kernel.machine
            occupied_by_guests = sum(c.memory_bytes for c in running)
            free_if_empty[host] = machine.memory.available + occupied_by_guests
        return containers, free_if_empty

    def plan(self) -> Dict[str, str]:
        """Compute the target assignment without executing anything."""
        containers, free_if_empty = self._snapshot()
        return plan_packing(containers, free_if_empty, self.host_order)

    # -- execution ------------------------------------------------------------------

    def run_round(self) -> Signal:
        """Execute one consolidation round; Signal -> ConsolidationReport."""
        self.rounds_run += 1
        report = ConsolidationReport()
        containers, __ = self._snapshot()
        current = {c.name: host for c, host in containers}
        by_name = {c.name: c for c, __ in containers}
        report.hosts_before = len({h for h in current.values()})

        assignment = self.plan()
        moves = [
            (by_name[name], target)
            for name, target in sorted(assignment.items())
            if current.get(name) != target
        ]
        moves = moves[: self.aggressiveness]
        report.planned_migrations = len(moves)
        done = Signal(self.sim, name="consolidation.round")
        span = trace.start_span(
            self.sim, "consolidation.round", kind="mgmt",
            attributes={"round": self.rounds_run, "planned": len(moves)},
        )

        def run():
            for container, target in moves:
                migration = live_migrate(container, self.runtimes[target],
                                         parent=span)
                try:
                    migration_report = yield migration
                except Exception:  # noqa: BLE001 - count and continue
                    report.failed_migrations += 1
                    continue
                report.executed_migrations += 1
                report.migration_reports.append(migration_report)
                report.total_bytes_moved += migration_report.total_bytes

            live_hosts = {
                host
                for host, runtime in self.runtimes.items()
                if runtime.running_count() > 0
            }
            report.hosts_after = len(live_hosts)
            if self.power_off_empty:
                for host, runtime in sorted(self.runtimes.items()):
                    machine = runtime.kernel.machine
                    if (
                        host not in live_hosts
                        and machine.is_on
                        and not runtime.containers()  # nothing defined either
                    ):
                        machine.shutdown()
                        report.hosts_powered_off.append(host)
                        if self.on_power_off is not None:
                            self.on_power_off(host)
            span.set_attribute("executed", report.executed_migrations)
            span.set_attribute("failed", report.failed_migrations)
            span.end("ok" if report.failed_migrations == 0 else "error")
            done.succeed(report)

        self.sim.process(run(), name="consolidation.round")
        return done
