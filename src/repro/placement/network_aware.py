"""Network-aware placement: the cross-layer policy the paper motivates.

"Imperfect VM migration or a naive consolidation algorithm may improve
server resource usage at the expense of frequent episodes of network
congestion" (§IV).  This policy looks at the network when placing:

* **locality** -- place near a named peer (same rack) so their traffic
  stays on the ToR instead of crossing the aggregation layer;
* **congestion** -- among otherwise-equal candidates, avoid hosts whose
  access links (and racks whose uplinks) are already hot.

The score is a weighted sum, lowest wins; weights are constructor knobs
so experiments can sweep the locality/congestion trade-off.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.placement.base import NodeView, PlacementRequest, feasible


class NetworkAwarePlacement:
    """Prefer rack locality and cold links; fall back to best fit."""

    def __init__(
        self,
        locality_weight: float = 1.0,
        congestion_weight: float = 1.0,
        packing_weight: float = 0.1,
        rack_uplink_utilization: Optional[Dict[str, float]] = None,
    ) -> None:
        self.locality_weight = locality_weight
        self.congestion_weight = congestion_weight
        self.packing_weight = packing_weight
        # Injected view of rack uplink load (rack name -> [0, 1]); the
        # pimaster refreshes this from the fabric before each placement.
        self.rack_uplink_utilization = rack_uplink_utilization or {}

    def update_rack_utilization(self, utilization: Dict[str, float]) -> None:
        self.rack_uplink_utilization = dict(utilization)

    def _score(self, view: NodeView, request: PlacementRequest) -> float:
        score = 0.0
        if request.same_rack_as is not None and view.rack != request.same_rack_as:
            score += self.locality_weight
        score += self.congestion_weight * view.uplink_utilization
        if view.rack is not None:
            score += self.congestion_weight * self.rack_uplink_utilization.get(
                view.rack, 0.0
            )
        # Mild packing pressure so ties do not fragment memory.
        if view.memory_capacity > 0:
            score += self.packing_weight * (
                view.memory_available / view.memory_capacity
            )
        return score

    def choose(self, request: PlacementRequest, nodes: Sequence[NodeView]) -> str:
        # Note: feasible() already *hard*-prefers same_rack_as candidates
        # when any exist; scoring handles the soft trade-off against
        # congestion when the preferred rack is full or hot.
        candidates = [view for view in nodes if view.fits(request)]
        if not candidates:
            # Delegate to feasible() for its uniform error message.
            feasible(request, nodes)
        return min(
            candidates, key=lambda v: (self._score(v, request), v.node_id)
        ).node_id
