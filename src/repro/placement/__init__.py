"""VM/container placement and consolidation policies.

"VM management is an important aspect of Cloud Computing, since it allows
for consolidation to reduce power consumption, and oversubscription to
improve cost efficiency.  The way in which VMs are allocated is crucial;
we can experiment with new algorithms on the PiCloud, while directly
observing the resulting behaviour on all layers" (paper §III).  This
package is that experiment surface:

* :mod:`~repro.placement.base` -- requests, node views, the policy protocol.
* :mod:`~repro.placement.policies` -- first/best/worst fit, round robin,
  random, lowest-load, and power-minimising packing.
* :mod:`~repro.placement.network_aware` -- rack affinity / anti-affinity
  and uplink-congestion-aware placement.
* :mod:`~repro.placement.consolidation` -- a runtime consolidator that
  live-migrates containers to pack hosts and power the rest down.
"""

from repro.placement.base import NodeView, PlacementPolicy, PlacementRequest
from repro.placement.consolidation import ConsolidationReport, Consolidator
from repro.placement.network_aware import NetworkAwarePlacement
from repro.placement.policies import (
    BestFit,
    FirstFit,
    LowestCpuLoad,
    PackingPlacement,
    RandomFit,
    RoundRobin,
    WorstFit,
)

__all__ = [
    "BestFit",
    "ConsolidationReport",
    "Consolidator",
    "FirstFit",
    "LowestCpuLoad",
    "NetworkAwarePlacement",
    "NodeView",
    "PackingPlacement",
    "PlacementPolicy",
    "PlacementRequest",
    "RandomFit",
    "RoundRobin",
    "WorstFit",
]
