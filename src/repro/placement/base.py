"""Placement protocol: requests, node views, and the policy interface.

Policies are pure functions over immutable snapshots, so they are
trivially unit-testable and the same policy code runs in the pimaster,
in the consolidator, and in offline what-if analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Protocol, Sequence

from repro.errors import PlacementError


@dataclass(frozen=True)
class PlacementRequest:
    """What a new container needs from its host."""

    image: str
    memory_bytes: int
    cpu_shares: int = 1024
    cpu_quota: Optional[float] = None
    # Scheduling hints:
    same_rack_as: Optional[str] = None      # rack name to prefer/require
    avoid_racks: tuple[str, ...] = field(default_factory=tuple)
    anti_affinity_group: Optional[str] = None  # spread members apart

    def __post_init__(self) -> None:
        if self.memory_bytes <= 0:
            raise PlacementError("placement request needs positive memory")


@dataclass(frozen=True)
class NodeView:
    """An immutable snapshot of one candidate host."""

    node_id: str
    rack: Optional[str]
    memory_available: int
    memory_capacity: int
    cpu_load: float                  # instantaneous utilisation [0, 1]
    running_containers: int
    powered_on: bool = True
    uplink_utilization: float = 0.0  # the host's access-link load [0, 1]
    groups: tuple[str, ...] = field(default_factory=tuple)  # anti-affinity groups present

    def fits(self, request: PlacementRequest) -> bool:
        """Hard feasibility: powered on, memory available, rack filters."""
        if not self.powered_on:
            return False
        if self.memory_available < request.memory_bytes:
            return False
        if self.rack is not None and self.rack in request.avoid_racks:
            return False
        return True


class PlacementPolicy(Protocol):
    """Chooses a host for a request, or raises :class:`PlacementError`."""

    def choose(self, request: PlacementRequest, nodes: Sequence[NodeView]) -> str:
        """Return the chosen ``node_id``."""
        ...


def feasible(request: PlacementRequest, nodes: Sequence[NodeView]) -> list[NodeView]:
    """Filter to nodes that can host the request; stable order preserved.

    Applies anti-affinity softly: if spreading is requested and some
    feasible node lacks the group, group-holding nodes are dropped.
    """
    candidates = [view for view in nodes if view.fits(request)]
    if request.anti_affinity_group is not None:
        spread = [
            view for view in candidates
            if request.anti_affinity_group not in view.groups
        ]
        if spread:
            candidates = spread
    if request.same_rack_as is not None:
        preferred = [view for view in candidates if view.rack == request.same_rack_as]
        if preferred:
            candidates = preferred
    if not candidates:
        raise PlacementError(
            f"no feasible node for request (image={request.image!r}, "
            f"memory={request.memory_bytes}B, {len(nodes)} nodes considered)"
        )
    return candidates
