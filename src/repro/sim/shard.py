"""Sharded parallel kernel: conservative time sync across processes.

One :class:`Simulator` per shard, each running in its own worker process
(or inline for debugging), advanced in *windows* under the classic
synchronous conservative-PDES scheme:

1. Every shard reports the timestamp of its earliest pending event.
2. The coordinator computes ``floor`` = the minimum over those and over
   every undelivered cross-shard message, and grants the window
   ``[floor, floor + lookahead)``.
3. Each shard first schedules its inbound messages -- sorted by the
   deterministic merge key ``(time, priority, src_shard, seq)`` -- then
   executes every local event strictly below the horizon.
4. Outbound messages are collected and routed at the barrier.

Safety: a message posted by an event at time ``t`` is stamped
``t + delay`` with ``delay >= lookahead``; since every event executed in
a window satisfies ``t >= floor``, no message can arrive before
``floor + lookahead`` -- i.e. before a horizon that has already been
granted.  Lookahead is :attr:`ShardConfig.boundary_delay_s`, the
modelled cross-pod boundary latency (see ``docs/performance.md`` for why
it is coarser than the physical core-link latency).

Determinism: the coordinator's arithmetic is pure; each worker's
execution depends only on its seed and its (sorted) inbound batches; and
message ``seq`` numbers are per-sender counters.  Runs are therefore
bit-identical run-to-run regardless of OS scheduling or
``PYTHONHASHSEED`` -- though *not* identical to the unsharded kernel,
which interleaves all events in one queue.

The cross-shard channel is bounded: a shard whose undelivered outbox
reaches :attr:`ShardConfig.channel_capacity` pauses its window early and
resumes after the barrier drains it (backpressure, never unbounded
buffering).
"""

from __future__ import annotations

import cProfile
import os
import pstats
import time as _time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, NamedTuple, Optional

from repro.core.config import ShardConfig
from repro.errors import SimBudgetExceeded, SimulationError
from repro.sim.budget import BudgetSnapshot, RunBudget

_INF = float("inf")


class ShardMessage(NamedTuple):
    """One cross-shard event, ordered by the deterministic merge key."""

    time: float
    priority: int
    src_shard: int
    seq: int
    dst_shard: int
    payload: Any


@dataclass
class ShardContext:
    """What a shard program sees of the sharded run."""

    shard_id: int
    shards: int                 # pod shard count (control shard excluded)
    config: ShardConfig
    seed: int
    _post: Callable[..., None] = None  # installed by the worker

    @property
    def lookahead(self) -> float:
        return self.config.boundary_delay_s

    def post(self, dst_shard: int, payload: Any, *, priority: int = 0,
             delay: Optional[float] = None) -> None:
        """Send ``payload`` to another shard, arriving ``delay`` from now.

        ``delay`` defaults to the lookahead and may not be smaller -- a
        shorter delay could arrive inside an already-granted window.
        """
        self._post(dst_shard, payload, priority, delay)


class ShardProgram:
    """Base class for the model a shard runs.

    Subclasses override :meth:`build` (create ``self.sim`` and schedule
    initial events), :meth:`on_message` (invoked *inside* the kernel at
    the message's timestamp), and :meth:`finalize` (the metrics dict
    returned to the coordinator).  Programs must be constructed cheaply
    in the parent; all heavy state belongs in :meth:`build`, which runs
    in the worker process.
    """

    sim = None  # set by build()

    def build(self, ctx: ShardContext) -> None:
        raise NotImplementedError

    def on_message(self, payload: Any) -> None:
        raise NotImplementedError

    def finalize(self) -> Dict[str, Any]:
        return {}

    def span_dicts(self) -> List[Dict[str, Any]]:
        """Trace spans to merge into the coordinator's export."""
        return []


class _ShardWorker:
    """Runs one shard's kernel window by window (in-process engine)."""

    def __init__(self, shard_id: int, program: ShardProgram,
                 config: ShardConfig, seed: int) -> None:
        self.shard_id = shard_id
        self.program = program
        self.config = config
        self._outbox: List[ShardMessage] = []
        self._seq = 0
        ctx = ShardContext(shard_id=shard_id, shards=config.shards,
                           config=config, seed=seed)
        ctx._post = self._post
        self.ctx = ctx
        program.build(ctx)
        if program.sim is None:
            raise SimulationError(
                f"shard {shard_id} program did not create a Simulator"
            )

    def _post(self, dst_shard: int, payload: Any, priority: int,
              delay: Optional[float]) -> None:
        lookahead = self.config.boundary_delay_s
        if delay is None:
            delay = lookahead
        elif delay < lookahead:
            raise SimulationError(
                f"cross-shard delay {delay} is below the lookahead "
                f"{lookahead}; it could arrive inside a granted window"
            )
        self._outbox.append(ShardMessage(
            time=self.program.sim.now + delay,
            priority=priority,
            src_shard=self.shard_id,
            seq=self._seq,
            dst_shard=dst_shard,
            payload=payload,
        ))
        self._seq += 1

    def peek(self) -> float:
        t = self.program.sim.peek()
        return _INF if t is None else t

    def window(self, horizon: float, inbox: List[ShardMessage],
               inclusive: bool) -> tuple[float, List[ShardMessage], int, int]:
        """Deliver ``inbox`` then run to ``horizon``.

        Returns ``(next_time, outbox, events_delta, pending)``.  The
        inbox is sorted by the merge key here -- not trusted to arrive
        sorted -- so kernel sequence numbers are assigned in a
        reproducible order.
        """
        sim = self.program.sim
        for msg in sorted(inbox):
            sim.schedule_at(msg.time, self.program.on_message, msg.payload,
                            priority=msg.priority)
        capacity = self.config.channel_capacity
        start = sim.events_executed
        while len(self._outbox) < capacity:
            t = sim.peek()
            if t is None or (t > horizon if inclusive else t >= horizon):
                break
            sim.step()
        outbox, self._outbox = self._outbox, []
        return self.peek(), outbox, sim.events_executed - start, \
            sim.pending_events()

    def finish(self) -> tuple[Dict[str, Any], List[Dict[str, Any]]]:
        metrics = self.program.finalize()
        return metrics, self.program.span_dicts()


def _worker_process_main(shard_id: int, factory, config: ShardConfig,
                         seed: int, conn, profile_path: Optional[str]) -> None:
    """Child-process entry: serve window commands over the pipe."""
    profiler = None
    if profile_path is not None:
        profiler = cProfile.Profile()
        profiler.enable()
    try:
        worker = _ShardWorker(shard_id, factory(shard_id), config, seed)
        conn.send(("ready", worker.peek()))
        while True:
            cmd = conn.recv()
            if cmd[0] == "window":
                _, horizon, inbox, inclusive = cmd
                conn.send(("done",) + worker.window(horizon, inbox, inclusive))
            elif cmd[0] == "finish":
                metrics, spans = worker.finish()
                if profiler is not None:
                    profiler.disable()
                    profiler.dump_stats(profile_path)
                    profiler = None
                conn.send(("result", metrics, spans))
                return
            else:  # pragma: no cover - protocol guard
                raise SimulationError(f"unknown shard command {cmd[0]!r}")
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:  # pragma: no cover - pipe already gone
            pass
    finally:
        if profiler is not None:
            profiler.disable()
            profiler.dump_stats(profile_path)


class _InlineHandle:
    """Drives a worker in-process (``ShardConfig(processes=False)``)."""

    def __init__(self, shard_id: int, factory, config: ShardConfig,
                 seed: int) -> None:
        self.worker = _ShardWorker(shard_id, factory(shard_id), config, seed)

    def initial_peek(self) -> float:
        return self.worker.peek()

    def start_window(self, horizon, inbox, inclusive) -> None:
        self._reply = ("done",) + self.worker.window(horizon, inbox, inclusive)

    def collect(self):
        return self._reply

    def finish(self):
        return ("result",) + self.worker.finish()

    def close(self) -> None:
        pass


class _ProcessHandle:
    """Drives a worker in a forked child over a duplex pipe."""

    def __init__(self, shard_id: int, factory, config: ShardConfig,
                 seed: int, profile_path: Optional[str]) -> None:
        import multiprocessing

        mp = multiprocessing.get_context("fork")
        self.conn, child = mp.Pipe(duplex=True)
        self.process = mp.Process(
            target=_worker_process_main,
            args=(shard_id, factory, config, seed, child, profile_path),
            name=f"shard-{shard_id}",
            daemon=True,
        )
        self.shard_id = shard_id
        self.process.start()
        child.close()

    def _recv(self):
        reply = self.conn.recv()
        if reply[0] == "error":
            raise SimulationError(
                f"shard {self.shard_id} worker failed:\n{reply[1]}"
            )
        return reply

    def initial_peek(self) -> float:
        return self._recv()[1]

    def start_window(self, horizon, inbox, inclusive) -> None:
        self.conn.send(("window", horizon, inbox, inclusive))

    def collect(self):
        return self._recv()

    def finish(self):
        self.conn.send(("finish",))
        return self._recv()

    def close(self) -> None:
        self.conn.close()
        self.process.join(timeout=10)
        if self.process.is_alive():  # pragma: no cover - cleanup guard
            self.process.terminate()
            self.process.join(timeout=5)


class ShardRunResult(NamedTuple):
    """What a completed sharded run hands back."""

    now: float
    rounds: int
    events_total: int
    metrics: Dict[int, Dict[str, Any]]
    spans: List[Dict[str, Any]]
    wall_s: float


class ShardCoordinator:
    """Owns the shard workers and drives the conservative-sync rounds.

    ``factories`` maps shard id to a callable ``factory(shard_id) ->
    ShardProgram``; with ``config.processes`` the factory runs in the
    forked child, so it (and everything it closes over) must be
    picklable-by-fork, i.e. constructed before :meth:`run`.
    """

    def __init__(
        self,
        factories: Dict[int, Callable[[int], ShardProgram]],
        config: ShardConfig,
        budget: Optional[RunBudget] = None,
        profile_dir: Optional[str] = None,
    ) -> None:
        if not factories:
            raise SimulationError("ShardCoordinator needs at least one shard")
        self.factories = dict(sorted(factories.items()))
        self.config = config
        self.budget = budget if budget is not None and not budget.unbounded \
            else None
        self.profile_dir = profile_dir
        self.rounds = 0
        self.events_total = 0
        self.result: Optional[ShardRunResult] = None

    def shard_profile_paths(self) -> Dict[int, str]:
        if self.profile_dir is None:
            return {}
        return {
            sid: os.path.join(self.profile_dir, f"shard{sid}.pstats")
            for sid in self.factories
        }

    def run(self, until: float, seed: int = 0) -> ShardRunResult:
        """Run every shard to ``until`` (inclusive, like ``Simulator.run``)."""
        lookahead = self.config.boundary_delay_s
        budget = self.budget
        if budget is not None and budget.max_sim_time is not None:
            until = min(until, budget.max_sim_time)
        profile_paths = self.shard_profile_paths()
        handles: Dict[int, Any] = {}
        wall_start = _time.monotonic()
        try:
            for sid, factory in self.factories.items():
                if self.config.processes:
                    handles[sid] = _ProcessHandle(
                        sid, factory, self.config, seed,
                        profile_paths.get(sid))
                else:
                    handles[sid] = _InlineHandle(sid, factory, self.config,
                                                 seed)
            next_times = {sid: h.initial_peek() for sid, h in handles.items()}
            inflight: Dict[int, List[ShardMessage]] = {}
            pendings = {sid: 0 for sid in handles}
            while True:
                floor = min(next_times.values(), default=_INF)
                for batch in inflight.values():
                    for msg in batch:
                        if msg.time < floor:
                            floor = msg.time
                if floor == _INF or floor > until:
                    break
                # Inclusive only when no message can land at <= until:
                # every message posted this window is stamped
                # >= floor + lookahead.
                inclusive = floor + lookahead > until
                horizon = min(floor + lookahead, until)
                for sid, handle in handles.items():
                    batch = inflight.pop(sid, [])
                    handle.start_window(horizon, batch, inclusive)
                for sid, handle in handles.items():
                    _, next_time, outbox, delta, pending = handle.collect()
                    next_times[sid] = next_time
                    pendings[sid] = pending
                    self.events_total += delta
                    for msg in outbox:
                        if msg.dst_shard not in handles:
                            raise SimulationError(
                                f"shard {sid} posted to unknown shard "
                                f"{msg.dst_shard}"
                            )
                        inflight.setdefault(msg.dst_shard, []).append(msg)
                self.rounds += 1
                if budget is not None:
                    self._check_budget(budget, floor, pendings, wall_start)
            metrics: Dict[int, Dict[str, Any]] = {}
            spans: List[Dict[str, Any]] = []
            for sid, handle in handles.items():
                _, shard_metrics, shard_spans = handle.finish()
                metrics[sid] = shard_metrics
                for span in shard_spans:
                    span["shard"] = sid
                    spans.append(span)
            spans.sort(key=lambda s: (s["start"], s["shard"], s["span_id"]))
            self.result = ShardRunResult(
                now=until,
                rounds=self.rounds,
                events_total=self.events_total,
                metrics=metrics,
                spans=spans,
                wall_s=_time.monotonic() - wall_start,
            )
            return self.result
        finally:
            for handle in handles.values():
                handle.close()

    def _check_budget(self, budget: RunBudget, floor: float,
                      pendings: Dict[int, int], wall_start: float) -> None:
        wall = _time.monotonic() - wall_start
        reason = None
        if budget.max_events is not None \
                and self.events_total >= budget.max_events:
            reason, limit = "events", f"{budget.max_events} events"
        elif budget.max_wall_s is not None and wall > budget.max_wall_s:
            reason, limit = "wall_clock", f"{budget.max_wall_s}s wall clock"
        if reason is None:
            return
        snapshot = BudgetSnapshot(
            reason=reason,
            now=floor,
            events_executed=self.events_total,
            wall_elapsed_s=wall,
            pending_count=sum(pendings.values()),
        )
        raise SimBudgetExceeded(
            f"sharded simulation exceeded its run budget ({limit}) "
            f"after {self.rounds} sync rounds\n{snapshot.describe()}",
            snapshot,
        )

    def write_merged_trace(self, path: str) -> str:
        """Export every shard's spans as one shard-tagged JSONL file."""
        from repro.trace.export import write_span_dicts_jsonl

        if self.result is None:
            raise SimulationError("run() before write_merged_trace()")
        return write_span_dicts_jsonl(self.result.spans, path)


def merge_profiles(paths: List[str], out_path: str) -> Optional[str]:
    """Merge per-shard pstats dumps into one file (None if none exist).

    The parent's own profile (when present) should be included in
    ``paths`` -- the merged output is what ``--profile`` hands to
    ``pstats`` / snakeviz, covering coordinator and workers alike.
    """
    existing = [p for p in paths if p and os.path.exists(p)]
    if not existing:
        return None
    stats = pstats.Stats(existing[0])
    for path in existing[1:]:
        stats.add(path)
    parent = os.path.dirname(out_path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    stats.dump_stats(out_path)
    return out_path
