"""Reproducible named random streams.

Every stochastic component in the PiCloud model (traffic generators, request
arrival processes, failure injectors) draws from a named stream obtained
from one :class:`RngRegistry`.  Streams are seeded by hashing the master
seed with the stream name using SHA-256, so results are stable across
processes and Python versions (``hash()`` would not be, under
``PYTHONHASHSEED`` randomisation) and independent of the order in which
streams are created.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngRegistry:
    """A factory of deterministic, independent ``random.Random`` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The same ``(seed, name)`` pair always yields an identical sequence.
        """
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def fork(self, suffix: str) -> "RngRegistry":
        """Derive a child registry (e.g. one per experiment repetition)."""
        digest = hashlib.sha256(f"{self.seed}/{suffix}".encode()).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))

    def stream_names(self) -> list[str]:
        """Names of streams created so far (for audit / debugging)."""
        return sorted(self._streams)
