"""Shared-resource primitives built on Signals.

* :class:`Resource`  -- counted resource with FIFO queuing (mutex, slots).
* :class:`Store`     -- FIFO queue of items; the mailbox used by sockets,
  REST servers and daemons throughout the management plane.
* :class:`TokenBucket` -- rate limiter used for request shaping in load
  generators.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.errors import SimulationError
from repro.sim.kernel import Simulator
from repro.sim.process import Signal


class Resource:
    """A counted resource with FIFO waiters.

    ``yield resource.acquire()`` inside a process blocks until a slot is
    free; every successful acquire must be paired with a ``release()``.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise SimulationError("Resource capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Signal] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Signal:
        """Return a Signal that succeeds when a slot is granted."""
        grant = Signal(self.sim, name=f"acquire({self.name})")
        if self._in_use < self.capacity:
            self._in_use += 1
            grant.succeed(self)
        else:
            self._waiters.append(grant)
        return grant

    def release(self) -> None:
        """Release one slot, waking the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release() on idle resource {self.name!r}")
        if self._waiters:
            grant = self._waiters.popleft()
            grant.succeed(self)  # slot transfers directly; _in_use unchanged
        else:
            self._in_use -= 1


class Store:
    """An unbounded-or-bounded FIFO queue of items.

    ``put`` succeeds immediately while below capacity, otherwise queues.
    ``get`` succeeds immediately when items are available, otherwise
    queues.  Both return Signals, so processes simply ``yield store.get()``.
    """

    def __init__(
        self, sim: Simulator, capacity: Optional[int] = None, name: str = ""
    ) -> None:
        if capacity is not None and capacity < 1:
            raise SimulationError("Store capacity must be >= 1 or None")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Signal] = deque()
        self._putters: Deque[tuple[Signal, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def getters_waiting(self) -> int:
        return len(self._getters)

    def put(self, item: Any) -> Signal:
        """Offer ``item``; the Signal succeeds once the item is accepted."""
        done = Signal(self.sim, name=f"put({self.name})")
        if self._getters:
            # Hand the item straight to the oldest waiting getter.
            getter = self._getters.popleft()
            getter.succeed(item)
            done.succeed(None)
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            done.succeed(None)
        else:
            self._putters.append((done, item))
        return done

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False if the store is full."""
        if self._getters or self.capacity is None or len(self._items) < self.capacity:
            self.put(item)
            return True
        return False

    def get(self) -> Signal:
        """Take the oldest item; the Signal succeeds with the item."""
        got = Signal(self.sim, name=f"get({self.name})")
        if self._items:
            got.succeed(self._items.popleft())
            self._drain_putters()
        else:
            self._getters.append(got)
        return got

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get; returns ``(False, None)`` when empty."""
        if not self._items:
            return False, None
        item = self._items.popleft()
        self._drain_putters()
        return True, item

    def _drain_putters(self) -> None:
        while self._putters and (
            self.capacity is None or len(self._items) < self.capacity
        ):
            done, item = self._putters.popleft()
            self._items.append(item)
            done.succeed(None)


class TokenBucket:
    """A token-bucket rate limiter.

    Tokens accrue at ``rate`` per second up to ``burst``.  ``consume(n)``
    returns a Signal that succeeds once ``n`` tokens are available (and
    removes them).  Requests are served FIFO.
    """

    def __init__(
        self, sim: Simulator, rate: float, burst: float, name: str = ""
    ) -> None:
        if rate <= 0 or burst <= 0:
            raise SimulationError("TokenBucket rate and burst must be positive")
        self.sim = sim
        self.rate = rate
        self.burst = burst
        self.name = name
        self._tokens = burst
        self._last_refill = sim.now
        self._waiters: Deque[tuple[Signal, float]] = deque()
        self._wake_event = None

    def _refill(self) -> None:
        now = self.sim.now
        self._tokens = min(self.burst, self._tokens + (now - self._last_refill) * self.rate)
        self._last_refill = now

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens

    def consume(self, amount: float = 1.0) -> Signal:
        if amount > self.burst:
            raise SimulationError(
                f"cannot consume {amount} tokens; burst is {self.burst}"
            )
        grant = Signal(self.sim, name=f"tokens({self.name})")
        self._waiters.append((grant, amount))
        self._pump()
        return grant

    def _pump(self) -> None:
        self._refill()
        while self._waiters:
            grant, amount = self._waiters[0]
            if self._tokens >= amount:
                self._tokens -= amount
                self._waiters.popleft()
                grant.succeed(None)
            else:
                needed = amount - self._tokens
                delay = needed / self.rate
                if self._wake_event is not None:
                    self._wake_event.cancel()
                self._wake_event = self.sim.schedule(delay, self._pump)
                return
        if self._wake_event is not None:
            self._wake_event.cancel()
            self._wake_event = None
