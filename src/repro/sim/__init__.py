"""Discrete-event simulation kernel for the PiCloud scale model.

This package provides the substrate every other layer runs on:

* :class:`~repro.sim.kernel.Simulator` -- the event loop and simulated clock.
* :class:`~repro.sim.process.Process` -- generator-based cooperative
  processes, with :class:`~repro.sim.process.Signal`,
  :class:`~repro.sim.process.Timeout`, ``AllOf``/``AnyOf`` combinators and
  interrupts.
* :mod:`~repro.sim.resources` -- counted resources, FIFO stores (mailboxes)
  and continuous-level containers.
* :class:`~repro.sim.rng.RngRegistry` -- named, reproducibly-seeded random
  streams so experiments are deterministic.

The kernel is intentionally SimPy-like: processes are plain generators that
``yield`` waitables, so component code reads as straight-line logic.
"""

from repro.sim.kernel import Event, Simulator
from repro.sim.process import AllOf, AnyOf, Interrupt, Process, Signal, Timeout
from repro.sim.resources import Resource, Store, TokenBucket
from repro.sim.rng import RngRegistry

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "Resource",
    "RngRegistry",
    "Signal",
    "Simulator",
    "Store",
    "Timeout",
    "TokenBucket",
]
