"""Event loop and simulated clock.

The :class:`Simulator` owns a priority queue of :class:`Event` objects keyed
by ``(time, priority, sequence)``.  Everything in the PiCloud model --
CPU schedulers, network flow completions, DHCP lease expiry, REST request
handling -- ultimately becomes an event on this queue.
"""

from __future__ import annotations

import heapq
import time
from collections import deque
from typing import Any, Callable, Optional

from repro.errors import SimBudgetExceeded, SimulationError
from repro.sim.budget import DEFAULT_TRACE_LENGTH, BudgetSnapshot, RunBudget


def _callback_label(callback: Callable[..., None]) -> str:
    """Stable human-readable name for a scheduled callback."""
    label = getattr(callback, "__qualname__", None)
    if label is None:
        label = getattr(type(callback), "__qualname__", repr(callback))
    owner = getattr(callback, "__self__", None)
    if owner is not None:
        name = getattr(owner, "name", None)
        if isinstance(name, str) and name:
            label = f"{label}[{name}]"
    return label


class Event:
    """A scheduled callback.

    Events are created via :meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at` and may be cancelled with
    :meth:`Simulator.cancel` (or :meth:`cancel` directly) any time before
    they fire.  Comparison is by ``(time, priority, seq)`` so the heap is
    stable: two events at the same instant fire in scheduling order.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., None],
        args: tuple,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} prio={self.priority} {state}>"


class Simulator:
    """Discrete-event simulator: a clock plus an ordered event queue.

    Typical use::

        sim = Simulator()
        sim.schedule(5.0, print, "five seconds in")
        sim.run()          # runs until the queue drains
        assert sim.now == 5.0

    Processes (see :mod:`repro.sim.process`) are spawned with
    :meth:`process`, which is attached by that module to avoid a circular
    import at definition time.
    """

    # Tombstone compaction: every COMPACT_CHECK_MASK+1 scheduled events,
    # if the queue is at least COMPACT_MIN_QUEUE long and more than half
    # of it is cancelled tombstones, rebuild the heap without them.  The
    # fluid flow model cancels/reschedules completion events constantly;
    # without compaction the heap grows with dead entries and every push
    # and pop pays log(dead + live).
    COMPACT_CHECK_MASK = 0x0FFF
    COMPACT_MIN_QUEUE = 8192

    def __init__(self, budget: Optional[RunBudget] = None) -> None:
        self._now = 0.0
        # Heap entries are (time, priority, seq, event) tuples: seq is
        # unique, so ordering never falls through to comparing Event
        # objects and every heap operation compares at C speed.
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._running = False
        self.events_executed = 0
        self.heap_compactions = 0
        self.budget = budget
        # Causal tracing hook (repro.trace.Tracer installs itself here).
        # None keeps the kernel's dispatch path tracing-free: the only
        # per-event cost is the is-None check below.
        self.tracer = None
        self.budget_trips = 0
        self.watchdog_trips = 0  # wall-clock trips specifically
        # Observers called with the BudgetSnapshot when a budget trips
        # (telemetry wiring; see repro.telemetry.budget).
        self.budget_hooks: list[Callable[[BudgetSnapshot], None]] = []
        # Recent-event ring: stores (time, callback) pairs raw; callbacks
        # are resolved to human-readable labels only when a snapshot is
        # taken (budget trip / inspection), keeping the dispatch loop free
        # of the getattr chain in _callback_label.
        trace_length = budget.trace_length if budget else DEFAULT_TRACE_LENGTH
        self._trace: deque[tuple[float, Callable[..., None]]] = deque(
            maxlen=trace_length
        )
        # Live Process objects (registered by repro.sim.process) so budget
        # snapshots can name what was still runnable.
        self._live_processes: set = set()

    def set_budget(self, budget: Optional[RunBudget]) -> None:
        """Install (or clear) the default budget for subsequent runs."""
        self.budget = budget
        if budget is not None and budget.trace_length != self._trace.maxlen:
            self._trace = deque(self._trace, maxlen=budget.trace_length)

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling -------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative.  Lower ``priority`` values fire
        first among events scheduled for the same instant.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} (now is t={self._now})"
            )
        event = Event(time, priority, self._seq, callback, args)
        heapq.heappush(self._queue, (time, priority, self._seq, event))
        self._seq += 1
        if (self._seq & self.COMPACT_CHECK_MASK) == 0:
            self._maybe_compact()
        return event

    def _maybe_compact(self) -> None:
        """Drop cancelled tombstones when they dominate the queue."""
        queue = self._queue
        if len(queue) < self.COMPACT_MIN_QUEUE:
            return
        live = [entry for entry in queue if not entry[3].cancelled]
        if len(live) * 2 > len(queue):
            return
        heapq.heapify(live)
        # In place, so aliases held by a running dispatch loop stay valid.
        queue[:] = live
        self.heap_compactions += 1

    def cancel(self, event: Event) -> None:
        """Cancel a pending event (lazy removal; the heap slot is skipped)."""
        event.cancel()

    # -- execution --------------------------------------------------------

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        while self._queue and self._queue[0][3].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0][0] if self._queue else None

    def step(self) -> bool:
        """Execute the single next event.  Returns False if none remained.

        The installed budget's event and sim-time axes are enforced here,
        so even callers that drive the kernel one event at a time (signal
        waits, experiment phases) cannot spin past them.  Wall-clock
        enforcement lives in :meth:`run`, which owns a start timestamp.
        """
        if self.peek() is None:
            return False
        event = self._queue[0][3]
        budget = self.budget
        if budget is not None:
            if (budget.max_events is not None
                    and self.events_executed >= budget.max_events):
                self._trip(budget, "events", 0.0)
            if (budget.max_sim_time is not None
                    and event.time > budget.max_sim_time):
                if budget.max_sim_time > self._now:
                    self._now = budget.max_sim_time
                self._trip(budget, "sim_time", 0.0)
        heapq.heappop(self._queue)
        self._now = event.time
        self.events_executed += 1
        self._trace.append((event.time, event.callback))
        tracer = self.tracer
        if tracer is not None and tracer.kernel_events:
            tracer.on_kernel_event(event.time, _callback_label(event.callback))
        event.callback(*event.args)
        return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        budget: Optional[RunBudget] = None,
    ) -> None:
        """Run events in order.

        Stops when the queue drains, when the next event lies strictly
        beyond ``until`` (the clock is then advanced *to* ``until``), or
        after ``max_events`` events -- whichever comes first.  ``run`` may
        be called repeatedly to resume.

        ``budget`` (or, if omitted, the simulator's installed default
        budget) is a hard safety net: unlike ``until``/``max_events``,
        which return quietly, exhausting a budget raises
        :class:`~repro.errors.SimBudgetExceeded` with a diagnostic
        :class:`~repro.sim.budget.BudgetSnapshot`.  The event budget is
        cumulative over the simulator's lifetime; the wall-clock budget is
        per ``run()`` call.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        self._running = True
        effective = budget if budget is not None else self.budget
        if effective is not None and effective.unbounded:
            effective = None
        executed = 0
        wall_start = time.monotonic() if effective is not None else 0.0
        # Hoist per-event budget state out of the loop: the hot path pays
        # int compares only, and wall-clock reads happen every
        # wall_check_every events rather than per event.
        if effective is not None:
            limit_events = effective.max_events
            limit_sim_time = effective.max_sim_time
            limit_wall_s = effective.max_wall_s
            wall_check_every = effective.wall_check_every
        else:
            limit_events = limit_sim_time = limit_wall_s = None
            wall_check_every = 0
        next_wall_check = wall_check_every
        queue = self._queue
        heappop = heapq.heappop
        try:
            while True:
                if max_events is not None and executed >= max_events:
                    return
                if limit_events is not None and self.events_executed >= limit_events:
                    self._trip(effective, "events", time.monotonic() - wall_start)
                if limit_wall_s is not None and executed >= next_wall_check:
                    next_wall_check = executed + wall_check_every
                    if time.monotonic() - wall_start > limit_wall_s:
                        self.watchdog_trips += 1
                        self._trip(effective, "wall_clock",
                                   time.monotonic() - wall_start)
                while queue and queue[0][3].cancelled:
                    heappop(queue)
                if not queue:
                    if until is not None and until > self._now:
                        self._now = until
                    return
                next_time, _, _, event = queue[0]
                if until is not None and next_time > until:
                    self._now = until
                    return
                if limit_sim_time is not None and next_time > limit_sim_time:
                    if limit_sim_time > self._now:
                        self._now = limit_sim_time
                    self._trip(effective, "sim_time",
                               time.monotonic() - wall_start)
                heappop(queue)
                self._now = next_time
                self.events_executed += 1
                self._trace.append((next_time, event.callback))
                tracer = self.tracer
                if tracer is not None and tracer.kernel_events:
                    tracer.on_kernel_event(next_time, _callback_label(event.callback))
                event.callback(*event.args)
                executed += 1
        finally:
            self._running = False

    # -- budget enforcement ------------------------------------------------

    def _trip(self, budget: RunBudget, reason: str, wall_elapsed_s: float) -> None:
        self.budget_trips += 1
        snapshot = self.snapshot(reason, wall_elapsed_s=wall_elapsed_s)
        for hook in self.budget_hooks:
            hook(snapshot)
        limit = {
            "events": f"{budget.max_events} events",
            "sim_time": f"sim time t={budget.max_sim_time}",
            "wall_clock": f"{budget.max_wall_s}s wall clock",
        }[reason]
        message = f"simulation exceeded its run budget ({limit})"
        culprit = snapshot.repeated_callback()
        if culprit is not None:
            message += f"; recent events dominated by {culprit}"
        raise SimBudgetExceeded(f"{message}\n{snapshot.describe()}", snapshot)

    def snapshot(self, reason: str = "inspect",
                 wall_elapsed_s: float = 0.0, head: int = 8) -> BudgetSnapshot:
        """Capture the kernel's diagnostic state (cheap; safe anytime)."""
        pending = [entry[3] for entry in sorted(self._queue)
                   if not entry[3].cancelled]
        return BudgetSnapshot(
            reason=reason,
            now=self._now,
            events_executed=self.events_executed,
            wall_elapsed_s=wall_elapsed_s,
            pending_count=len(pending),
            pending_head=[
                (e.time, _callback_label(e.callback)) for e in pending[:head]
            ],
            # The ring buffer stores raw callbacks; labels are resolved
            # here, off the dispatch hot path.
            recent_events=[
                (when, _callback_label(callback))
                for when, callback in self._trace
            ],
            runnable_processes=sorted(
                getattr(p, "name", repr(p)) for p in self._live_processes
            ),
            trace_id=(
                self.tracer.active_trace_id() if self.tracer is not None else None
            ),
        )

    def pending_events(self) -> int:
        """Number of non-cancelled events still queued (O(n); for tests)."""
        return sum(1 for entry in self._queue if not entry[3].cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator t={self._now:.6f} queued={len(self._queue)}>"
