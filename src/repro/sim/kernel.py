"""Event loop and simulated clock.

The :class:`Simulator` owns a priority queue of :class:`Event` objects keyed
by ``(time, priority, sequence)``.  Everything in the PiCloud model --
CPU schedulers, network flow completions, DHCP lease expiry, REST request
handling -- ultimately becomes an event on this queue.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.errors import SimulationError


class Event:
    """A scheduled callback.

    Events are created via :meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at` and may be cancelled with
    :meth:`Simulator.cancel` (or :meth:`cancel` directly) any time before
    they fire.  Comparison is by ``(time, priority, seq)`` so the heap is
    stable: two events at the same instant fire in scheduling order.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., None],
        args: tuple,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} prio={self.priority} {state}>"


class Simulator:
    """Discrete-event simulator: a clock plus an ordered event queue.

    Typical use::

        sim = Simulator()
        sim.schedule(5.0, print, "five seconds in")
        sim.run()          # runs until the queue drains
        assert sim.now == 5.0

    Processes (see :mod:`repro.sim.process`) are spawned with
    :meth:`process`, which is attached by that module to avoid a circular
    import at definition time.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[Event] = []
        self._seq = 0
        self._running = False
        self.events_executed = 0

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling -------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative.  Lower ``priority`` values fire
        first among events scheduled for the same instant.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} (now is t={self._now})"
            )
        event = Event(time, priority, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a pending event (lazy removal; the heap slot is skipped)."""
        event.cancel()

    # -- execution --------------------------------------------------------

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Execute the single next event.  Returns False if none remained."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self.events_executed += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events in order.

        Stops when the queue drains, when the next event lies strictly
        beyond ``until`` (the clock is then advanced *to* ``until``), or
        after ``max_events`` events -- whichever comes first.  ``run`` may
        be called repeatedly to resume.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        self._running = True
        executed = 0
        try:
            while True:
                if max_events is not None and executed >= max_events:
                    return
                next_time = self.peek()
                if next_time is None:
                    if until is not None and until > self._now:
                        self._now = until
                    return
                if until is not None and next_time > until:
                    self._now = until
                    return
                self.step()
                executed += 1
        finally:
            self._running = False

    def pending_events(self) -> int:
        """Number of non-cancelled events still queued (O(n); for tests)."""
        return sum(1 for e in self._queue if not e.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator t={self._now:.6f} queued={len(self._queue)}>"
