"""Run budgets for the discrete-event kernel.

A :class:`RunBudget` bounds a simulation along three axes -- events
executed, simulated time, and wall-clock time -- so that no run can spin
forever.  When the kernel trips a budget it raises
:class:`~repro.errors.SimBudgetExceeded` carrying a
:class:`BudgetSnapshot`: the pending event queue head, the runnable
processes, and the tail of recently executed events.  The snapshot is the
debugging tool: a non-terminating simulation almost always shows the same
callback re-executing at the same instant, and the trace names it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

DEFAULT_TRACE_LENGTH = 32
DEFAULT_WALL_CHECK_EVERY = 1024


@dataclass(frozen=True)
class RunBudget:
    """Limits for one (or many) :meth:`Simulator.run` calls.

    ``None`` disables an axis.  ``max_sim_time`` is an *absolute* simulated
    timestamp: the run trips when the next event lies strictly beyond it.
    ``max_wall_s`` is wall-clock seconds per ``run()`` call, checked every
    ``wall_check_every`` events (cheap enough to leave on everywhere).
    """

    max_events: Optional[int] = None
    max_sim_time: Optional[float] = None
    max_wall_s: Optional[float] = None
    wall_check_every: int = DEFAULT_WALL_CHECK_EVERY
    trace_length: int = DEFAULT_TRACE_LENGTH

    def __post_init__(self) -> None:
        if self.max_events is not None and self.max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {self.max_events}")
        if self.max_sim_time is not None and self.max_sim_time < 0:
            raise ValueError(f"max_sim_time must be >= 0, got {self.max_sim_time}")
        if self.max_wall_s is not None and self.max_wall_s <= 0:
            raise ValueError(f"max_wall_s must be > 0, got {self.max_wall_s}")
        if self.wall_check_every < 1:
            raise ValueError("wall_check_every must be >= 1")

    @property
    def unbounded(self) -> bool:
        return (self.max_events is None and self.max_sim_time is None
                and self.max_wall_s is None)


@dataclass
class BudgetSnapshot:
    """Diagnostic state captured the moment a budget trips.

    ``reason`` is one of ``"events"``, ``"sim_time"``, ``"wall_clock"``.
    ``pending_head`` and ``recent_events`` are ``(sim_time, label)`` pairs;
    labels are the scheduled callback's qualified name.
    """

    reason: str
    now: float
    events_executed: int
    wall_elapsed_s: float
    pending_count: int
    pending_head: List[Tuple[float, str]] = field(default_factory=list)
    recent_events: List[Tuple[float, str]] = field(default_factory=list)
    runnable_processes: List[str] = field(default_factory=list)
    # When a repro.trace.Tracer is installed, the trace id of the most
    # recently started still-open span at the moment of the trip -- the
    # handle that correlates a watchdog/budget failure with the causal
    # trace of the operation that was in flight.
    trace_id: Optional[int] = None

    def describe(self) -> str:
        """Multi-line human-readable dump (printed by the CLI on a trip)."""
        lines = [
            f"budget exceeded ({self.reason}) at t={self.now:.6f} after "
            f"{self.events_executed} events ({self.wall_elapsed_s:.2f}s wall)",
            f"pending events: {self.pending_count}",
        ]
        if self.trace_id is not None:
            lines.append(f"active trace: {self.trace_id}")
        for when, label in self.pending_head:
            lines.append(f"  next  t={when:.6f}  {label}")
        if self.runnable_processes:
            lines.append(f"live processes: {len(self.runnable_processes)}")
            for name in self.runnable_processes[:16]:
                lines.append(f"  proc  {name}")
        if self.recent_events:
            lines.append(f"last {len(self.recent_events)} executed events:")
            for when, label in self.recent_events:
                lines.append(f"  done  t={when:.6f}  {label}")
        return "\n".join(lines)

    def repeated_callback(self) -> Optional[str]:
        """The label dominating the recent trace, if one does (>= half).

        This is the usual smoking gun for a non-terminating loop: one
        callback rescheduling itself at the same instant.
        """
        if not self.recent_events:
            return None
        counts: dict[str, int] = {}
        for __, label in self.recent_events:
            counts[label] = counts.get(label, 0) + 1
        label, count = max(counts.items(), key=lambda kv: kv[1])
        return label if count * 2 >= len(self.recent_events) else None
