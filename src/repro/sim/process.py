"""Generator-based cooperative processes.

A *process* is a plain Python generator driven by the simulator.  Each
``yield`` hands the kernel a *waitable* describing what the process is
waiting for; the kernel resumes the generator (via ``send`` or ``throw``)
when that waitable completes::

    def client(sim, server):
        yield Timeout(sim, 1.0)                 # sleep 1 simulated second
        reply = yield server.request("GET /")    # wait on a Signal
        done = yield AllOf(sim, [sig_a, sig_b])  # wait for both

Accepted yield values:

* :class:`Signal` -- a one-shot event; resumes with the signal's value, or
  re-raises the signal's exception inside the generator.
* :class:`Timeout` -- resumes after a fixed delay.
* :class:`Process` -- resumes when the other process finishes, with its
  return value (``return x`` inside the generator).
* :class:`AllOf` / :class:`AnyOf` -- combinators over the above.
* a plain ``int``/``float`` -- shorthand for ``Timeout(sim, value)``.

Processes may be interrupted: :meth:`Process.interrupt` raises
:class:`Interrupt` at the current yield point.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import SimulationError
from repro.sim.kernel import Simulator


class Interrupt(Exception):
    """Raised inside a process generator when it is interrupted.

    ``cause`` carries whatever object the interrupter supplied.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Signal:
    """A one-shot, many-waiter event carrying a value or an exception.

    A Signal starts *pending*; exactly one of :meth:`succeed` or
    :meth:`fail` moves it to *triggered* and wakes every registered
    callback.  Callbacks added after triggering fire immediately (on the
    event queue, preserving deterministic ordering).
    """

    __slots__ = ("sim", "name", "_value", "_exc", "_triggered", "_callbacks")

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._triggered = False
        self._callbacks: list[Callable[["Signal"], None]] = []

    # -- state ------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def ok(self) -> bool:
        """True once the signal succeeded (False while pending or failed)."""
        return self._triggered and self._exc is None

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError(f"signal {self.name!r} not yet triggered")
        if self._exc is not None:
            raise self._exc
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exc if self._triggered else None

    # -- triggering -------------------------------------------------------

    def succeed(self, value: Any = None) -> "Signal":
        """Trigger successfully with ``value``; wakes all waiters."""
        self._trigger(value, None)
        return self

    def fail(self, exc: BaseException) -> "Signal":
        """Trigger with an exception; waiters re-raise it."""
        if not isinstance(exc, BaseException):
            raise SimulationError("Signal.fail() requires an exception instance")
        self._trigger(None, exc)
        return self

    def _trigger(self, value: Any, exc: Optional[BaseException]) -> None:
        if self._triggered:
            raise SimulationError(f"signal {self.name!r} already triggered")
        self._triggered = True
        self._value = value
        self._exc = exc
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    # -- waiting ----------------------------------------------------------

    def add_done_callback(self, callback: Callable[["Signal"], None]) -> None:
        """Invoke ``callback(self)`` on trigger (immediately if already done)."""
        if self._triggered:
            # Defer to the event queue so ordering stays deterministic and
            # callers never re-enter during registration.
            self.sim.schedule(0.0, callback, self)
        else:
            self._callbacks.append(callback)

    def discard_callback(self, callback: Callable[["Signal"], None]) -> None:
        """Remove a pending callback if present (used by AnyOf / interrupts)."""
        try:
            self._callbacks.remove(callback)
        except ValueError:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "triggered" if self._triggered else "pending"
        return f"<Signal {self.name!r} {state}>"


class Timeout(Signal):
    """A Signal that succeeds automatically after ``delay`` seconds.

    ``cancel()`` removes the pending event (useful when a Timeout raced
    against another signal in ``AnyOf`` and lost -- cancelling keeps the
    event queue clean so simulations terminate as soon as real work does).
    """

    def __init__(self, sim: Simulator, delay: float, value: Any = None) -> None:
        super().__init__(sim, name=f"timeout({delay})")
        self.delay = delay
        self._event = sim.schedule(delay, self._fire, value)

    def _fire(self, value: Any) -> None:
        if not self._triggered:
            self.succeed(value)

    def cancel(self) -> None:
        """Cancel the pending timeout; no-op once triggered."""
        if not self._triggered:
            self._event.cancel()


class AllOf(Signal):
    """Succeeds when every child signal has triggered.

    Resumes with a list of child values in the order given.  Fails fast
    with the first child exception.
    """

    def __init__(self, sim: Simulator, signals: Iterable[Signal]) -> None:
        super().__init__(sim, name="all_of")
        self._children = list(signals)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for child in self._children:
            child.add_done_callback(self._on_child)

    def _on_child(self, child: Signal) -> None:
        if self._triggered:
            return
        if child.exception is not None:
            self.fail(child.exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([c.value for c in self._children])


class AnyOf(Signal):
    """Succeeds when the first child signal triggers.

    Resumes with ``(index, value)`` of the winning child; fails if the
    first child to trigger failed.
    """

    def __init__(self, sim: Simulator, signals: Iterable[Signal]) -> None:
        super().__init__(sim, name="any_of")
        self._children = list(signals)
        if not self._children:
            raise SimulationError("AnyOf requires at least one signal")
        for index, child in enumerate(self._children):
            child.add_done_callback(self._make_callback(index))

    def _make_callback(self, index: int) -> Callable[[Signal], None]:
        def on_child(child: Signal) -> None:
            if self._triggered:
                return
            if child.exception is not None:
                self.fail(child.exception)
            else:
                self.succeed((index, child.value))

        return on_child


ProcessGenerator = Generator[Any, Any, Any]


class Process(Signal):
    """A running generator, driven by the kernel.

    A Process is itself a Signal that triggers when the generator returns
    (with the generator's return value) or raises (with the exception), so
    processes can wait on each other by yielding the Process object.
    """

    def __init__(self, sim: Simulator, generator: ProcessGenerator, name: str = "") -> None:
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self._generator = generator
        self._waiting_on: Optional[Signal] = None
        self._wait_epoch = 0
        self._started = False
        # Registered for budget snapshots: the kernel reports live
        # processes when a run budget trips.
        sim._live_processes.add(self)
        # Start on the event queue (not synchronously) so a process never
        # runs before its creator finishes the current statement.
        sim.schedule(0.0, self._start)

    def _trigger(self, value: Any, exc: Optional[BaseException]) -> None:
        self.sim._live_processes.discard(self)
        super()._trigger(value, exc)

    # -- lifecycle ----------------------------------------------------------

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def _start(self) -> None:
        if not self._started:
            self._started = True
            self._advance(lambda: self._generator.send(None))

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the generator at its yield point.

        No-op if the process already finished.  Interrupting a process that
        has been created but not yet started cancels it before first run.
        """
        if self.triggered:
            return
        self._detach_wait()
        if not self._started:
            self._started = True
            self.sim.schedule(
                0.0, self._advance, lambda: self._generator.throw(Interrupt(cause))
            )
        else:
            self.sim.schedule(
                0.0, self._advance, lambda: self._generator.throw(Interrupt(cause))
            )

    # -- engine -------------------------------------------------------------

    def _detach_wait(self) -> None:
        if self._waiting_on is not None:
            self._wait_epoch += 1
            self._waiting_on = None

    def _advance(self, resume: Callable[[], Any]) -> None:
        if self.triggered:
            return
        try:
            yielded = resume()
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt:
            # The generator let the interrupt escape: treat as termination.
            self.succeed(None)
            return
        except BaseException as exc:  # noqa: BLE001 - process body failed
            self.fail(exc)
            return
        try:
            waitable = self._coerce(yielded)
        except SimulationError as exc:
            self._generator.close()
            self.fail(exc)
            return
        self._wait_on(waitable)

    def _coerce(self, yielded: Any) -> Signal:
        if isinstance(yielded, Signal):
            return yielded
        if isinstance(yielded, (int, float)):
            return Timeout(self.sim, float(yielded))
        raise SimulationError(
            f"process {self.name!r} yielded unsupported value {yielded!r}"
        )

    def _wait_on(self, signal: Signal) -> None:
        self._waiting_on = signal
        self._wait_epoch += 1
        epoch = self._wait_epoch

        def on_done(sig: Signal) -> None:
            # Stale wakeup after an interrupt detached us: ignore.
            if epoch != self._wait_epoch or self.triggered:
                return
            self._waiting_on = None
            exc = sig.exception
            if exc is not None:
                self._advance(lambda: self._generator.throw(exc))
            else:
                self._advance(lambda: self._generator.send(sig._value))

        signal.add_done_callback(on_done)


def _spawn(self: Simulator, generator: ProcessGenerator, name: str = "") -> Process:
    """Spawn a process on this simulator (bound as ``Simulator.process``)."""
    return Process(self, generator, name=name)


# Attach the process constructor to Simulator so user code can write
# ``sim.process(my_gen())`` without importing Process everywhere.
Simulator.process = _spawn  # type: ignore[attr-defined]
