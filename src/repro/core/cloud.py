"""The PiCloud facade: build and drive the whole testbed.

Construction wires every layer together: machines in Lego racks, the
multi-root tree (or fat-tree) fabric with the configured routing mode,
per-host kernels and LXC runtimes, node daemons, and the pimaster with
DHCP/DNS/images/monitoring.  After :meth:`boot`, the cloud is the paper's
Fig. 1/2 system in software::

    cloud = PiCloud(PiCloudConfig())        # 4 racks x 14 Model B
    cloud.boot()
    record = cloud.spawn("webserver")       # placed, pushed, leased, started
    cloud.run_for(60.0)
    print(cloud.dashboard().render())
"""

from __future__ import annotations

import os
from typing import Dict, Optional

from repro import trace
from repro.core.config import PiCloudConfig
from repro.errors import LeaseError, PiCloudError
from repro.hardware.machine import Machine
from repro.hostos.kernelhost import HostKernel
from repro.hostos.netstack import IpFabric
from repro.mgmt.dashboard import Dashboard
from repro.mgmt.node_daemon import NodeDaemon
from repro.mgmt.pimaster import PiMaster
from repro.netsim.fabric import Network
from repro.netsim.routing import EcmpRouting, ShortestPathRouting
from repro.netsim.sdn.apps import (
    EcmpHashApp,
    LeastCongestedPathApp,
    ShortestPathApp,
)
from repro.netsim.sdn.controller import OpenFlowPathService, SdnController
from repro.netsim.topology import fat_tree, multi_root_tree, rack_host_names
from repro.power.meter import CloudPowerMeter
from repro.sim.kernel import Simulator
from repro.sim.process import AllOf, Signal
from repro.sim.rng import RngRegistry
from repro.telemetry.budget import BudgetTelemetry
from repro.trace import Tracer
from repro.virt.container import Container

PIMASTER_NODE = "pimaster"
# Static assignment for the head node, reserved out of the DHCP pool.
PIMASTER_IP_SUFFIX = 1


class PiCloud:
    """The assembled testbed."""

    def __init__(self, config: Optional[PiCloudConfig] = None) -> None:
        self.config = config or PiCloudConfig()
        # Profiling starts before any other construction so the dump
        # covers the full cold start (build + boot), not just the run.
        self.profiler = None
        if self.config.profile_out:
            import cProfile

            self.profiler = cProfile.Profile()
            self.profiler.enable()
        self.sim = Simulator(budget=self.config.run_budget())
        self.tracer: Optional[Tracer] = None
        if self.config.trace.enabled:
            self.tracer = Tracer(
                self.sim, kernel_events=self.config.trace.kernel_events
            )
        self.budget_telemetry = BudgetTelemetry(self.sim)
        self.rng = RngRegistry(self.config.seed)

        # -- topology -----------------------------------------------------
        racks = rack_host_names(self.config.num_racks, self.config.pis_per_rack)
        self.node_names = [name for rack in racks for name in rack]
        if self.config.topology == "multi-root-tree":
            self.topology = multi_root_tree(
                racks,
                num_roots=self.config.num_roots,
                host_bandwidth=self.config.host_bandwidth,
                uplink_bandwidth=self.config.uplink_bandwidth,
                gateway_bandwidth=self.config.uplink_bandwidth,
                latency=self.config.link_latency,
            )
            attach_point = "gateway"
        else:
            self.topology = fat_tree(
                self.config.fat_tree_k,
                hosts=self.node_names,
                host_bandwidth=self.config.host_bandwidth,
                fabric_bandwidth=self.config.uplink_bandwidth,
                latency=self.config.link_latency,
            )
            attach_point = "core0"
        # The pimaster hangs off the gateway / a core switch.
        self.topology.add_host(PIMASTER_NODE)
        self.topology.connect(
            PIMASTER_NODE, attach_point,
            self.config.uplink_bandwidth, self.config.link_latency,
        )

        # -- routing / SDN ---------------------------------------------------
        self.controller: Optional[SdnController] = None
        routing = self.config.routing
        structured = self.config.structured_routing
        if routing == "shortest":
            path_service = ShortestPathRouting(
                self.sim, self.topology, structured=structured
            )
        elif routing == "ecmp":
            path_service = EcmpRouting(
                self.sim, self.topology, structured=structured
            )
        else:
            app = {
                "sdn-shortest": ShortestPathApp(),
                "sdn-ecmp": EcmpHashApp(),
                "sdn-least-congested": LeastCongestedPathApp(),
            }[routing]
            self.controller = SdnController(
                self.sim, self.topology, app, structured=structured
            )
            path_service = OpenFlowPathService(
                self.sim,
                self.controller,
                idle_timeout=self.config.sdn_idle_timeout_s,
                control_latency=self.config.sdn_control_latency_s,
                match_granularity=self.config.sdn_match_granularity,
            )
        self.network = Network(
            self.sim, self.topology, path_service=path_service,
            congestion_threshold=self.config.congestion_threshold,
            incremental=self.config.incremental_fairness,
            rate_model=self.config.rate_model.build(),
        )
        if self.controller is not None:
            self.controller.attach_network(self.network)
        self.ip_fabric = IpFabric(self.sim, self.network)

        # -- machines -----------------------------------------------------------
        self.machines: Dict[str, Machine] = {}
        for rack_index, rack in enumerate(racks):
            for slot, name in enumerate(rack):
                self.machines[name] = Machine(
                    self.sim, self.config.machine_spec, name,
                    rack=f"rack{rack_index}", slot=slot,
                )
        self.machines[PIMASTER_NODE] = Machine(
            self.sim, self.config.pimaster_spec, PIMASTER_NODE, rack=None
        )

        # Populated by boot():
        self.kernels: Dict[str, HostKernel] = {}
        self.daemons: Dict[str, NodeDaemon] = {}
        self.pimaster: Optional[PiMaster] = None
        self.power_meter = CloudPowerMeter(self.machines.values())
        self._booted = False
        # Trace context of the latest outstanding fault per target (node
        # id, or "a|b" for links): the failure detector parents its
        # health transitions here so detection descends from its cause.
        self._fault_contexts: Dict[str, object] = {}
        # Gray-failure state: node id -> service-time stretch factor
        # (>= 1.0) consumed by the load engine's latency model.
        self._slow_factors: Dict[str, float] = {}
        # Node groups of the active partition (for heal bookkeeping).
        self._partition_groups: list[list[str]] = []

    # -- lifecycle -----------------------------------------------------------------

    def boot(self) -> None:
        """Power on every machine and bring up the management plane.

        With ``instant_boot`` (default) this is synchronous; otherwise it
        schedules timed boots and you must ``run()`` the simulator first
        (use :meth:`boot_async`).
        """
        if self._booted:
            raise PiCloudError("cloud already booted")
        if not self.config.instant_boot:
            raise PiCloudError("config has instant_boot=False; use boot_async()")
        for machine in self.machines.values():
            machine.boot_immediately()
        self._bring_up_management()

    def boot_async(self) -> Signal:
        """Timed boot: machines come up after their spec boot time."""
        if self._booted:
            raise PiCloudError("cloud already booted")
        signals = [machine.boot() for machine in self.machines.values()]
        done = Signal(self.sim, name="cloud.boot")

        def run():
            yield AllOf(self.sim, signals)
            self._bring_up_management()
            done.succeed(self)

        self.sim.process(run(), name="cloud.boot")
        return done

    def _bring_up_management(self) -> None:
        # Host kernels everywhere.
        for name, machine in self.machines.items():
            self.kernels[name] = HostKernel(self.sim, machine, self.ip_fabric)

        # The pimaster and its services.
        health = self.config.health
        self.pimaster = PiMaster(
            self.kernels[PIMASTER_NODE],
            subnet=self.config.subnet,
            zone=self.config.dns_zone,
            monitoring_interval_s=self.config.monitoring_interval_s,
            monitoring_idle_backoff=self.config.monitoring_idle_backoff,
            monitoring_max_interval_s=self.config.monitoring_max_interval_s,
            op_deadline_s=self.config.op_deadline_s,
            op_attempts=self.config.op_attempts,
            op_backoff_s=self.config.op_backoff_s,
            heartbeat_interval_s=health.heartbeat_interval_s,
            heartbeat_timeout_s=health.heartbeat_timeout_s,
            suspect_after_misses=health.suspect_after_misses,
            dead_after_misses=health.dead_after_misses,
            evacuation_queue_limit=health.evacuation_queue_limit,
            evacuation_retry_budget=health.evacuation_retry_budget,
            breaker_failure_threshold=health.breaker_failure_threshold,
            breaker_reset_s=health.breaker_reset_s,
            unreachable_grace_s=health.unreachable_grace_s,
            fencing=health.fencing,
            witness_count=health.witness_count,
        )
        self.pimaster.health.fault_context_provider = self.fault_context
        pool = self.pimaster.dhcp.pool
        pimaster_ip = pool.allocate()
        self.kernels[PIMASTER_NODE].netstack.bind_address(pimaster_ip)

        # Node daemons, with static (infinite-TTL) management leases.
        # One batched pass per node -- lease, bind, daemon, enroll -- with
        # the call chain hoisted out of the loop; at hundreds of nodes the
        # repeated attribute traversals are a measurable slice of boot.
        request_lease = self.pimaster.dhcp.request_lease
        register_node = self.pimaster.register_node
        kernels = self.kernels
        daemons = self.daemons
        op_deadline_s = self.config.op_deadline_s
        static_ttl = float("inf")
        for name in self.node_names:
            lease = request_lease(client_id=name, hostname=name, ttl_s=static_ttl)
            kernel = kernels[name]
            kernel.netstack.bind_address(lease.ip)
            daemon = NodeDaemon(kernel, op_deadline_s=op_deadline_s)
            daemons[name] = daemon
            register_node(daemon, lease.ip)

        if self.config.start_monitoring:
            self.pimaster.monitoring.start()
        if self.config.health.enabled:
            self.pimaster.health.start()
        self._booted = True

    def _require_booted(self) -> None:
        if not self._booted:
            raise PiCloudError("cloud not booted; call boot() first")

    # -- driving the simulation -------------------------------------------------------

    def run_for(self, seconds: float) -> None:
        """Advance the simulated clock by ``seconds``."""
        self.sim.run(until=self.sim.now + seconds)

    def run(self, until: Optional[float] = None) -> None:
        self.sim.run(until=until)

    # -- convenience passthroughs ----------------------------------------------------------

    def spawn(self, image: str, **kwargs) -> Signal:
        """Spawn a container through the pimaster (see PiMaster.spawn_container)."""
        self._require_booted()
        return self.pimaster.spawn_container(image, **kwargs)

    def spawn_and_wait(self, image: str, **kwargs):
        """Spawn and block (runs the simulator) until placement completes."""
        signal = self.spawn(image, **kwargs)
        self.run_until_signal(signal)
        return signal.value  # raises if the spawn failed

    def run_until_signal(self, signal: Signal, max_seconds: float = 86_400.0) -> None:
        """Step the simulator until ``signal`` triggers (or the cap hits).

        Unlike ``run_for``, this stops the moment the signal fires, so
        periodic background work (monitoring polls) does not needlessly
        extend the run.
        """
        deadline = self.sim.now + max_seconds
        while not signal.triggered and self.sim.now < deadline:
            if not self.sim.step():
                break

    def container(self, name: str) -> Container:
        """The live container object for a managed container name."""
        self._require_booted()
        record = self.pimaster.container_record(name)
        return self.daemons[record.node_id].runtime.container(name)

    def dashboard(self) -> Dashboard:
        self._require_booted()
        return self.pimaster.dashboard()

    def rack_inventory(self) -> dict[str, list[str]]:
        """Rack -> machines, the Fig. 1 physical inventory."""
        return self.topology.racks()

    # -- failure injection ----------------------------------------------------------------

    def fail_node(self, node_id: str) -> None:
        """Hard-fail a Pi: machine dies, its daemon stops serving."""
        self._require_booted()
        machine = self.machines[node_id]
        machine.fail()
        daemon = self.daemons.get(node_id)
        if daemon is not None:
            daemon.server.stop()
        span = trace.instant(self.sim, "fault.node-fail", kind="fault",
                             attributes={"target": node_id}, status="error")
        self._fault_contexts[node_id] = span.context

    def rejoin_node(self, node_id: str) -> Signal:
        """Repair a failed Pi and re-enroll it; Signal -> NodeRecord.

        Models the swap-the-SD-card operational loop: the machine is
        repaired and rebooted, the old kernel's residue is torn down
        (leaked container memory uncharged, fabric addresses unbound, SD
        card wiped), and a *fresh* kernel + node daemon come up on a
        fresh management lease.  The daemon then re-announces itself to
        the pimaster (:meth:`PiMaster.rejoin_node`), which re-registers
        it and marks it ALIVE once a health probe answers.
        """
        self._require_booted()
        if node_id not in self.node_names:
            raise PiCloudError(f"cannot rejoin unmanaged node {node_id!r}")
        machine = self.machines[node_id]
        machine.repair()
        machine.boot_immediately()
        old_kernel = self.kernels.get(node_id)
        if old_kernel is not None:
            for cgroup_name in old_kernel.cgroups():
                old_kernel.remove_cgroup(cgroup_name)
            old_kernel.netstack.reset()
            old_kernel.filesystem.wipe()
        kernel = HostKernel(self.sim, machine, self.ip_fabric)
        self.kernels[node_id] = kernel
        try:
            self.pimaster.dhcp.release(node_id)
        except LeaseError:
            pass
        lease = self.pimaster.dhcp.request_lease(
            client_id=node_id, hostname=node_id, ttl_s=float("inf")
        )
        kernel.netstack.bind_address(lease.ip)
        daemon = NodeDaemon(kernel, op_deadline_s=self.config.op_deadline_s)
        self.daemons[node_id] = daemon
        span = trace.instant(
            self.sim, "fault.node-repair", kind="fault",
            parent=self._fault_contexts.pop(node_id, None),
            attributes={"target": node_id}, status="ok",
        )
        return self.pimaster.rejoin_node(daemon, lease.ip, parent=span.context)

    def fail_link(self, a: str, b: str) -> None:
        self.network.fail_link(a, b)
        span = trace.instant(self.sim, "fault.link-fail", kind="fault",
                             attributes={"target": f"{a}|{b}"}, status="error")
        self._fault_contexts[f"{a}|{b}"] = span.context

    def repair_link(self, a: str, b: str) -> None:
        self.network.repair_link(a, b)
        trace.instant(self.sim, "fault.link-repair", kind="fault",
                      parent=self._fault_contexts.pop(f"{a}|{b}", None),
                      attributes={"target": f"{a}|{b}"}, status="ok")

    # -- gray failures & partitions -------------------------------------------------------

    def degrade_link(self, a: str, b: str, bandwidth_frac: float = 1.0,
                     extra_latency: float = 0.0, loss: float = 0.0) -> None:
        """Gray-fail a cable: reduced capacity / added latency / loss.

        The link stays *up* -- nothing is rerouted and no flow dies; the
        fair-share solver squeezes traffic onto the reduced capacity and
        the load engine's latency model picks up the loss/latency.
        Revert with :meth:`restore_link`.
        """
        self.network.degrade_link(
            a, b, bandwidth_frac=bandwidth_frac,
            extra_latency=extra_latency, loss=loss,
        )
        span = trace.instant(
            self.sim, "fault.link-degrade", kind="fault",
            attributes={"target": f"{a}|{b}", "bandwidth_frac": bandwidth_frac,
                        "extra_latency": extra_latency, "loss": loss},
            status="error",
        )
        self._fault_contexts[f"{a}|{b}"] = span.context

    def restore_link(self, a: str, b: str) -> None:
        """Clear a link's gray-failure state (capacity back to spec)."""
        if not self.network.link(a, b).degraded:
            return
        self.network.restore_link(a, b)
        trace.instant(self.sim, "fault.link-restore", kind="fault",
                      parent=self._fault_contexts.pop(f"{a}|{b}", None),
                      attributes={"target": f"{a}|{b}"}, status="ok")

    def slow_node(self, node_id: str, factor: float) -> None:
        """Gray-fail a Pi: service times stretch by ``factor`` (>= 1).

        The node keeps answering heartbeats and serving requests -- it is
        just slow (thermal throttling, a dying SD card).  Consumed by the
        load engine's latency model; revert with
        :meth:`restore_node_speed`.
        """
        if factor < 1.0:
            raise PiCloudError(f"slow_node factor must be >= 1, got {factor}")
        if node_id not in self.machines:
            raise PiCloudError(f"unknown node {node_id!r}")
        self._slow_factors[node_id] = factor
        span = trace.instant(self.sim, "fault.node-slow", kind="fault",
                             attributes={"target": node_id, "factor": factor},
                             status="error")
        self._fault_contexts[node_id] = span.context

    def restore_node_speed(self, node_id: str) -> None:
        """Clear a node's slow-down (service times back to spec)."""
        if self._slow_factors.pop(node_id, None) is None:
            return
        trace.instant(self.sim, "fault.node-restore", kind="fault",
                      parent=self._fault_contexts.pop(node_id, None),
                      attributes={"target": node_id}, status="ok")

    def slow_factor(self, node_id: str) -> float:
        """The node's current service-time stretch (1.0 = healthy)."""
        return self._slow_factors.get(node_id, 1.0)

    def partition(self, groups) -> None:
        """Partition the fabric into isolated reachability groups.

        ``groups`` is a list of node-name groups (hosts and/or switches);
        unnamed nodes form one implicit "rest" group.  Cross-group
        traffic -- control plane heartbeats included -- fails until
        :meth:`heal_partition`.  Nothing is marked dead: every node keeps
        running, which is exactly what makes partitions dangerous.
        """
        groups = [list(group) for group in groups]
        self.network.set_partition(groups)
        members = [node for group in groups for node in group]
        span = trace.instant(
            self.sim, "fault.partition", kind="fault",
            attributes={"groups": len(groups), "members": ",".join(members)},
            status="error",
        )
        self._partition_groups = groups
        self._fault_contexts["partition"] = span.context
        for node in members:
            self._fault_contexts[node] = span.context

    def heal_partition(self) -> None:
        """Heal the active partition; reachability is restored instantly."""
        if not self.network.partitioned:
            return
        self.network.clear_partition()
        span = trace.instant(
            self.sim, "fault.partition-heal", kind="fault",
            parent=self._fault_contexts.pop("partition", None),
            attributes={}, status="ok",
        )
        # Re-point member fault contexts at the heal instant so the
        # recovery chain (node back ALIVE -> reconcile -> destroys)
        # traces back to the heal, not the cut.
        for group in self._partition_groups:
            for node in group:
                self._fault_contexts[node] = span.context
        self._partition_groups = []

    def fault_context(self, target: str):
        """Trace context of the latest outstanding fault on ``target``.

        ``target`` is a node id or an ``"a|b"`` link key.  Installed as
        the failure detector's ``fault_context_provider`` so detection
        instants descend from the fault that caused them.  None when no
        fault is outstanding (or tracing is off).
        """
        return self._fault_contexts.get(target)

    # -- tracing ----------------------------------------------------------------------

    def write_trace(self, path: str) -> str:
        """Export the recorded trace; ``.jsonl`` -> JSONL, else Chrome JSON.

        Open spans are closed at the current clock first, so a trace
        exported mid-run (or after a budget trip) is still well-formed.
        """
        if self.tracer is None:
            raise PiCloudError(
                "tracing is off; build with "
                "PiCloudConfig(trace=TraceConfig(enabled=True))"
            )
        self.tracer.finish_open_spans()
        return self.tracer.write(path)

    def write_profile(self, path: Optional[str] = None) -> str:
        """Stop the ``profile_out`` profiler and dump pstats to disk.

        Returns the path written.  The dump covers everything since
        construction -- build, boot and all simulation run so far -- and
        is loadable with ``pstats.Stats(path)`` or snakeviz.
        """
        if self.profiler is None:
            raise PiCloudError(
                "profiling is off; build with PiCloudConfig(profile_out=...)"
            )
        self.profiler.disable()
        target = path or self.config.profile_out
        parent = os.path.dirname(target)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self.profiler.dump_stats(target)
        return target

    # -- measurements ------------------------------------------------------------------------

    def total_watts(self) -> float:
        return self.power_meter.current_watts()

    def energy_joules(self, start: Optional[float] = None,
                      end: Optional[float] = None) -> float:
        return self.power_meter.energy_joules(start, end)

    def describe(self) -> dict[str, object]:
        """Architecture summary (the Fig. 2 reproduction)."""
        shape = self.topology.describe()
        return {
            "machines": len(self.machines),
            "pis": len(self.node_names),
            "racks": self.config.num_racks,
            "pis_per_rack": self.config.pis_per_rack,
            "topology": self.config.topology,
            "routing": self.config.routing,
            "sdn_enabled": self.controller is not None,
            **{f"net_{k}": v for k, v in shape.items()},
        }
