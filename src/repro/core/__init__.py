"""Top-level facade: assemble and drive a whole PiCloud.

* :class:`~repro.core.config.PiCloudConfig` -- every knob of the testbed
  (racks, machine model, topology, routing mode, SDN parameters, ...).
  The default configuration is the paper's: 56 Raspberry Pi Model B
  boards in 4 racks of 14, multi-root tree, OpenFlow aggregation.
* :class:`~repro.core.cloud.PiCloud` -- builds machines, fabric, host
  kernels, node daemons and the pimaster, and exposes the whole stack
  behind a small API (`boot`, `spawn`, `run_for`, `dashboard`, ...).
* :mod:`~repro.core.comparison` -- the x86-vs-Pi testbed comparison
  (Table I) and whole-cloud claims checks.
"""

from repro.core.cloud import PiCloud
from repro.core.comparison import testbed_comparison
from repro.core.config import PiCloudConfig

__all__ = ["PiCloud", "PiCloudConfig", "testbed_comparison"]
