"""Testbed comparison: the quantitative claims of §IV ("What is the cost?").

Regenerates Table I from the hardware catalog and checks the surrounding
claims: cost "several orders of magnitude smaller", power ratios, the
cooling burden, and the single-power-socket property of the PiCloud.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.catalog import COMMODITY_X86_SERVER, RASPBERRY_PI_MODEL_B
from repro.hardware.specs import MachineSpec
from repro.power.cooling import CoolingModel
from repro.power.cost import TestbedCostRow, cost_row


@dataclass(frozen=True)
class TestbedComparison:
    """Everything Table I says, plus the derived ratios the text quotes."""

    x86: TestbedCostRow
    picloud: TestbedCostRow
    cost_ratio: float
    power_ratio: float
    x86_total_with_cooling_watts: float
    picloud_total_with_cooling_watts: float
    picloud_fits_single_socket: bool

    def table(self) -> list[dict[str, str]]:
        """Rows formatted like the paper's Table I."""
        return [self.x86.as_paper_row(), self.picloud.as_paper_row()]


def testbed_comparison(
    count: int = 56,
    x86_spec: MachineSpec = COMMODITY_X86_SERVER,
    pi_spec: MachineSpec = RASPBERRY_PI_MODEL_B,
    cooling: CoolingModel | None = None,
    socket_limit_watts: float = 2300.0,
) -> TestbedComparison:
    """Build the comparison for ``count`` machines (paper: 56)."""
    cooling = cooling or CoolingModel()
    x86 = cost_row("Testbed", x86_spec, count)
    pi = cost_row("PiCloud", pi_spec, count)
    return TestbedComparison(
        x86=x86,
        picloud=pi,
        cost_ratio=x86.capex_usd / pi.capex_usd,
        power_ratio=x86.total_watts / pi.total_watts,
        x86_total_with_cooling_watts=cooling.total_watts(
            x86.total_watts, x86.needs_cooling
        ),
        picloud_total_with_cooling_watts=cooling.total_watts(
            pi.total_watts, pi.needs_cooling
        ),
        picloud_fits_single_socket=pi.total_watts <= socket_limit_watts,
    )
