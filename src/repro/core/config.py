"""Configuration for a PiCloud build.

The defaults reproduce the paper's testbed exactly: 4 racks x 14
Raspberry Pi Model B boards (56 total), a canonical multi-root tree with
two OpenFlow-enabled aggregation switches and a gateway/border router,
100 Mb/s host links, and a pimaster head node hanging off the gateway.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import PiCloudError
from repro.hardware.catalog import (
    RASPBERRY_PI_MODEL_B,
    RASPBERRY_PI_MODEL_B_512,
    SPEC_CATALOG,
)
from repro.hardware.specs import MachineSpec
from repro.units import gbit_per_s, mbit_per_s, usec

ROUTING_MODES = (
    "shortest",             # static single shortest path (non-SDN baseline)
    "ecmp",                 # static per-flow ECMP hashing (non-SDN)
    "sdn-shortest",         # OpenFlow reactive, shortest-path app
    "sdn-ecmp",             # OpenFlow reactive, ECMP app (per-flow rules)
    "sdn-least-congested",  # OpenFlow reactive, global-view TE app
)

TOPOLOGY_KINDS = ("multi-root-tree", "fat-tree")


@dataclass
class PiCloudConfig:
    """All the knobs.  Defaults = the paper's 56-Pi deployment."""

    # -- machines ---------------------------------------------------------
    num_racks: int = 4
    pis_per_rack: int = 14
    machine_spec: MachineSpec = RASPBERRY_PI_MODEL_B
    pimaster_spec: MachineSpec = RASPBERRY_PI_MODEL_B_512
    instant_boot: bool = True

    # -- network -------------------------------------------------------------
    topology: str = "multi-root-tree"
    num_roots: int = 2               # aggregation roots (multi-root tree)
    fat_tree_k: int = 4              # arity when topology == "fat-tree"
    host_bandwidth: float = mbit_per_s(100)
    uplink_bandwidth: float = gbit_per_s(1)
    link_latency: float = usec(50)
    routing: str = "sdn-shortest"
    sdn_idle_timeout_s: float = 60.0
    sdn_control_latency_s: float = 1e-3
    sdn_match_granularity: str = "pair"
    congestion_threshold: float = 0.9

    # -- management --------------------------------------------------------------
    subnet: str = "10.0.0.0/16"
    dns_zone: str = "picloud.dcs.gla.ac.uk"
    monitoring_interval_s: float = 5.0
    start_monitoring: bool = True

    # -- run budget / watchdog ---------------------------------------------
    # Hard safety nets for the discrete-event kernel: exhausting one raises
    # SimBudgetExceeded with a diagnostic snapshot instead of spinning.
    # None disables the axis.  max_wall_s is wall-clock seconds per run()
    # call; max_events is cumulative over the simulator's lifetime.
    max_events: Optional[int] = None
    max_sim_time_s: Optional[float] = None
    max_wall_s: Optional[float] = None
    # Management-plane operation guards: container start/stop/migrate and
    # other REST orchestration time out after op_deadline_s (simulated)
    # and are retried up to op_attempts times with exponential backoff
    # starting at op_backoff_s.
    op_deadline_s: float = 1800.0
    op_attempts: int = 3
    op_backoff_s: float = 1.0

    # -- self-healing ------------------------------------------------------
    # When self_healing is on, the pimaster's heartbeat failure detector
    # starts at boot: nodes missing suspect_after_misses consecutive
    # heartbeats become SUSPECT, dead_after_misses DEAD; a dead node's
    # containers are evacuated (respawned elsewhere via the placement
    # policy, bounded queue + per-container retry budget).  Per-node
    # circuit breakers open after breaker_failure_threshold consecutive
    # transport failures and half-open after breaker_reset_s.
    self_healing: bool = False
    heartbeat_interval_s: float = 2.0
    heartbeat_timeout_s: float = 1.0
    suspect_after_misses: int = 2
    dead_after_misses: int = 4
    evacuation_queue_limit: int = 64
    evacuation_retry_budget: int = 2
    breaker_failure_threshold: int = 5
    breaker_reset_s: float = 60.0

    # -- tracing ----------------------------------------------------------
    # When on, a repro.trace.Tracer is installed on the simulator at build
    # time and every layer's spans (rest/mgmt/virt/net) are recorded.
    # trace_kernel_events additionally logs each kernel event dispatch as
    # an instant on a "sim.kernel" track (bounded; expensive -- debug only).
    tracing: bool = False
    trace_kernel_events: bool = False

    # -- reproducibility --------------------------------------------------------------
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_racks < 1 or self.pis_per_rack < 1:
            raise PiCloudError("need at least one rack with one Pi")
        if self.max_events is not None and self.max_events < 1:
            raise PiCloudError(f"max_events must be >= 1, got {self.max_events}")
        if self.max_sim_time_s is not None and self.max_sim_time_s < 0:
            raise PiCloudError(
                f"max_sim_time_s must be >= 0, got {self.max_sim_time_s}"
            )
        if self.max_wall_s is not None and self.max_wall_s <= 0:
            raise PiCloudError(f"max_wall_s must be > 0, got {self.max_wall_s}")
        if self.op_deadline_s <= 0:
            raise PiCloudError(f"op_deadline_s must be > 0, got {self.op_deadline_s}")
        if self.op_attempts < 1:
            raise PiCloudError(f"op_attempts must be >= 1, got {self.op_attempts}")
        if self.op_backoff_s < 0:
            raise PiCloudError(f"op_backoff_s must be >= 0, got {self.op_backoff_s}")
        if self.heartbeat_interval_s <= 0:
            raise PiCloudError(
                f"heartbeat_interval_s must be > 0, got {self.heartbeat_interval_s}"
            )
        if self.heartbeat_timeout_s <= 0:
            raise PiCloudError(
                f"heartbeat_timeout_s must be > 0, got {self.heartbeat_timeout_s}"
            )
        if self.suspect_after_misses < 1:
            raise PiCloudError(
                "suspect_after_misses must be >= 1, "
                f"got {self.suspect_after_misses}"
            )
        if self.dead_after_misses <= self.suspect_after_misses:
            raise PiCloudError(
                "dead_after_misses must exceed suspect_after_misses "
                f"(got {self.dead_after_misses} <= {self.suspect_after_misses})"
            )
        if self.evacuation_queue_limit < 1:
            raise PiCloudError(
                "evacuation_queue_limit must be >= 1, "
                f"got {self.evacuation_queue_limit}"
            )
        if self.evacuation_retry_budget < 0:
            raise PiCloudError(
                "evacuation_retry_budget must be >= 0, "
                f"got {self.evacuation_retry_budget}"
            )
        if self.breaker_failure_threshold < 1:
            raise PiCloudError(
                "breaker_failure_threshold must be >= 1, "
                f"got {self.breaker_failure_threshold}"
            )
        if self.breaker_reset_s <= 0:
            raise PiCloudError(
                f"breaker_reset_s must be > 0, got {self.breaker_reset_s}"
            )
        if self.topology not in TOPOLOGY_KINDS:
            raise PiCloudError(
                f"unknown topology {self.topology!r}; use one of {TOPOLOGY_KINDS}"
            )
        if self.routing not in ROUTING_MODES:
            raise PiCloudError(
                f"unknown routing {self.routing!r}; use one of {ROUTING_MODES}"
            )
        if self.topology == "fat-tree":
            capacity = self.fat_tree_k ** 3 // 4
            if self.node_count > capacity:
                raise PiCloudError(
                    f"fat-tree k={self.fat_tree_k} holds {capacity} hosts; "
                    f"config asks for {self.node_count}"
                )

    @property
    def node_count(self) -> int:
        return self.num_racks * self.pis_per_rack

    def run_budget(self):
        """The configured kernel budget, or None when fully unbounded."""
        if (self.max_events is None and self.max_sim_time_s is None
                and self.max_wall_s is None):
            return None
        from repro.sim.budget import RunBudget

        return RunBudget(
            max_events=self.max_events,
            max_sim_time=self.max_sim_time_s,
            max_wall_s=self.max_wall_s,
        )

    @classmethod
    def paper_testbed(cls) -> "PiCloudConfig":
        """The exact published deployment (also the default constructor)."""
        return cls()

    @classmethod
    def small(cls, racks: int = 2, pis: int = 3, **overrides) -> "PiCloudConfig":
        """A small cloud for tests and quick experiments."""
        return cls(num_racks=racks, pis_per_rack=pis, **overrides)

    @classmethod
    def with_spec(cls, spec_name: str, **overrides) -> "PiCloudConfig":
        """Build around a named catalog spec (e.g. the 512 MB Model B)."""
        return cls(machine_spec=SPEC_CATALOG[spec_name], **overrides)
