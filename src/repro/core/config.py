"""Configuration for a PiCloud build.

The defaults reproduce the paper's testbed exactly: 4 racks x 14
Raspberry Pi Model B boards (56 total), a canonical multi-root tree with
two OpenFlow-enabled aggregation switches and a gateway/border router,
100 Mb/s host links, and a pimaster head node hanging off the gateway.

:class:`PiCloudConfig` is keyword-only and groups cross-cutting concerns
into sub-configs:

* :class:`SimBudgetConfig` (``budget=``) -- kernel run budgets/watchdog.
* :class:`HealthConfig` (``health=``) -- the self-healing control plane.
* :class:`TraceConfig` (``trace=``) -- cross-layer causal tracing.
* :class:`LoadConfig` (``load=``) -- session-level load engine defaults.
* :class:`RateModelConfig` (``rate_model=``) -- fabric rate assignment
  (instantaneous max-min vs per-flow congestion control).
* :class:`ShardConfig` (``shard=``) -- parallel sharded kernel
  (per-pod worker processes under conservative time sync).

The old flat knobs (``max_events=``, ``tracing=``, ``self_healing=``,
``heartbeat_interval_s=``, ...) are still accepted with a
``DeprecationWarning`` and are mapped onto the sub-configs; they will be
removed in a future major release (see ``docs/api.md`` for the policy).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import ConfigurationError, PiCloudError
from repro.hardware.catalog import (
    RASPBERRY_PI_MODEL_B,
    RASPBERRY_PI_MODEL_B_512,
    SPEC_CATALOG,
)
from repro.hardware.specs import MachineSpec
from repro.units import gbit_per_s, mbit_per_s, usec

ROUTING_MODES = (
    "shortest",             # static single shortest path (non-SDN baseline)
    "ecmp",                 # static per-flow ECMP hashing (non-SDN)
    "sdn-shortest",         # OpenFlow reactive, shortest-path app
    "sdn-ecmp",             # OpenFlow reactive, ECMP app (per-flow rules)
    "sdn-least-congested",  # OpenFlow reactive, global-view TE app
)

TOPOLOGY_KINDS = ("multi-root-tree", "fat-tree")


@dataclass(frozen=True, kw_only=True)
class SimBudgetConfig:
    """Hard safety nets for the discrete-event kernel.

    Exhausting an axis raises
    :class:`~repro.errors.SimBudgetExceeded` with a diagnostic snapshot
    instead of spinning.  ``None`` disables an axis.  ``max_wall_s`` is
    wall-clock seconds per ``run()`` call; ``max_events`` is cumulative
    over the simulator's lifetime.
    """

    max_events: Optional[int] = None
    max_sim_time_s: Optional[float] = None
    max_wall_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_events is not None and self.max_events < 1:
            raise ConfigurationError(
                f"max_events must be >= 1, got {self.max_events}"
            )
        if self.max_sim_time_s is not None and self.max_sim_time_s < 0:
            raise ConfigurationError(
                f"max_sim_time_s must be >= 0, got {self.max_sim_time_s}"
            )
        if self.max_wall_s is not None and self.max_wall_s <= 0:
            raise ConfigurationError(
                f"max_wall_s must be > 0, got {self.max_wall_s}"
            )

    def run_budget(self):
        """The configured kernel budget, or None when fully unbounded."""
        if (self.max_events is None and self.max_sim_time_s is None
                and self.max_wall_s is None):
            return None
        from repro.sim.budget import RunBudget

        return RunBudget(
            max_events=self.max_events,
            max_sim_time=self.max_sim_time_s,
            max_wall_s=self.max_wall_s,
        )


@dataclass(frozen=True, kw_only=True)
class HealthConfig:
    """The pimaster's self-healing control plane.

    When ``enabled``, the heartbeat failure detector starts at boot:
    nodes missing ``suspect_after_misses`` consecutive heartbeats become
    SUSPECT, ``dead_after_misses`` DEAD; a dead node's containers are
    evacuated (respawned elsewhere via the placement policy, bounded
    queue + per-container retry budget).  Per-node circuit breakers open
    after ``breaker_failure_threshold`` consecutive transport failures
    and half-open after ``breaker_reset_s``.
    """

    enabled: bool = False
    heartbeat_interval_s: float = 2.0
    heartbeat_timeout_s: float = 1.0
    suspect_after_misses: int = 2
    dead_after_misses: int = 4
    evacuation_queue_limit: int = 64
    evacuation_retry_budget: int = 2
    breaker_failure_threshold: int = 5
    breaker_reset_s: float = 60.0
    # Gen-2 detector (partition-aware).  When unreachable_grace_s > 0,
    # accrued dead_after_misses puts a node in UNREACHABLE instead of
    # DEAD: the detector asks witness_count alive peers to probe it, and
    # only declares DEAD (triggering evacuation) when no witness can
    # reach it either AND the grace period has elapsed.  0.0 keeps the
    # legacy binary detector exactly.  ``fencing`` stamps every spawn
    # with a monotone epoch so daemons reject stale ops and the pimaster
    # can reconcile duplicate containers deterministically after a
    # partition heals (newest epoch wins).
    unreachable_grace_s: float = 0.0
    fencing: bool = False
    witness_count: int = 2

    def __post_init__(self) -> None:
        if self.heartbeat_interval_s <= 0:
            raise ConfigurationError(
                f"heartbeat_interval_s must be > 0, got {self.heartbeat_interval_s}"
            )
        if self.heartbeat_timeout_s <= 0:
            raise ConfigurationError(
                f"heartbeat_timeout_s must be > 0, got {self.heartbeat_timeout_s}"
            )
        if self.suspect_after_misses < 1:
            raise ConfigurationError(
                "suspect_after_misses must be >= 1, "
                f"got {self.suspect_after_misses}"
            )
        if self.dead_after_misses <= self.suspect_after_misses:
            raise ConfigurationError(
                "dead_after_misses must exceed suspect_after_misses "
                f"(got {self.dead_after_misses} <= {self.suspect_after_misses})"
            )
        if self.evacuation_queue_limit < 1:
            raise ConfigurationError(
                "evacuation_queue_limit must be >= 1, "
                f"got {self.evacuation_queue_limit}"
            )
        if self.evacuation_retry_budget < 0:
            raise ConfigurationError(
                "evacuation_retry_budget must be >= 0, "
                f"got {self.evacuation_retry_budget}"
            )
        if self.breaker_failure_threshold < 1:
            raise ConfigurationError(
                "breaker_failure_threshold must be >= 1, "
                f"got {self.breaker_failure_threshold}"
            )
        if self.breaker_reset_s <= 0:
            raise ConfigurationError(
                f"breaker_reset_s must be > 0, got {self.breaker_reset_s}"
            )
        if self.unreachable_grace_s < 0:
            raise ConfigurationError(
                "unreachable_grace_s must be >= 0, "
                f"got {self.unreachable_grace_s}"
            )
        if self.witness_count < 1:
            raise ConfigurationError(
                f"witness_count must be >= 1, got {self.witness_count}"
            )


@dataclass(frozen=True, kw_only=True)
class TraceConfig:
    """Cross-layer causal tracing (see ``docs/tracing.md``).

    When ``enabled``, a :class:`repro.trace.Tracer` is installed on the
    simulator at build time and every layer's spans (rest/mgmt/virt/net)
    are recorded.  ``kernel_events`` additionally logs each kernel event
    dispatch as an instant on a "sim.kernel" track (bounded; expensive --
    debug only).
    """

    enabled: bool = False
    kernel_events: bool = False


@dataclass(frozen=True, kw_only=True)
class LoadConfig:
    """Session-level load engine defaults (see ``docs/load.md``).

    ``epoch_s`` is the fluid tick: once per epoch the engine samples
    arrivals, advances session pools, and emits at most one fabric flow
    per (service, client edge, replica) aggregate -- the knob that
    trades timeline resolution against kernel events.
    ``backlog_epochs`` bounds open-loop overload: an aggregate with
    that many epoch flows still in flight sheds new requests (counted
    as SLO-bad at the histogram ceiling) instead of queueing more
    fabric work.  ``arrival_sampling=False`` switches from seeded
    Poisson draws to the deterministic fluid mean.
    """

    epoch_s: float = 1.0
    arrival_sampling: bool = True
    backlog_epochs: int = 4
    histogram_min_s: float = 1e-4
    histogram_max_s: float = 100.0
    histogram_buckets_per_decade: int = 20

    def __post_init__(self) -> None:
        if self.epoch_s <= 0:
            raise ConfigurationError(f"epoch_s must be > 0, got {self.epoch_s}")
        if self.backlog_epochs < 1:
            raise ConfigurationError(
                f"backlog_epochs must be >= 1, got {self.backlog_epochs}"
            )
        if not 0 < self.histogram_min_s < self.histogram_max_s:
            raise ConfigurationError(
                "need 0 < histogram_min_s < histogram_max_s, got "
                f"[{self.histogram_min_s}, {self.histogram_max_s}]"
            )
        if self.histogram_buckets_per_decade < 1:
            raise ConfigurationError(
                "histogram_buckets_per_decade must be >= 1, got "
                f"{self.histogram_buckets_per_decade}"
            )


RATE_MODELS = ("maxmin", "cc")
CC_PROTOCOLS = ("reno", "dctcp", "delay")


@dataclass(frozen=True, kw_only=True)
class RateModelConfig:
    """How the fabric assigns rates to flows (see ``docs/performance.md``).

    ``model="maxmin"`` (the default) is the instantaneous max-min fair
    share: stateless, event-driven, byte-identical to every release
    since the fabric existed, and the cheapest option.  ``model="cc"``
    runs per-flow congestion control (:mod:`repro.netsim.cc`): each flow
    keeps a window updated every ``epoch_s`` by ``protocol`` -- ``reno``
    (loss-driven AIMD), ``dctcp`` (ECN-fraction EWMA) or ``delay``
    (smoothed-RTT backoff) -- against per-link-direction queues of
    ``queue_limit_bytes`` that mark ECN above
    ``ecn_threshold_frac * queue_limit_bytes`` and signal loss on
    overflow.

    The remaining knobs are the protocol constants: windows start at
    ``init_cwnd_bytes``, never fall below ``min_cwnd_bytes``, grow by
    ``ai_mss_per_rtt`` segments of ``mss_bytes`` per RTT, and shrink by
    ``md_factor`` on loss; ``dctcp_g`` is DCTCP's EWMA gain; the delay
    variant backs off when smoothed RTT exceeds ``delay_threshold``
    times the propagation RTT, smoothing with weight ``delay_smoothing``.
    Defaults mirror :mod:`repro.netsim.cc` (pinned by ``tests/test_cc.py``).
    """

    model: str = "maxmin"
    protocol: str = "reno"
    epoch_s: float = 0.001
    queue_limit_bytes: float = 300_000.0
    ecn_threshold_frac: float = 0.15
    init_cwnd_bytes: float = 15_000.0
    min_cwnd_bytes: float = 1_500.0
    mss_bytes: float = 1_500.0
    ai_mss_per_rtt: float = 1.0
    md_factor: float = 0.5
    dctcp_g: float = 0.0625
    delay_threshold: float = 1.25
    delay_smoothing: float = 0.1

    def __post_init__(self) -> None:
        if self.model not in RATE_MODELS:
            raise ConfigurationError(
                f"unknown rate model {self.model!r}; use one of {RATE_MODELS}"
            )
        if self.protocol not in CC_PROTOCOLS:
            raise ConfigurationError(
                f"unknown cc protocol {self.protocol!r}; "
                f"use one of {CC_PROTOCOLS}"
            )
        if self.epoch_s <= 0:
            raise ConfigurationError(
                f"epoch_s must be > 0, got {self.epoch_s}"
            )
        if self.queue_limit_bytes <= 0:
            raise ConfigurationError(
                f"queue_limit_bytes must be > 0, got {self.queue_limit_bytes}"
            )
        if not 0.0 < self.ecn_threshold_frac <= 1.0:
            raise ConfigurationError(
                "ecn_threshold_frac must be in (0, 1], got "
                f"{self.ecn_threshold_frac}"
            )
        if self.min_cwnd_bytes <= 0 or self.init_cwnd_bytes < self.min_cwnd_bytes:
            raise ConfigurationError(
                "need 0 < min_cwnd_bytes <= init_cwnd_bytes, got "
                f"min={self.min_cwnd_bytes} init={self.init_cwnd_bytes}"
            )
        if self.mss_bytes <= 0:
            raise ConfigurationError(
                f"mss_bytes must be > 0, got {self.mss_bytes}"
            )
        if self.ai_mss_per_rtt <= 0:
            raise ConfigurationError(
                f"ai_mss_per_rtt must be > 0, got {self.ai_mss_per_rtt}"
            )
        if not 0.0 < self.md_factor < 1.0:
            raise ConfigurationError(
                f"md_factor must be in (0, 1), got {self.md_factor}"
            )
        if not 0.0 < self.dctcp_g <= 1.0:
            raise ConfigurationError(
                f"dctcp_g must be in (0, 1], got {self.dctcp_g}"
            )
        if self.delay_threshold <= 1.0:
            raise ConfigurationError(
                f"delay_threshold must be > 1.0, got {self.delay_threshold}"
            )
        if not 0.0 < self.delay_smoothing <= 1.0:
            raise ConfigurationError(
                f"delay_smoothing must be in (0, 1], got {self.delay_smoothing}"
            )

    def build(self):
        """Instantiate the configured rate model (None = fabric default)."""
        if self.model == "maxmin":
            return None
        from repro.netsim.cc import CcRateModel

        return CcRateModel(
            protocol=self.protocol,
            epoch_s=self.epoch_s,
            queue_limit_bytes=self.queue_limit_bytes,
            ecn_threshold_frac=self.ecn_threshold_frac,
            init_cwnd_bytes=self.init_cwnd_bytes,
            min_cwnd_bytes=self.min_cwnd_bytes,
            mss_bytes=self.mss_bytes,
            ai_mss_per_rtt=self.ai_mss_per_rtt,
            md_factor=self.md_factor,
            dctcp_g=self.dctcp_g,
            delay_threshold=self.delay_threshold,
            delay_smoothing=self.delay_smoothing,
        )


@dataclass(frozen=True, kw_only=True)
class ShardConfig:
    """Parallel (sharded) kernel settings (see ``docs/performance.md``).

    ``shards=1`` (the default) runs the single-kernel path, byte-identical
    to every release since the kernel existed.  ``shards=N`` partitions a
    fat-tree per pod into N worker processes plus a control-plane shard,
    advanced under conservative time synchronisation: each round every
    shard runs up to ``min(next pending event across shards) + lookahead``
    where the lookahead is ``boundary_delay_s``, the modelled latency of a
    cross-pod (core-link) hop.  The physical core-link latency (2 x 50 us)
    would force a synchronisation barrier roughly every event, so the
    boundary delay is deliberately coarser -- cross-pod effects are seen
    ``boundary_delay_s`` late, which is the documented model error of the
    sharded path.  Sharded runs are deterministic run-to-run (same seed,
    any ``PYTHONHASHSEED``, any OS scheduling) but are *not* byte-identical
    to the unsharded kernel.

    ``channel_capacity`` bounds each cross-shard channel: a shard that has
    more than this many undelivered outbound messages pauses its window
    early (backpressure) instead of growing the coordinator's buffers
    without limit.
    """

    shards: int = 1
    boundary_delay_s: float = 0.05
    channel_capacity: int = 4096
    processes: bool = True

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ConfigurationError(
                f"shards must be >= 1, got {self.shards}"
            )
        if self.boundary_delay_s <= 0:
            raise ConfigurationError(
                f"boundary_delay_s must be > 0, got {self.boundary_delay_s}"
            )
        if self.channel_capacity < 1:
            raise ConfigurationError(
                f"channel_capacity must be >= 1, got {self.channel_capacity}"
            )


# Deprecated flat knob -> (sub-config attribute on PiCloudConfig, field name).
_DEPRECATED_KNOBS = {
    "max_events": ("budget", "max_events"),
    "max_sim_time_s": ("budget", "max_sim_time_s"),
    "max_wall_s": ("budget", "max_wall_s"),
    "self_healing": ("health", "enabled"),
    "heartbeat_interval_s": ("health", "heartbeat_interval_s"),
    "heartbeat_timeout_s": ("health", "heartbeat_timeout_s"),
    "suspect_after_misses": ("health", "suspect_after_misses"),
    "dead_after_misses": ("health", "dead_after_misses"),
    "evacuation_queue_limit": ("health", "evacuation_queue_limit"),
    "evacuation_retry_budget": ("health", "evacuation_retry_budget"),
    "breaker_failure_threshold": ("health", "breaker_failure_threshold"),
    "breaker_reset_s": ("health", "breaker_reset_s"),
    "tracing": ("trace", "enabled"),
    "trace_kernel_events": ("trace", "kernel_events"),
}


@dataclass(kw_only=True)
class PiCloudConfig:
    """All the knobs.  Defaults = the paper's 56-Pi deployment.

    Keyword-only.  Budget, self-healing and tracing knobs live in the
    ``budget`` / ``health`` / ``trace`` sub-configs; the old flat names
    still work but emit :class:`DeprecationWarning`.
    """

    # -- machines ---------------------------------------------------------
    num_racks: int = 4
    pis_per_rack: int = 14
    machine_spec: MachineSpec = RASPBERRY_PI_MODEL_B
    pimaster_spec: MachineSpec = RASPBERRY_PI_MODEL_B_512
    instant_boot: bool = True

    # -- network -------------------------------------------------------------
    topology: str = "multi-root-tree"
    num_roots: int = 2               # aggregation roots (multi-root tree)
    fat_tree_k: int = 4              # arity when topology == "fat-tree"
    host_bandwidth: float = mbit_per_s(100)
    uplink_bandwidth: float = gbit_per_s(1)
    link_latency: float = usec(50)
    routing: str = "sdn-shortest"
    sdn_idle_timeout_s: float = 60.0
    sdn_control_latency_s: float = 1e-3
    sdn_match_granularity: str = "pair"
    congestion_threshold: float = 0.9
    # Incremental fair-share recomputation: each flow arrival/completion
    # re-solves only the affected bottleneck component instead of the
    # whole fabric.  False selects the exact-fallback full solve (the
    # pre-optimisation behaviour; same rates, much slower at scale).
    incremental_fairness: bool = True
    # Structured routing: answer path queries from the analytic fat-tree /
    # multi-root-tree engine (repro.netsim.structured) instead of per-pair
    # graph searches.  Both backends return identical paths; False forces
    # the networkx reference implementation everywhere (debug/verification
    # knob, also used by the equivalence tests).
    structured_routing: bool = True

    # -- management --------------------------------------------------------------
    subnet: str = "10.0.0.0/16"
    dns_zone: str = "picloud.dcs.gla.ac.uk"
    monitoring_interval_s: float = 5.0
    # Idle nodes (metrics unchanged since the last poll) are polled less
    # often: the interval grows by monitoring_idle_backoff x per quiet
    # poll, capped at monitoring_max_interval_s (None = 8x the base
    # interval).  1.0 disables the backoff.
    monitoring_idle_backoff: float = 2.0
    monitoring_max_interval_s: Optional[float] = None
    start_monitoring: bool = True
    # Management-plane operation guards: container start/stop/migrate and
    # other REST orchestration time out after op_deadline_s (simulated)
    # and are retried up to op_attempts times with exponential backoff
    # starting at op_backoff_s.
    op_deadline_s: float = 1800.0
    op_attempts: int = 3
    op_backoff_s: float = 1.0

    # -- diagnostics ------------------------------------------------------
    # When set, the cloud starts a cProfile.Profile() at construction
    # (covering build + boot + everything run afterwards) and
    # ``write_profile()`` dumps pstats to this path -- the CLI's
    # ``--profile`` flag plumbs through here and dumps on exit.
    profile_out: Optional[str] = None

    # -- grouped sub-configs ----------------------------------------------
    budget: SimBudgetConfig = field(default_factory=SimBudgetConfig)
    health: HealthConfig = field(default_factory=HealthConfig)
    trace: TraceConfig = field(default_factory=TraceConfig)
    load: LoadConfig = field(default_factory=LoadConfig)
    rate_model: RateModelConfig = field(default_factory=RateModelConfig)
    shard: ShardConfig = field(default_factory=ShardConfig)

    # -- reproducibility --------------------------------------------------------------
    seed: int = 0

    # -- deprecated flat knobs (shims; see _DEPRECATED_KNOBS) -------------
    max_events: Optional[int] = None
    max_sim_time_s: Optional[float] = None
    max_wall_s: Optional[float] = None
    self_healing: Optional[bool] = None
    heartbeat_interval_s: Optional[float] = None
    heartbeat_timeout_s: Optional[float] = None
    suspect_after_misses: Optional[int] = None
    dead_after_misses: Optional[int] = None
    evacuation_queue_limit: Optional[int] = None
    evacuation_retry_budget: Optional[int] = None
    breaker_failure_threshold: Optional[int] = None
    breaker_reset_s: Optional[float] = None
    tracing: Optional[bool] = None
    trace_kernel_events: Optional[bool] = None

    def __post_init__(self) -> None:
        self._apply_deprecated_knobs()
        if self.num_racks < 1 or self.pis_per_rack < 1:
            raise PiCloudError("need at least one rack with one Pi")
        if self.op_deadline_s <= 0:
            raise PiCloudError(f"op_deadline_s must be > 0, got {self.op_deadline_s}")
        if self.op_attempts < 1:
            raise PiCloudError(f"op_attempts must be >= 1, got {self.op_attempts}")
        if self.op_backoff_s < 0:
            raise PiCloudError(f"op_backoff_s must be >= 0, got {self.op_backoff_s}")
        if self.topology not in TOPOLOGY_KINDS:
            raise PiCloudError(
                f"unknown topology {self.topology!r}; use one of {TOPOLOGY_KINDS}"
            )
        if self.routing not in ROUTING_MODES:
            raise PiCloudError(
                f"unknown routing {self.routing!r}; use one of {ROUTING_MODES}"
            )
        if self.topology == "fat-tree":
            capacity = self.fat_tree_k ** 3 // 4
            if self.node_count > capacity:
                raise PiCloudError(
                    f"fat-tree k={self.fat_tree_k} holds {capacity} hosts; "
                    f"config asks for {self.node_count}"
                )
        if self.shard.shards > 1:
            if self.topology != "fat-tree":
                raise PiCloudError(
                    "shards > 1 requires topology='fat-tree' "
                    "(the partitioner assigns whole pods to shards)"
                )
            if self.shard.shards > self.fat_tree_k:
                raise PiCloudError(
                    f"shards={self.shard.shards} exceeds the "
                    f"{self.fat_tree_k} pods of a k={self.fat_tree_k} "
                    "fat-tree; each shard needs at least one pod"
                )

    def _apply_deprecated_knobs(self) -> None:
        """Fold deprecated flat kwargs into the grouped sub-configs.

        After folding, the flat attributes mirror the effective grouped
        values, so legacy *reads* (``config.max_events``) keep working
        too -- only passing them to the constructor warns.
        """
        overrides: dict[str, dict[str, object]] = {}
        for old, (group, new) in _DEPRECATED_KNOBS.items():
            value = getattr(self, old)
            if value is not None:
                suggestion = {
                    "budget": f"budget=SimBudgetConfig({new}=...)",
                    "health": f"health=HealthConfig({new}=...)",
                    "trace": f"trace=TraceConfig({new}=...)",
                }[group]
                warnings.warn(
                    f"PiCloudConfig({old}=...) is deprecated; use {suggestion}",
                    DeprecationWarning,
                    stacklevel=4,
                )
                overrides.setdefault(group, {})[new] = value
        for group, values in overrides.items():
            setattr(self, group, replace(getattr(self, group), **values))
        # Mirror the effective grouped values back onto the flat names.
        for old, (group, new) in _DEPRECATED_KNOBS.items():
            setattr(self, old, getattr(getattr(self, group), new))

    @property
    def node_count(self) -> int:
        return self.num_racks * self.pis_per_rack

    def run_budget(self):
        """The configured kernel budget, or None when fully unbounded."""
        return self.budget.run_budget()

    @classmethod
    def paper_testbed(cls) -> "PiCloudConfig":
        """The exact published deployment (also the default constructor)."""
        return cls()

    @classmethod
    def small(cls, racks: int = 2, pis: int = 3, **overrides) -> "PiCloudConfig":
        """A small cloud for tests and quick experiments."""
        return cls(num_racks=racks, pis_per_rack=pis, **overrides)

    @classmethod
    def with_spec(cls, spec_name: str, **overrides) -> "PiCloudConfig":
        """Build around a named catalog spec (e.g. the 512 MB Model B)."""
        return cls(machine_spec=SPEC_CATALOG[spec_name], **overrides)
