"""Reusable experiment scenarios for the PiCloud.

The benchmark suite reproduces the paper's artefacts; this module packages
the same scenario machinery as a public API, so downstream users can run
parameterised studies without copying bench internals::

    from repro.core.experiments import (
        http_load_experiment, elephant_storm, chatty_pairs,
    )

Each scenario takes a booted :class:`~repro.core.cloud.PiCloud`, drives
it, and returns a plain-dict result row -- ready for tabulation.
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Optional, Sequence

from repro.apps.http import HttpClientApp, HttpServerApp
from repro.apps.traffic import OnOffTrafficSource
from repro.core.cloud import PiCloud
from repro.errors import DeadlineExceeded
from repro.sim.process import Signal
from repro.units import kib, mib

# Default wall-clock guard per experiment phase: generous for real studies,
# tight enough that a non-terminating scenario fails in CI instead of
# eating the job's whole time limit.
DEFAULT_PHASE_WALL_S = 120.0


def run_phase(
    cloud: PiCloud,
    name: str,
    *,
    signal: Optional[Signal] = None,
    sim_seconds: Optional[float] = None,
    wall_s: Optional[float] = DEFAULT_PHASE_WALL_S,
    wall_check_every: int = 4096,
) -> float:
    """Drive one experiment phase under sim-time and wall-clock deadlines.

    Steps the simulator until ``signal`` triggers (if given) and/or
    ``sim_seconds`` of simulated time elapse -- whichever is satisfied
    first; at least one of the two must be provided.  A wall-clock
    watchdog aborts the phase with :class:`DeadlineExceeded` after
    ``wall_s`` real seconds, so a stuck scenario fails loudly with the
    phase's name instead of hanging the experiment driver.

    Returns the simulated seconds the phase consumed.
    """
    if signal is None and sim_seconds is None:
        raise ValueError(f"phase {name!r}: need a signal and/or sim_seconds")
    started_sim = cloud.sim.now
    sim_deadline = None if sim_seconds is None else started_sim + sim_seconds
    wall_start = time.monotonic()
    steps = 0
    while True:
        if signal is not None and signal.triggered:
            break
        if sim_deadline is not None and cloud.sim.now >= sim_deadline:
            if signal is not None and not signal.triggered:
                raise DeadlineExceeded(
                    f"experiment phase {name!r} did not complete within "
                    f"{sim_seconds} simulated seconds",
                    deadline_s=float(sim_seconds),
                )
            break
        next_time = cloud.sim.peek()
        if next_time is None:
            if signal is not None and not signal.triggered:
                raise DeadlineExceeded(
                    f"experiment phase {name!r}: event queue drained at "
                    f"t={cloud.sim.now:.3f} with the phase signal untriggered",
                    deadline_s=float(sim_seconds or 0.0),
                )
            if sim_deadline is not None:
                cloud.sim.run(until=sim_deadline)
            break
        if sim_deadline is not None and next_time > sim_deadline:
            cloud.sim.run(until=sim_deadline)
            continue
        cloud.sim.step()
        steps += 1
        if (wall_s is not None and steps % wall_check_every == 0
                and time.monotonic() - wall_start > wall_s):
            cloud.sim.watchdog_trips += 1
            snapshot = cloud.sim.snapshot(
                "wall_clock", wall_elapsed_s=time.monotonic() - wall_start
            )
            for hook in cloud.sim.budget_hooks:
                hook(snapshot)
            raise DeadlineExceeded(
                f"experiment phase {name!r} exceeded its {wall_s}s wall-clock "
                f"watchdog\n{snapshot.describe()}",
                deadline_s=wall_s,
            )
    return cloud.sim.now - started_sim


def http_load_experiment(
    cloud: PiCloud,
    server_node: str,
    client_node: str,
    workers: int = 4,
    duration_s: float = 30.0,
    response_bytes: int = kib(16),
    think_time_s: float = 0.1,
    seed: int = 0,
    name: str = "http-exp",
    phase_wall_s: Optional[float] = DEFAULT_PHASE_WALL_S,
) -> Dict[str, float]:
    """Closed-loop HTTP against a freshly-spawned webserver container.

    Returns completed count, error count and latency percentiles.  Each
    phase (deploy, load) runs under a ``phase_wall_s`` wall-clock watchdog.
    """
    deploy = cloud.spawn("webserver", name=name, node_id=server_node)
    run_phase(cloud, f"{name}:deploy", signal=deploy,
              sim_seconds=86_400.0, wall_s=phase_wall_s)
    record = deploy.value
    server = HttpServerApp(cloud.container(name),
                           default_response_bytes=response_bytes)
    client = HttpClientApp(
        cloud.kernels[client_node].netstack, record.ip,
        response_bytes=response_bytes, rng=random.Random(seed),
    )
    run = client.run_closed_loop(workers=workers, duration_s=duration_s,
                                 think_time_s=think_time_s)
    run_phase(cloud, f"{name}:load", signal=run,
              sim_seconds=duration_s * 20.0 + 3600.0, wall_s=phase_wall_s)
    server.stop()
    summary = run.value
    summary["throughput_rps"] = summary["completed"] / duration_s
    return summary


def elephant_storm(
    cloud: PiCloud,
    flows: int = 6,
    size_bytes: float = mib(10),
    src_rack: int = 0,
    dst_rack: int = 1,
    sim_deadline_s: float = 24 * 3600.0,
    wall_s: Optional[float] = DEFAULT_PHASE_WALL_S,
) -> Dict[str, object]:
    """Parallel inter-rack elephants; returns completion time and paths.

    The canonical C3 workload: exposes how the routing mode uses (or
    wastes) the multi-root redundancy.  The storm phase runs under a
    sim-time deadline and a wall-clock watchdog; a storm that cannot
    finish raises :class:`DeadlineExceeded` instead of hanging.
    """
    racks = cloud.rack_inventory()
    src_hosts = racks[f"rack{src_rack}"]
    dst_hosts = racks[f"rack{dst_rack}"]
    transfers = []
    for index in range(flows):
        transfers.append(cloud.network.transfer(
            src_hosts[index % len(src_hosts)],
            dst_hosts[index % len(dst_hosts)],
            size_bytes, flow_key=index, tag=f"elephant{index}",
        ))
    # Completion signal that fires when every flow settles (success OR
    # failure) -- AllOf would fail fast on the first broken flow, but the
    # storm wants to count failures in the result row.
    settled = Signal(cloud.sim, name="storm.settled")
    remaining = len(transfers)

    def on_flow_done(_sig) -> None:
        nonlocal remaining
        remaining -= 1
        if remaining == 0:
            settled.succeed()

    for t in transfers:
        t.done.add_done_callback(on_flow_done)
    run_phase(cloud, "elephant-storm", signal=settled,
              sim_seconds=sim_deadline_s, wall_s=wall_s)
    failed = [t for t in transfers if not t.done.ok]
    completed = [t for t in transfers if t.done.ok]
    return {
        "completion_s": max((t.completed_at for t in completed), default=0.0),
        "failed": len(failed),
        "roots_used": sorted({t.path[2] for t in completed if len(t.path) > 2}),
        "mean_throughput": (
            sum(t.throughput for t in completed) / len(completed)
            if completed else 0.0
        ),
    }


def chatty_pairs(
    cloud: PiCloud,
    pairs: Sequence[tuple],
    message_bytes: int = kib(256),
    rate_per_s: float = 15.0,
    on_mean_s: float = 2.0,
    off_mean_s: float = 0.5,
    seed: int = 17,
    port: int = 9000,
) -> List[OnOffTrafficSource]:
    """Wire ON/OFF senders between container pairs ``(src_name, dst_name)``.

    Containers must already be running.  Returns the sources (call
    ``stop()`` to end the chatter).
    """
    rng = random.Random(seed)
    sources = []
    for src_name, dst_name in pairs:
        src = cloud.container(src_name)
        dst = cloud.container(dst_name)
        dst.listen(port)

        def make_send(s=src, ip=dst.ip):
            return lambda: s.send(ip, port, "chunk", size=message_bytes)

        sources.append(OnOffTrafficSource(
            cloud.sim, rng, make_send(),
            on_mean_s=on_mean_s, off_mean_s=off_mean_s, rate_per_s=rate_per_s,
        ))
    return sources


def congestion_totals(cloud: PiCloud) -> Dict[str, float]:
    """Aggregate congestion picture of the fabric right now."""
    rows = cloud.network.congestion_report()
    return {
        "congested_link_seconds": sum(r["congested_s"] for r in rows),
        "congestion_episodes": sum(r["episodes"] for r in rows),
        "worst_direction": rows[0]["direction"] if rows else "",
        "worst_mean_util": rows[0]["mean_util"] if rows else 0.0,
    }


def power_snapshot(cloud: PiCloud) -> Dict[str, float]:
    """Power picture: current draw, energy so far, machines on."""
    return {
        "watts": cloud.total_watts(),
        "joules": cloud.energy_joules(),
        "machines_on": sum(1 for m in cloud.machines.values() if m.is_on),
    }
