"""Reusable experiment scenarios for the PiCloud.

The benchmark suite reproduces the paper's artefacts; this module packages
the same scenario machinery as a public API, so downstream users can run
parameterised studies without copying bench internals::

    from repro.core.experiments import (
        http_load_experiment, elephant_storm, chatty_pairs,
    )

Each scenario takes a booted :class:`~repro.core.cloud.PiCloud`, drives
it, and returns a plain-dict result row -- ready for tabulation.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.apps.http import HttpClientApp, HttpServerApp
from repro.apps.traffic import OnOffTrafficSource
from repro.core.cloud import PiCloud
from repro.units import kib, mib


def http_load_experiment(
    cloud: PiCloud,
    server_node: str,
    client_node: str,
    workers: int = 4,
    duration_s: float = 30.0,
    response_bytes: int = kib(16),
    think_time_s: float = 0.1,
    seed: int = 0,
    name: str = "http-exp",
) -> Dict[str, float]:
    """Closed-loop HTTP against a freshly-spawned webserver container.

    Returns completed count, error count and latency percentiles.
    """
    record = cloud.spawn_and_wait("webserver", name=name, node_id=server_node)
    server = HttpServerApp(cloud.container(name),
                           default_response_bytes=response_bytes)
    client = HttpClientApp(
        cloud.kernels[client_node].netstack, record.ip,
        response_bytes=response_bytes, rng=random.Random(seed),
    )
    run = client.run_closed_loop(workers=workers, duration_s=duration_s,
                                 think_time_s=think_time_s)
    cloud.run_until_signal(run)
    server.stop()
    summary = run.value
    summary["throughput_rps"] = summary["completed"] / duration_s
    return summary


def elephant_storm(
    cloud: PiCloud,
    flows: int = 6,
    size_bytes: float = mib(10),
    src_rack: int = 0,
    dst_rack: int = 1,
) -> Dict[str, object]:
    """Parallel inter-rack elephants; returns completion time and paths.

    The canonical C3 workload: exposes how the routing mode uses (or
    wastes) the multi-root redundancy.
    """
    racks = cloud.rack_inventory()
    src_hosts = racks[f"rack{src_rack}"]
    dst_hosts = racks[f"rack{dst_rack}"]
    transfers = []
    for index in range(flows):
        transfers.append(cloud.network.transfer(
            src_hosts[index % len(src_hosts)],
            dst_hosts[index % len(dst_hosts)],
            size_bytes, flow_key=index, tag=f"elephant{index}",
        ))
    cloud.run_for(24 * 3600.0)
    assert all(t.done.triggered for t in transfers), "storm did not finish"
    failed = [t for t in transfers if not t.done.ok]
    completed = [t for t in transfers if t.done.ok]
    return {
        "completion_s": max((t.completed_at for t in completed), default=0.0),
        "failed": len(failed),
        "roots_used": sorted({t.path[2] for t in completed if len(t.path) > 2}),
        "mean_throughput": (
            sum(t.throughput for t in completed) / len(completed)
            if completed else 0.0
        ),
    }


def chatty_pairs(
    cloud: PiCloud,
    pairs: Sequence[tuple],
    message_bytes: int = kib(256),
    rate_per_s: float = 15.0,
    on_mean_s: float = 2.0,
    off_mean_s: float = 0.5,
    seed: int = 17,
    port: int = 9000,
) -> List[OnOffTrafficSource]:
    """Wire ON/OFF senders between container pairs ``(src_name, dst_name)``.

    Containers must already be running.  Returns the sources (call
    ``stop()`` to end the chatter).
    """
    rng = random.Random(seed)
    sources = []
    for src_name, dst_name in pairs:
        src = cloud.container(src_name)
        dst = cloud.container(dst_name)
        dst.listen(port)

        def make_send(s=src, ip=dst.ip):
            return lambda: s.send(ip, port, "chunk", size=message_bytes)

        sources.append(OnOffTrafficSource(
            cloud.sim, rng, make_send(),
            on_mean_s=on_mean_s, off_mean_s=off_mean_s, rate_per_s=rate_per_s,
        ))
    return sources


def congestion_totals(cloud: PiCloud) -> Dict[str, float]:
    """Aggregate congestion picture of the fabric right now."""
    rows = cloud.network.congestion_report()
    return {
        "congested_link_seconds": sum(r["congested_s"] for r in rows),
        "congestion_episodes": sum(r["episodes"] for r in rows),
        "worst_direction": rows[0]["direction"] if rows else "",
        "worst_mean_util": rows[0]["mean_util"] if rows else 0.0,
    }


def power_snapshot(cloud: PiCloud) -> Dict[str, float]:
    """Power picture: current draw, energy so far, machines on."""
    return {
        "watts": cloud.total_watts(),
        "joules": cloud.energy_joules(),
        "machines_on": sum(1 for m in cloud.machines.values() if m.is_on),
    }
