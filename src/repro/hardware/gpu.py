"""GPU offload: "the onboard GPU can also be exploited for general
computation" (§IV).

The BCM2835 integrates a VideoCore IV GPU (~24 GFLOPS single precision
-- an order of magnitude beyond the 700 MHz ARM11 core).  The model
captures what matters for offload studies on a constrained board:

* a *serial* offload queue (the GPU runs one kernel at a time; there is
  no preemption or fair sharing, unlike the CPU's GPS scheduler);
* a transfer cost in and out of GPU memory over the SoC bus, which makes
  small kernels not worth offloading -- the classic crossover;
* an active-power adder on top of the board's CPU-driven draw.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.kernel import Simulator
from repro.sim.process import Signal, Timeout
from repro.sim.resources import Resource
from repro.telemetry.series import Counter, Gauge


@dataclass(frozen=True)
class GpuSpec:
    """GPU capability."""

    flops: float                    # sustained ops/second
    transfer_bytes_per_s: float     # CPU<->GPU memory bandwidth
    launch_overhead_s: float = 100e-6
    active_watts: float = 0.5       # extra draw while a kernel runs

    def __post_init__(self) -> None:
        if self.flops <= 0 or self.transfer_bytes_per_s <= 0:
            raise ValueError("GPU flops and transfer bandwidth must be positive")
        if self.launch_overhead_s < 0 or self.active_watts < 0:
            raise ValueError("GPU overheads must be >= 0")


# The VideoCore IV as shipped on the BCM2835.
VIDEOCORE_IV = GpuSpec(
    flops=24e9,
    transfer_bytes_per_s=500e6,
    launch_overhead_s=100e-6,
    active_watts=0.5,
)


class Gpu:
    """One board's GPU: a serial offload engine."""

    def __init__(self, sim: Simulator, spec: GpuSpec, owner: str = "") -> None:
        self.sim = sim
        self.spec = spec
        self.owner = owner
        self._queue = Resource(sim, capacity=1, name=f"{owner}.gpu")
        self.kernels_run = Counter(sim, f"{owner}.gpu.kernels")
        self.busy = Gauge(sim, f"{owner}.gpu.busy", initial=0.0)

    def kernel_time(self, ops: float, transfer_bytes: float = 0.0) -> float:
        """Uncontended wall time for one kernel (planning helper)."""
        return (
            self.spec.launch_overhead_s
            + transfer_bytes / self.spec.transfer_bytes_per_s
            + ops / self.spec.flops
        )

    def offload(self, ops: float, transfer_bytes: float = 0.0,
                name: str = "") -> Signal:
        """Queue a kernel; the Signal fires when its results are back.

        ``transfer_bytes`` covers input + output movement over the bus.
        Kernels from co-located containers serialise on the device.
        """
        if ops < 0 or transfer_bytes < 0:
            raise ValueError("ops and transfer_bytes must be >= 0")
        done = Signal(self.sim, name=f"{self.owner}.gpu.{name or 'kernel'}")
        service_time = self.kernel_time(ops, transfer_bytes)

        def run():
            yield self._queue.acquire()
            self.busy.set(1.0)
            yield Timeout(self.sim, service_time)
            self._queue.release()
            if self._queue.in_use == 0:
                self.busy.set(0.0)
            self.kernels_run.add()
            done.succeed(ops)

        self.sim.process(run(), name=f"{self.owner}.gpu")
        return done

    def busy_seconds(self, start: Optional[float] = None,
                     end: Optional[float] = None) -> float:
        return self.busy.integral(start, end)

    def energy_joules(self, start: Optional[float] = None,
                      end: Optional[float] = None) -> float:
        """Extra energy attributable to GPU activity."""
        return self.busy_seconds(start, end) * self.spec.active_watts
