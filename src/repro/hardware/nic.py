"""Network interface card: the machine's attachment point to the fabric.

The NIC itself is thin -- the interesting behaviour (bandwidth sharing,
queueing) lives in :mod:`repro.netsim.link` -- but it owns the traffic
counters and the binding between a machine and its access link.
"""

from __future__ import annotations

from typing import Optional

from repro.hardware.specs import NicSpec
from repro.sim.kernel import Simulator
from repro.telemetry.series import Counter


class Nic:
    """One Ethernet port; binds to a single link endpoint in the fabric."""

    def __init__(self, sim: Simulator, spec: NicSpec, owner: str = "") -> None:
        self.sim = sim
        self.spec = spec
        self.owner = owner
        self.bytes_tx = Counter(sim, f"{owner}.nic.tx")
        self.bytes_rx = Counter(sim, f"{owner}.nic.rx")
        self.attached_node: Optional[str] = None  # netsim node id once cabled

    @property
    def bandwidth(self) -> float:
        """Line rate in bytes/second."""
        return self.spec.bandwidth_bytes_per_s

    def attach(self, node_id: str) -> None:
        """Record which fabric node this NIC is cabled to."""
        if self.attached_node is not None:
            raise ValueError(f"{self.owner}: NIC already cabled to {self.attached_node}")
        self.attached_node = node_id

    def detach(self) -> None:
        self.attached_node = None

    def on_transmit(self, nbytes: float) -> None:
        self.bytes_tx.add(nbytes)

    def on_receive(self, nbytes: float) -> None:
        self.bytes_rx.add(nbytes)
