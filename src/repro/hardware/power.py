"""Per-machine power model.

The paper's power argument (§III, §IV, Table I) rests on two facts this
module reproduces: a Pi draws ~3.5 W at load vs ~180 W for an x86 server,
and the whole 56-node PiCloud can run "from a single trailing power
socket board".  Power is a piecewise-constant function of CPU utilisation,
integrated *exactly* via the utilisation gauge -- no sampling error.
"""

from __future__ import annotations

from repro.hardware.specs import PowerSpec
from repro.sim.kernel import Simulator
from repro.telemetry.series import Gauge


class MachinePowerModel:
    """Utilisation-linear power draw with exact energy integration."""

    def __init__(self, sim: Simulator, spec: PowerSpec, owner: str = "") -> None:
        self.sim = sim
        self.spec = spec
        self.owner = owner
        self._powered = False
        # Machines start powered off: 0 W until boot.
        self.watts_gauge = Gauge(sim, name=f"{owner}.power.watts", initial=0.0)

    @property
    def current_watts(self) -> float:
        return self.watts_gauge.value

    def on_power_on(self) -> None:
        """Machine powered on; draws idle power until utilisation reported."""
        self._powered = True
        self.watts_gauge.set(self.spec.idle_watts)

    def on_power_off(self) -> None:
        self._powered = False
        self.watts_gauge.set(0.0)

    def on_utilization(self, fraction: float) -> None:
        """CPU scheduler hook: utilisation changed, update the draw.

        Ignored while powered off (an off machine draws nothing).
        """
        if self._powered:
            self.watts_gauge.set(self.spec.watts_at(fraction))

    def energy_joules(self, start: float | None = None, end: float | None = None) -> float:
        """Exact energy consumed over the window (integral of the gauge)."""
        return self.watts_gauge.integral(start, end)

    def mean_watts(self, start: float | None = None, end: float | None = None) -> float:
        return self.watts_gauge.time_weighted_mean(start, end)
