"""Block-storage model for the Pi's SD card (and the x86 server's disk).

Capacity accounting is owned by the filesystem layer
(:mod:`repro.hostos.filesystem`); this device models *time*: each I/O
takes ``latency + size/bandwidth`` seconds and the device serves one
request at a time (FIFO), so concurrent readers contend realistically --
important for image spawning, where pimaster pushes root filesystems onto
many SD cards.
"""

from __future__ import annotations

from repro.errors import StorageFullError
from repro.hardware.specs import StorageSpec
from repro.sim.kernel import Simulator
from repro.sim.process import Signal, Timeout
from repro.sim.resources import Resource
from repro.telemetry.series import Counter
from repro.units import fmt_bytes


class StorageDevice:
    """A single-queue block device with separate read/write bandwidths."""

    def __init__(self, sim: Simulator, spec: StorageSpec, owner: str = "") -> None:
        self.sim = sim
        self.spec = spec
        self.owner = owner
        self._queue = Resource(sim, capacity=1, name=f"{owner}.storage")
        self._used_bytes = 0
        self.bytes_read = Counter(sim, f"{owner}.storage.read")
        self.bytes_written = Counter(sim, f"{owner}.storage.written")

    # -- capacity accounting (called by the filesystem) ---------------------

    @property
    def capacity(self) -> int:
        return self.spec.capacity_bytes

    @property
    def used(self) -> int:
        return self._used_bytes

    @property
    def available(self) -> int:
        return self.capacity - self._used_bytes

    def reserve(self, nbytes: int) -> None:
        """Claim space on the device; raises :class:`StorageFullError`."""
        if nbytes < 0:
            raise ValueError("cannot reserve negative bytes")
        if nbytes > self.available:
            raise StorageFullError(
                f"{self.owner}: need {fmt_bytes(nbytes)}, "
                f"only {fmt_bytes(self.available)} free on {self.spec.kind}"
            )
        self._used_bytes += nbytes

    def release(self, nbytes: int) -> None:
        if nbytes < 0 or nbytes > self._used_bytes:
            raise ValueError(f"invalid release of {nbytes} bytes")
        self._used_bytes -= nbytes

    # -- timed I/O (processes yield these) ----------------------------------

    def read(self, nbytes: int) -> Signal:
        """Timed read of ``nbytes``; returns a Signal for the completion."""
        return self._io(nbytes, self.spec.read_bytes_per_s, self.bytes_read)

    def write(self, nbytes: int) -> Signal:
        """Timed write of ``nbytes`` (space must already be reserved)."""
        return self._io(nbytes, self.spec.write_bytes_per_s, self.bytes_written)

    def _io(self, nbytes: int, bandwidth: float, counter: Counter) -> Signal:
        if nbytes < 0:
            raise ValueError("negative I/O size")
        done = Signal(self.sim, name=f"{self.owner}.storage.io")
        service_time = self.spec.access_latency_s + nbytes / bandwidth

        def run():
            yield self._queue.acquire()
            yield Timeout(self.sim, service_time)
            self._queue.release()
            counter.add(nbytes)
            done.succeed(nbytes)

        self.sim.process(run(), name=f"{self.owner}.storage.io")
        return done

    def io_time(self, nbytes: int, write: bool = False) -> float:
        """Uncontended service time for an I/O of ``nbytes`` (for planning)."""
        bandwidth = self.spec.write_bytes_per_s if write else self.spec.read_bytes_per_s
        return self.spec.access_latency_s + nbytes / bandwidth
