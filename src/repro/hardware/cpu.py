"""CPU model: capacity holder plus utilisation accounting.

The actual scheduling of competing tasks is done by the host OS layer
(:mod:`repro.hostos.scheduler`); the Cpu exposes the machine's aggregate
cycle throughput and keeps a :class:`~repro.telemetry.series.Gauge` of
utilisation that the scheduler drives and the power model reads.
"""

from __future__ import annotations

from repro.hardware.specs import CpuSpec
from repro.sim.kernel import Simulator
from repro.telemetry.series import Gauge


class Cpu:
    """A machine's CPU: capacity in cycles/second plus a utilisation gauge."""

    def __init__(self, sim: Simulator, spec: CpuSpec, owner: str = "") -> None:
        self.sim = sim
        self.spec = spec
        self.owner = owner
        self.utilization = Gauge(sim, name=f"{owner}.cpu.util", initial=0.0)
        self.cycles_executed = 0.0

    @property
    def capacity(self) -> float:
        """Aggregate cycles per second across all cores."""
        return self.spec.capacity_cycles_per_s

    def set_utilization(self, fraction: float) -> None:
        """Scheduler hook: record the current demand-driven utilisation."""
        self.utilization.set(min(1.0, max(0.0, fraction)))

    def account_cycles(self, cycles: float) -> None:
        """Scheduler hook: add executed work to the lifetime counter."""
        if cycles < 0:
            raise ValueError("cannot account negative cycles")
        self.cycles_executed += cycles

    def mean_utilization(self, start: float | None = None, end: float | None = None) -> float:
        """Time-weighted mean utilisation over a window (for dashboards)."""
        return self.utilization.time_weighted_mean(start, end)
