"""The hardware catalog: the exact machines the paper builds and compares.

Numbers come straight from the paper where it gives them:

* Raspberry Pi: $35 per board (Table I; Model A is "$25" in §IV),
  3.5 W (Table I), 256 MB RAM on the original Model B (§II-B), later
  doubled to 512 MB at the same price (§IV), 700 MHz BCM2835 ARM11,
  16 GB SanDisk SD card (§II-A), 100 Mb/s Ethernet, no cooling needed.
* Commodity x86 testbed server: $2,000 and 180 W (Table I), needs cooling.

Where the paper is silent (e.g. SD-card throughput, x86 core counts) we
use period-accurate public figures for the class of device; only ratios
matter to the paper's arguments and those are preserved.
"""

from __future__ import annotations

from repro.hardware.gpu import VIDEOCORE_IV
from repro.hardware.specs import (
    CpuSpec,
    MachineSpec,
    MemorySpec,
    NicSpec,
    PowerSpec,
    StorageSpec,
)
from repro.units import gib, mbit_per_s, mhz, mib

_SD_CARD_16GB = StorageSpec(
    capacity_bytes=gib(16),
    read_bytes_per_s=20e6,   # class-10 SD sequential read, ~20 MB/s
    write_bytes_per_s=10e6,  # class-10 SD sequential write, ~10 MB/s
    access_latency_s=2e-3,
    kind="sd-card",
)

_PI_CPU = CpuSpec(clock_hz=mhz(700), cores=1, architecture="armv6")
_PI_NIC = NicSpec(bandwidth_bytes_per_s=mbit_per_s(100))
_PI_POWER = PowerSpec(idle_watts=2.5, peak_watts=3.5, needs_cooling=False)

# Raspbian idle footprint on a 2012-era Model B: the default GPU memory
# split (gpu_mem=64) plus kernel, system daemons and page cache come to
# roughly 150 MB, leaving ~106 MB for guests -- which is why the paper can
# run exactly three ~30 MB idle containers "comfortably" but not a fourth.
_PI_OS_RESERVE = mib(150)

RASPBERRY_PI_MODEL_A = MachineSpec(
    name="raspberry-pi-model-a",
    cpu=_PI_CPU,
    memory=MemorySpec(mib(256)),
    storage=_SD_CARD_16GB,
    nic=NicSpec(bandwidth_bytes_per_s=mbit_per_s(100)),  # via USB adapter
    power=PowerSpec(idle_watts=1.5, peak_watts=2.5, needs_cooling=False),
    unit_cost_usd=25.0,
    boot_time_s=25.0,
    os_reserved_bytes=_PI_OS_RESERVE,
    description="Raspberry Pi Model A: 256 MB, no onboard Ethernet, $25",
    tags=("arm", "pi"),
    gpu=VIDEOCORE_IV,
)

RASPBERRY_PI_MODEL_B = MachineSpec(
    name="raspberry-pi-model-b",
    cpu=_PI_CPU,
    memory=MemorySpec(mib(256)),
    storage=_SD_CARD_16GB,
    nic=_PI_NIC,
    power=_PI_POWER,
    unit_cost_usd=35.0,
    boot_time_s=25.0,
    os_reserved_bytes=_PI_OS_RESERVE,
    description="Raspberry Pi Model B (original): 256 MB, 100 Mb Ethernet, $35",
    tags=("arm", "pi"),
    gpu=VIDEOCORE_IV,
)

RASPBERRY_PI_MODEL_B_512 = RASPBERRY_PI_MODEL_B.with_memory(mib(512))
RASPBERRY_PI_MODEL_B_512 = MachineSpec(
    name="raspberry-pi-model-b-512",
    cpu=_PI_CPU,
    memory=MemorySpec(mib(512)),
    storage=_SD_CARD_16GB,
    nic=_PI_NIC,
    power=_PI_POWER,
    unit_cost_usd=35.0,
    boot_time_s=25.0,
    os_reserved_bytes=_PI_OS_RESERVE,
    description="Raspberry Pi Model B after the RAM doubling: 512 MB, same $35",
    tags=("arm", "pi"),
    gpu=VIDEOCORE_IV,
)

COMMODITY_X86_SERVER = MachineSpec(
    name="commodity-x86-server",
    cpu=CpuSpec(clock_hz=2.4e9, cores=8, architecture="x86-64"),
    memory=MemorySpec(gib(16)),
    storage=StorageSpec(
        capacity_bytes=gib(500),
        read_bytes_per_s=120e6,
        write_bytes_per_s=120e6,
        access_latency_s=8e-3,
        kind="hdd",
    ),
    nic=NicSpec(bandwidth_bytes_per_s=mbit_per_s(1000)),
    power=PowerSpec(idle_watts=110.0, peak_watts=180.0, needs_cooling=True),
    unit_cost_usd=2000.0,
    boot_time_s=120.0,
    os_reserved_bytes=gib(1),
    description="Commodity x86 rack server, the Table I comparison point",
    tags=("x86", "server"),
)

SPEC_CATALOG: dict[str, MachineSpec] = {
    spec.name: spec
    for spec in (
        RASPBERRY_PI_MODEL_A,
        RASPBERRY_PI_MODEL_B,
        RASPBERRY_PI_MODEL_B_512,
        COMMODITY_X86_SERVER,
    )
}


def lookup_spec(name: str) -> MachineSpec:
    """Fetch a spec by catalog name, with a helpful error on typos."""
    try:
        return SPEC_CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(SPEC_CATALOG))
        raise KeyError(f"unknown machine spec {name!r}; catalog has: {known}") from None
