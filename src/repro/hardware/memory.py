"""Memory model: labelled allocations against a fixed capacity.

This is where the paper's container-density limit comes from: a 256 MB
Model B with the Raspbian reserve holds exactly three ~30 MB idle
containers (plus per-container filesystem overhead), and attempts beyond
that raise :class:`~repro.errors.OutOfMemoryError`.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import OutOfMemoryError
from repro.hardware.specs import MemorySpec
from repro.sim.kernel import Simulator
from repro.telemetry.series import Gauge
from repro.units import fmt_bytes


class Memory:
    """Byte-accurate allocation tracking with named allocations."""

    def __init__(
        self,
        sim: Simulator,
        spec: MemorySpec,
        reserved_bytes: int = 0,
        owner: str = "",
    ) -> None:
        if reserved_bytes > spec.capacity_bytes:
            raise OutOfMemoryError(
                f"{owner}: OS reserve {fmt_bytes(reserved_bytes)} exceeds "
                f"capacity {fmt_bytes(spec.capacity_bytes)}"
            )
        self.sim = sim
        self.spec = spec
        self.owner = owner
        self.reserved_bytes = reserved_bytes
        self._allocations: Dict[str, int] = {}
        self.used_gauge = Gauge(sim, name=f"{owner}.mem.used", initial=float(reserved_bytes))

    @property
    def capacity(self) -> int:
        return self.spec.capacity_bytes

    @property
    def used(self) -> int:
        """Bytes in use, including the OS reserve."""
        return self.reserved_bytes + sum(self._allocations.values())

    @property
    def available(self) -> int:
        return self.capacity - self.used

    @property
    def utilization(self) -> float:
        return self.used / self.capacity

    def allocate(self, label: str, nbytes: int) -> None:
        """Allocate ``nbytes`` under ``label``; raises on OOM or relabel."""
        if nbytes < 0:
            raise ValueError(f"negative allocation {nbytes} for {label!r}")
        if label in self._allocations:
            raise OutOfMemoryError(
                f"{self.owner}: allocation label {label!r} already in use "
                "(use resize() to grow it)"
            )
        if nbytes > self.available:
            raise OutOfMemoryError(
                f"{self.owner}: cannot allocate {fmt_bytes(nbytes)} for {label!r}; "
                f"only {fmt_bytes(self.available)} of {fmt_bytes(self.capacity)} free"
            )
        self._allocations[label] = nbytes
        self.used_gauge.set(float(self.used))

    def resize(self, label: str, nbytes: int) -> None:
        """Grow or shrink an existing allocation (models RSS changes)."""
        if label not in self._allocations:
            raise KeyError(f"{self.owner}: no allocation {label!r}")
        if nbytes < 0:
            raise ValueError(f"negative allocation {nbytes} for {label!r}")
        delta = nbytes - self._allocations[label]
        if delta > self.available:
            raise OutOfMemoryError(
                f"{self.owner}: cannot grow {label!r} by {fmt_bytes(delta)}; "
                f"only {fmt_bytes(self.available)} free"
            )
        self._allocations[label] = nbytes
        self.used_gauge.set(float(self.used))

    def free(self, label: str) -> int:
        """Release an allocation; returns the bytes freed."""
        try:
            nbytes = self._allocations.pop(label)
        except KeyError:
            raise KeyError(f"{self.owner}: no allocation {label!r}") from None
        self.used_gauge.set(float(self.used))
        return nbytes

    def allocation(self, label: str) -> int:
        return self._allocations[label]

    def allocations(self) -> dict[str, int]:
        """Copy of the live allocation table (label -> bytes)."""
        return dict(self._allocations)
