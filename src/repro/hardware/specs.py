"""Immutable hardware specifications.

Specs are plain frozen dataclasses; the live component models in this
package are instantiated *from* a spec, so a whole rack of identical
machines shares one spec object.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class CpuSpec:
    """CPU capability: clock rate (cycles/s) times core count."""

    clock_hz: float
    cores: int = 1
    architecture: str = "armv6"

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ValueError("clock_hz must be positive")
        if self.cores < 1:
            raise ValueError("cores must be >= 1")

    @property
    def capacity_cycles_per_s(self) -> float:
        """Aggregate cycle throughput across all cores."""
        return self.clock_hz * self.cores


@dataclass(frozen=True)
class MemorySpec:
    """RAM capacity in bytes."""

    capacity_bytes: int

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")


@dataclass(frozen=True)
class StorageSpec:
    """Block storage: capacity plus a simple bandwidth/latency service model."""

    capacity_bytes: int
    read_bytes_per_s: float
    write_bytes_per_s: float
    access_latency_s: float = 0.0
    kind: str = "sd-card"

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if self.read_bytes_per_s <= 0 or self.write_bytes_per_s <= 0:
            raise ValueError("storage bandwidths must be positive")
        if self.access_latency_s < 0:
            raise ValueError("access_latency_s must be >= 0")


@dataclass(frozen=True)
class NicSpec:
    """Network interface: line rate in bytes/s."""

    bandwidth_bytes_per_s: float
    count: int = 1

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")
        if self.count < 1:
            raise ValueError("count must be >= 1")


@dataclass(frozen=True)
class PowerSpec:
    """Utilisation-linear power model parameters.

    ``watts(u) = idle + (peak - idle) * u`` with ``u`` in [0, 1].
    ``needs_cooling`` drives the cooling overhead in Table I.
    """

    idle_watts: float
    peak_watts: float
    needs_cooling: bool

    def __post_init__(self) -> None:
        if self.idle_watts < 0:
            raise ValueError("idle_watts must be >= 0")
        if self.peak_watts < self.idle_watts:
            raise ValueError("peak_watts must be >= idle_watts")

    def watts_at(self, utilization: float) -> float:
        """Power draw at the given utilisation, clamped to [0, 1]."""
        u = min(1.0, max(0.0, utilization))
        return self.idle_watts + (self.peak_watts - self.idle_watts) * u


@dataclass(frozen=True)
class MachineSpec:
    """A complete machine: the unit the catalog and Table I reason about."""

    name: str
    cpu: CpuSpec
    memory: MemorySpec
    storage: StorageSpec
    nic: NicSpec
    power: PowerSpec
    unit_cost_usd: float
    boot_time_s: float = 30.0
    os_reserved_bytes: int = 0
    description: str = ""
    tags: tuple[str, ...] = field(default_factory=tuple)
    # Optional integrated GPU (the Pi's VideoCore; see repro.hardware.gpu).
    # Typed loosely to avoid a circular import with gpu.py.
    gpu: object = None

    def __post_init__(self) -> None:
        if self.unit_cost_usd < 0:
            raise ValueError("unit_cost_usd must be >= 0")
        if self.boot_time_s < 0:
            raise ValueError("boot_time_s must be >= 0")
        if not (0 <= self.os_reserved_bytes <= self.memory.capacity_bytes):
            raise ValueError("os_reserved_bytes must fit within memory capacity")

    def with_memory(self, capacity_bytes: int) -> "MachineSpec":
        """Derive a spec with different RAM (models the Pi's RAM doubling)."""
        return replace(self, memory=MemorySpec(capacity_bytes))
