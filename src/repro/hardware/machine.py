"""The Machine: composition of hardware components plus a power lifecycle.

A :class:`Machine` is one Raspberry Pi board (or one x86 server in the
comparison testbed).  Booting takes the spec's boot time; only a booted
machine runs a host OS, containers, or daemons.  Failure injection
(``fail()`` / ``repair()``) supports the reliability experiments.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.errors import PowerStateError
from repro.hardware.cpu import Cpu
from repro.hardware.memory import Memory
from repro.hardware.nic import Nic
from repro.hardware.power import MachinePowerModel
from repro.hardware.specs import MachineSpec
from repro.hardware.storage import StorageDevice
from repro.sim.kernel import Simulator
from repro.sim.process import Signal, Timeout


class PowerState(enum.Enum):
    """Machine power lifecycle."""

    OFF = "off"
    BOOTING = "booting"
    ON = "on"
    FAILED = "failed"


class Machine:
    """One physical node: CPU + memory + storage + NIC + power model."""

    def __init__(
        self,
        sim: Simulator,
        spec: MachineSpec,
        machine_id: str,
        rack: Optional[str] = None,
        slot: Optional[int] = None,
    ) -> None:
        self.sim = sim
        self.spec = spec
        self.machine_id = machine_id
        self.rack = rack
        self.slot = slot

        self.cpu = Cpu(sim, spec.cpu, owner=machine_id)
        self.memory = Memory(
            sim, spec.memory, reserved_bytes=spec.os_reserved_bytes, owner=machine_id
        )
        self.storage = StorageDevice(sim, spec.storage, owner=machine_id)
        self.nic = Nic(sim, spec.nic, owner=machine_id)
        self.power = MachinePowerModel(sim, spec.power, owner=machine_id)
        if spec.gpu is not None:
            from repro.hardware.gpu import Gpu  # local: avoid import cycle

            self.gpu: Optional[Gpu] = Gpu(sim, spec.gpu, owner=machine_id)
        else:
            self.gpu = None

        self.state = PowerState.OFF
        self.boot_count = 0
        self.failure_count = 0

        # Wire utilisation changes through to the power model.
        original_set = self.cpu.set_utilization

        def set_and_meter(fraction: float) -> None:
            original_set(fraction)
            if self.state is PowerState.ON:
                self.power.on_utilization(fraction)

        self.cpu.set_utilization = set_and_meter  # type: ignore[method-assign]

    # -- power lifecycle ------------------------------------------------------

    @property
    def is_on(self) -> bool:
        return self.state is PowerState.ON

    def boot(self) -> Signal:
        """Power on; the returned Signal fires when the machine is up."""
        if self.state is not PowerState.OFF:
            raise PowerStateError(
                f"{self.machine_id}: cannot boot from state {self.state.value}"
            )
        self.state = PowerState.BOOTING
        self.power.on_power_on()
        done = Signal(self.sim, name=f"{self.machine_id}.boot")

        def run():
            yield Timeout(self.sim, self.spec.boot_time_s)
            if self.state is PowerState.BOOTING:  # not failed mid-boot
                self.state = PowerState.ON
                self.boot_count += 1
                done.succeed(self)
            else:
                done.fail(PowerStateError(f"{self.machine_id}: failed during boot"))

        self.sim.process(run(), name=f"{self.machine_id}.boot")
        return done

    def boot_immediately(self) -> None:
        """Skip the boot delay (used when assembling pre-warmed testbeds)."""
        if self.state is not PowerState.OFF:
            raise PowerStateError(
                f"{self.machine_id}: cannot boot from state {self.state.value}"
            )
        self.state = PowerState.ON
        self.boot_count += 1
        self.power.on_power_on()

    def shutdown(self) -> None:
        """Clean power-off.  The caller is responsible for stopping guests."""
        if self.state not in (PowerState.ON, PowerState.BOOTING):
            raise PowerStateError(
                f"{self.machine_id}: cannot shut down from state {self.state.value}"
            )
        self.state = PowerState.OFF
        self.cpu.set_utilization(0.0)
        self.power.on_power_off()

    def fail(self) -> None:
        """Hard failure: instant power loss, state FAILED until repair()."""
        if self.state is PowerState.FAILED:
            return
        self.state = PowerState.FAILED
        self.failure_count += 1
        self.power.on_power_off()
        # A dead board draws no cycles; without this the utilisation
        # telemetry (and placement's cpu_load view) shows a ghost load.
        self.cpu.set_utilization(0.0)

    def repair(self) -> None:
        """Return a failed machine to OFF so it can be booted again."""
        if self.state is not PowerState.FAILED:
            raise PowerStateError(
                f"{self.machine_id}: repair() only valid from FAILED, "
                f"not {self.state.value}"
            )
        self.state = PowerState.OFF

    # -- reporting -------------------------------------------------------------

    def describe(self) -> dict[str, object]:
        """Inventory row for the dashboard and Fig. 1 reproduction."""
        return {
            "id": self.machine_id,
            "spec": self.spec.name,
            "rack": self.rack,
            "slot": self.slot,
            "state": self.state.value,
            "cpu_util": self.cpu.utilization.value,
            "mem_used": self.memory.used,
            "mem_capacity": self.memory.capacity,
            "watts": self.power.current_watts,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Machine {self.machine_id} {self.spec.name} {self.state.value}>"
