"""Hardware models: machines, CPUs, memory, SD-card storage, NICs, power.

This package is the substitution for the physical Raspberry Pi boards of
the Glasgow PiCloud (and the commodity x86 servers they are compared to in
the paper's Table I).  Each machine is a composition of parameterised
component models whose capacities reproduce the ratios the paper's
arguments rest on: 256/512 MB RAM bounding container density, 100 Mb/s
NICs bounding network throughput, and 3.5 W vs 180 W power draw.
"""

from repro.hardware.catalog import (
    COMMODITY_X86_SERVER,
    RASPBERRY_PI_MODEL_A,
    RASPBERRY_PI_MODEL_B,
    RASPBERRY_PI_MODEL_B_512,
    SPEC_CATALOG,
)
from repro.hardware.cpu import Cpu
from repro.hardware.gpu import Gpu, GpuSpec, VIDEOCORE_IV
from repro.hardware.machine import Machine, PowerState
from repro.hardware.memory import Memory
from repro.hardware.nic import Nic
from repro.hardware.power import MachinePowerModel
from repro.hardware.specs import (
    CpuSpec,
    MachineSpec,
    MemorySpec,
    NicSpec,
    PowerSpec,
    StorageSpec,
)
from repro.hardware.storage import StorageDevice

__all__ = [
    "COMMODITY_X86_SERVER",
    "Cpu",
    "CpuSpec",
    "Gpu",
    "GpuSpec",
    "VIDEOCORE_IV",
    "Machine",
    "MachinePowerModel",
    "MachineSpec",
    "Memory",
    "MemorySpec",
    "Nic",
    "NicSpec",
    "PowerSpec",
    "PowerState",
    "RASPBERRY_PI_MODEL_A",
    "RASPBERRY_PI_MODEL_B",
    "RASPBERRY_PI_MODEL_B_512",
    "SPEC_CATALOG",
    "StorageDevice",
    "StorageSpec",
]
