"""Container images and the image library.

An image is a rootfs blob plus runtime characteristics: how much RSS the
container occupies when idle (the paper measures ~30 MB), and a label for
the application class it runs (the Fig. 3 stack shows web server,
database and Hadoop containers).  The pimaster's image-management tools
(upgrade, patch, spawn -- §II-A) operate on these.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.errors import ImageError
from repro.units import mib


@dataclass(frozen=True)
class ContainerImage:
    """An immutable image version."""

    name: str
    version: int
    rootfs_bytes: int
    idle_memory_bytes: int = mib(30)
    app_class: str = "generic"
    description: str = ""

    def __post_init__(self) -> None:
        if self.rootfs_bytes <= 0:
            raise ImageError(f"image {self.name!r}: rootfs_bytes must be positive")
        if self.idle_memory_bytes <= 0:
            raise ImageError(f"image {self.name!r}: idle_memory_bytes must be positive")
        if self.version < 1:
            raise ImageError(f"image {self.name!r}: version must be >= 1")

    @property
    def qualified_name(self) -> str:
        return f"{self.name}:v{self.version}"

    def patched(self, size_delta: int = 0) -> "ContainerImage":
        """Produce the next version (pimaster's patch/upgrade tooling)."""
        new_size = self.rootfs_bytes + size_delta
        if new_size <= 0:
            raise ImageError(f"patch would shrink {self.name!r} to {new_size} bytes")
        return replace(self, version=self.version + 1, rootfs_bytes=new_size)


# The application classes named in the paper (Fig. 3 and §IV).
STANDARD_IMAGES: Dict[str, ContainerImage] = {
    image.name: image
    for image in (
        ContainerImage(
            name="base",
            version=1,
            rootfs_bytes=mib(200),
            idle_memory_bytes=mib(30),
            app_class="generic",
            description="Minimal Raspbian-derived rootfs",
        ),
        ContainerImage(
            name="webserver",
            version=1,
            rootfs_bytes=mib(220),
            idle_memory_bytes=mib(30),
            app_class="http",
            description="Lightweight httpd (the paper's 'lightweight httpd servers')",
        ),
        ContainerImage(
            name="database",
            version=1,
            rootfs_bytes=mib(260),
            idle_memory_bytes=mib(35),
            app_class="kvstore",
            description="Key-value database container (Fig. 3 'Database')",
        ),
        ContainerImage(
            name="hadoop-worker",
            version=1,
            rootfs_bytes=mib(300),
            idle_memory_bytes=mib(40),
            app_class="mapreduce",
            description="Hadoop-style worker (Fig. 3 'Hadoop')",
        ),
    )
}


class ImageLibrary:
    """A versioned image registry (every pimaster owns one).

    ``get(name)`` returns the latest version; older versions stay
    addressable by qualified name for rollback studies.
    """

    def __init__(self, images: Optional[Dict[str, ContainerImage]] = None) -> None:
        self._latest: Dict[str, ContainerImage] = {}
        self._all: Dict[str, ContainerImage] = {}
        for image in (images or STANDARD_IMAGES).values():
            self.publish(image)

    def publish(self, image: ContainerImage) -> None:
        """Add an image version; must be strictly newer than the latest."""
        current = self._latest.get(image.name)
        if current is not None and image.version <= current.version:
            raise ImageError(
                f"cannot publish {image.qualified_name}; "
                f"{current.qualified_name} is already current"
            )
        self._latest[image.name] = image
        self._all[image.qualified_name] = image

    def get(self, name: str) -> ContainerImage:
        """Latest version of ``name`` (or an exact ``name:vN``)."""
        if ":" in name:
            try:
                return self._all[name]
            except KeyError:
                raise ImageError(f"no image {name!r}") from None
        try:
            return self._latest[name]
        except KeyError:
            known = ", ".join(sorted(self._latest))
            raise ImageError(f"no image {name!r}; library has: {known}") from None

    def patch(self, name: str, size_delta: int = 0) -> ContainerImage:
        """Create and publish the next version of ``name``."""
        new_image = self.get(name).patched(size_delta)
        self.publish(new_image)
        return new_image

    def names(self) -> list[str]:
        return sorted(self._latest)

    def versions(self, name: str) -> list[ContainerImage]:
        return sorted(
            (img for img in self._all.values() if img.name == name),
            key=lambda img: img.version,
        )
