"""The per-host LXC runtime: lxc-create / start / freeze / stop / destroy.

Container density is *emergent*, not hard-coded: ``lxc_start`` charges the
image's idle RSS to the container's cgroup, which charges the machine's
physical memory -- so a 256 MB Model B with the Raspbian reserve fits
exactly three ~30 MB containers (paper §II-B), and the fourth start
raises OOM.  Rootfs provisioning is timed SD-card I/O, so spawning many
containers on one Pi queues on the card, as it does in reality.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro import trace
from repro.errors import ContainerStateError, OutOfMemoryError, VirtualisationError
from repro.hostos.kernelhost import HostKernel
from repro.sim.process import Signal, Timeout
from repro.virt.container import Container, ContainerState
from repro.virt.image import ContainerImage

# lxc-start process overhead before the app is reachable.
DEFAULT_START_DELAY_S = 2.0
LXC_ROOT = "/var/lib/lxc"


class LxcRuntime:
    """One host's container runtime."""

    def __init__(self, kernel: HostKernel, start_delay_s: float = DEFAULT_START_DELAY_S) -> None:
        self.kernel = kernel
        self.sim = kernel.sim
        self.start_delay_s = start_delay_s
        self._containers: Dict[str, Container] = {}
        self.containers_created = 0
        self.containers_started = 0

    @property
    def host_id(self) -> str:
        return self.kernel.machine.machine_id

    # -- queries -----------------------------------------------------------------

    def container(self, name: str) -> Container:
        try:
            return self._containers[name]
        except KeyError:
            raise VirtualisationError(
                f"{self.host_id}: no container {name!r}"
            ) from None

    def containers(self, state: Optional[ContainerState] = None) -> list[Container]:
        out = [
            c for c in self._containers.values()
            if state is None or c.state is state
        ]
        return sorted(out, key=lambda c: c.name)

    def running_count(self) -> int:
        return sum(1 for c in self._containers.values() if c.is_running)

    # -- lifecycle ------------------------------------------------------------------

    def lxc_create(
        self,
        name: str,
        image: ContainerImage,
        cpu_shares: int = 1024,
        cpu_quota: Optional[float] = None,
        memory_limit_bytes: Optional[int] = None,
        provision_rootfs: bool = True,
        parent=None,
    ) -> Signal:
        """Define a container: cgroup + rootfs copy onto the SD card.

        The Signal succeeds with the :class:`Container` once the rootfs
        write finishes (timed I/O); it fails on duplicate names or a full
        card.  ``provision_rootfs=False`` skips the timed write (used by
        migration, which streams state instead).
        """
        done = Signal(self.sim, name=f"{self.host_id}.lxc-create.{name}")
        span = trace.start_span(
            self.sim, "virt.create", parent=parent, kind="virt",
            attributes={"host": self.host_id, "container": name,
                        "image": image.qualified_name},
        )
        if name in self._containers:
            span.end("error", "name exists")
            done.fail(VirtualisationError(f"{self.host_id}: container {name!r} exists"))
            return done
        rootfs = f"{LXC_ROOT}/{name}/rootfs"
        try:
            cgroup = self.kernel.create_cgroup(
                f"lxc.{name}",
                cpu_shares=cpu_shares,
                cpu_quota=cpu_quota,
                memory_limit_bytes=memory_limit_bytes,
            )
        except Exception as exc:  # duplicate cgroup
            span.end("error", str(exc))
            done.fail(VirtualisationError(str(exc)))
            return done

        container = Container(name, image, self, cgroup, rootfs)
        self._containers[name] = container

        def run():
            try:
                if provision_rootfs:
                    yield self.kernel.filesystem.write(
                        rootfs, image.rootfs_bytes,
                        metadata={"image": image.qualified_name},
                    )
                else:
                    self.kernel.filesystem.create(
                        rootfs, image.rootfs_bytes,
                        metadata={"image": image.qualified_name},
                    )
            except Exception as exc:
                self._containers.pop(name, None)
                self.kernel.remove_cgroup(cgroup.name)
                span.end("error", str(exc))
                done.fail(VirtualisationError(f"lxc-create {name!r}: {exc}"))
                return
            self.containers_created += 1
            span.end("ok")
            done.succeed(container)

        self.sim.process(run(), name=f"{self.host_id}.lxc-create.{name}")
        return done

    def lxc_start(self, container: Container, ip: Optional[str] = None,
                  parent=None) -> Signal:
        """Start a defined container; charges idle RSS, binds the IP.

        Fails with :class:`OutOfMemoryError` if the idle footprint does not
        fit -- the mechanism behind the paper's 3-containers-per-Pi limit.
        """
        done = Signal(self.sim, name=f"{self.host_id}.lxc-start.{container.name}")
        span = trace.start_span(
            self.sim, "virt.start", parent=parent, kind="virt",
            attributes={"host": self.host_id, "container": container.name},
        )
        try:
            container.require_state(ContainerState.DEFINED)
        except ContainerStateError as exc:
            span.end("error", str(exc))
            done.fail(exc)
            return done
        try:
            container.cgroup.charge_memory(container.image.idle_memory_bytes)
        except OutOfMemoryError as exc:
            span.end("error", str(exc))
            done.fail(exc)
            return done
        container.memory_bytes = container.image.idle_memory_bytes

        def run():
            yield Timeout(self.sim, self.start_delay_s)
            if container.state is not ContainerState.DEFINED:
                span.end("error", "state changed during start")
                done.fail(ContainerStateError(
                    f"container {container.name!r} changed state during start"
                ))
                return
            if ip is not None:
                self.kernel.netstack.bind_address(ip)
                container.ip = ip
                if container.net_rate_cap is not None:
                    self.kernel.netstack.set_rate_cap(ip, container.net_rate_cap)
            container.state = ContainerState.RUNNING
            container.started_at = self.sim.now
            self.containers_started += 1
            span.end("ok")
            done.succeed(container)

        self.sim.process(run(), name=f"{self.host_id}.lxc-start.{container.name}")
        return done

    def lxc_freeze(self, container: Container) -> None:
        """Suspend: new work is rejected until unfreeze (cgroup freezer)."""
        container.require_state(ContainerState.RUNNING)
        container.state = ContainerState.FROZEN

    def lxc_unfreeze(self, container: Container) -> None:
        container.require_state(ContainerState.FROZEN)
        container.state = ContainerState.RUNNING

    def lxc_stop(self, container: Container) -> None:
        """Stop: release RSS and the IP; rootfs stays (state DEFINED)."""
        container.require_state(ContainerState.RUNNING, ContainerState.FROZEN)
        if container.memory_bytes > 0:
            container.cgroup.uncharge_memory(container.memory_bytes)
            container.memory_bytes = 0
        if container.ip is not None:
            self.kernel.netstack.set_rate_cap(container.ip, None)
            self.kernel.netstack.unbind_address(container.ip)
            container.ip = None
        container.state = ContainerState.DEFINED

    def lxc_destroy(self, container: Container) -> None:
        """Destroy: delete the rootfs and the cgroup.  Must be stopped."""
        container.require_state(ContainerState.DEFINED)
        if self.kernel.filesystem.exists(container.rootfs_path):
            self.kernel.filesystem.delete(container.rootfs_path)
        self.kernel.remove_cgroup(container.cgroup.name)
        container.state = ContainerState.DESTROYED
        self._containers.pop(container.name, None)

    # -- migration hooks (used by repro.virt.migration) -----------------------------

    def adopt(self, container: Container, ip: Optional[str]) -> None:
        """Take ownership of a migrated-in container (already RUNNING)."""
        if container.name in self._containers:
            raise VirtualisationError(
                f"{self.host_id}: container name {container.name!r} collides"
            )
        self._containers[container.name] = container
        container.runtime = self
        if ip is not None:
            container.ip = ip

    def abandon(self, container: Container) -> None:
        """Release a migrated-out container without destroying its object."""
        self._containers.pop(container.name, None)

    # -- reporting ----------------------------------------------------------------------

    def describe(self) -> dict[str, object]:
        return {
            "host": self.host_id,
            "containers": [c.describe() for c in self.containers()],
            "running": self.running_count(),
        }
