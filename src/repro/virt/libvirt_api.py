"""A libvirt-flavoured facade over the LXC runtime.

The paper (§II-C) intends to adapt the libvirt framework but notes it is
"currently not fully functional on the Pi platform", falling back to a
bespoke REST API.  This adapter provides the libvirt *programming model*
-- connections, domains, define/create/suspend/resume/shutdown/undefine --
as a thin veneer over :class:`~repro.virt.lxc.LxcRuntime`, so code written
against libvirt idioms runs unchanged on the PiCloud model.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.errors import VirtualisationError
from repro.sim.process import Signal
from repro.virt.container import Container, ContainerState
from repro.virt.lxc import LxcRuntime

# libvirt numeric domain states (subset; values match libvirt's enum).
VIR_DOMAIN_RUNNING = 1
VIR_DOMAIN_PAUSED = 3
VIR_DOMAIN_SHUTOFF = 5

_STATE_MAP = {
    ContainerState.DEFINED: VIR_DOMAIN_SHUTOFF,
    ContainerState.RUNNING: VIR_DOMAIN_RUNNING,
    ContainerState.FROZEN: VIR_DOMAIN_PAUSED,
}


class Domain:
    """libvirt-style handle to one container."""

    def __init__(self, connection: "LibvirtConnection", container: Container) -> None:
        self._connection = connection
        self._container = container

    # -- naming ----------------------------------------------------------------

    def name(self) -> str:
        return self._container.name

    def UUIDString(self) -> str:
        # Deterministic pseudo-UUID derived from host + name.
        import hashlib

        digest = hashlib.sha256(
            f"{self._container.host_id}/{self._container.name}".encode()
        ).hexdigest()
        return (
            f"{digest[:8]}-{digest[8:12]}-{digest[12:16]}-"
            f"{digest[16:20]}-{digest[20:32]}"
        )

    # -- lifecycle ---------------------------------------------------------------

    def create(self, ip: Optional[str] = None) -> Signal:
        """Start the domain (libvirt's create == start for defined domains)."""
        return self._connection.runtime.lxc_start(self._container, ip=ip)

    def suspend(self) -> None:
        self._connection.runtime.lxc_freeze(self._container)

    def resume(self) -> None:
        self._connection.runtime.lxc_unfreeze(self._container)

    def shutdown(self) -> None:
        self._connection.runtime.lxc_stop(self._container)

    def undefine(self) -> None:
        self._connection.runtime.lxc_destroy(self._container)

    def isActive(self) -> bool:
        return self._container.state in (ContainerState.RUNNING, ContainerState.FROZEN)

    # -- introspection --------------------------------------------------------------

    def state(self) -> int:
        try:
            return _STATE_MAP[self._container.state]
        except KeyError:
            raise VirtualisationError(
                f"domain {self.name()!r} is destroyed"
            ) from None

    def info(self) -> Dict[str, Any]:
        """libvirt ``dom.info()`` analogue."""
        limit = self._container.cgroup.memory_limit_bytes
        return {
            "state": self.state(),
            "maxMem": limit if limit is not None else
            self._connection.runtime.kernel.machine.memory.capacity,
            "memory": self._container.memory_bytes,
            "nrVirtCpu": 1,
            "cpuShares": self._container.cgroup.cpu_shares,
        }

    @property
    def container(self) -> Container:
        """Escape hatch to the underlying container object."""
        return self._container


class LibvirtConnection:
    """libvirt ``virConnect`` analogue bound to one host's LXC runtime.

    The URI follows libvirt's LXC driver convention: ``lxc://<host>/``.
    """

    def __init__(self, runtime: LxcRuntime) -> None:
        self.runtime = runtime

    def getURI(self) -> str:
        return f"lxc://{self.runtime.host_id}/"

    def defineDomain(self, config: Dict[str, Any]) -> Signal:
        """Define a domain from a config dict (libvirt defineXML analogue).

        Required keys: ``name``, ``image`` (a ContainerImage).  Optional:
        ``cpu_shares``, ``cpu_quota``, ``memory_limit_bytes``.
        The Signal succeeds with a :class:`Domain`.
        """
        missing = {"name", "image"} - set(config)
        if missing:
            raise VirtualisationError(f"domain config missing keys: {sorted(missing)}")
        create = self.runtime.lxc_create(
            config["name"],
            config["image"],
            cpu_shares=config.get("cpu_shares", 1024),
            cpu_quota=config.get("cpu_quota"),
            memory_limit_bytes=config.get("memory_limit_bytes"),
        )
        wrapped = Signal(self.runtime.sim, name=f"defineDomain.{config['name']}")

        def on_done(sig: Signal) -> None:
            exc = sig.exception
            if exc is not None:
                wrapped.fail(exc)
            else:
                wrapped.succeed(Domain(self, sig.value))

        create.add_done_callback(on_done)
        return wrapped

    def lookupByName(self, name: str) -> Domain:
        return Domain(self, self.runtime.container(name))

    def listAllDomains(self) -> list[Domain]:
        return [Domain(self, c) for c in self.runtime.containers()]

    def listDomainsID(self) -> list[int]:
        """Numeric IDs of *active* domains (libvirt convention)."""
        return [
            index + 1
            for index, container in enumerate(self.runtime.containers())
            if container.state in (ContainerState.RUNNING, ContainerState.FROZEN)
        ]
