"""Live migration: iterative pre-copy over the simulated fabric.

The paper's §VI names "sophisticated live migration within the PiCloud"
as the immediate next step; this module implements the standard pre-copy
algorithm (as in Xen/QEMU):

1. Copy the container's full RSS to the destination host while it keeps
   running (and keeps dirtying pages at ``container.dirty_rate``).
2. Repeat: copy only the pages dirtied during the previous round.  Rounds
   shrink geometrically while the achieved bandwidth exceeds the dirty
   rate.
3. When the residual set is small enough (or ``max_rounds`` is hit),
   freeze the container, copy the last residue (**downtime**), move the
   IP, and resume on the destination.

Every copy round is a real flow through the fabric, so migration traffic
contends with -- and is slowed by -- application traffic, reproducing the
cross-layer coupling the paper argues simulators miss.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro import trace
from repro.errors import MigrationError
from repro.sim.process import Process, Signal, Timeout
from repro.virt.container import Container, ContainerState
from repro.virt.lxc import LxcRuntime

# Stop iterating once the residual dirty set fits in this many bytes.
DEFAULT_STOP_THRESHOLD = 256 * 1024
DEFAULT_MAX_ROUNDS = 30


@dataclass
class MigrationReport:
    """What happened during one live migration."""

    container: str
    source: str
    destination: str
    rounds: int = 0
    bytes_per_round: List[float] = field(default_factory=list)
    total_bytes: float = 0.0
    started_at: float = 0.0
    finished_at: float = 0.0
    downtime_s: float = 0.0
    converged: bool = True

    @property
    def duration_s(self) -> float:
        return self.finished_at - self.started_at


def live_migrate(
    container: Container,
    destination: LxcRuntime,
    stop_threshold_bytes: float = DEFAULT_STOP_THRESHOLD,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    parent=None,
) -> Signal:
    """Start a live migration; the Signal succeeds with a MigrationReport.

    Fails with :class:`MigrationError` if the container is not running,
    the destination is the same host, or the destination lacks memory.
    """
    source = container.runtime
    sim = source.sim
    done = Signal(sim, name=f"migrate.{container.name}")
    span = trace.start_span(
        sim, "virt.migrate", parent=parent, kind="virt",
        attributes={"container": container.name, "source": source.host_id,
                    "destination": destination.host_id},
    )

    if container.state is not ContainerState.RUNNING:
        span.end("error", "not running")
        done.fail(MigrationError(
            f"container {container.name!r} is {container.state.value}, not running"
        ))
        return done
    if destination is source:
        span.end("error", "same host")
        done.fail(MigrationError(
            f"container {container.name!r} is already on {destination.host_id}"
        ))
        return done
    if max_rounds < 1:
        span.end("error", "max_rounds must be >= 1")
        done.fail(MigrationError("max_rounds must be >= 1"))
        return done

    network = source.kernel.netstack.fabric.network
    src_node = source.kernel.netstack.node_id
    dst_node = destination.kernel.netstack.node_id
    report = MigrationReport(
        container=container.name,
        source=source.host_id,
        destination=destination.host_id,
        started_at=sim.now,
    )

    def run():
        # Reserve memory and rootfs on the destination up-front, so a full
        # host fails fast instead of after copying hundreds of MB.
        try:
            dst_container = yield destination.lxc_create(
                container.name,
                container.image,
                cpu_shares=container.cgroup.cpu_shares,
                cpu_quota=container.cgroup.cpu_quota,
                memory_limit_bytes=container.cgroup.memory_limit_bytes,
                provision_rootfs=False,
                parent=span,
            )
            dst_container.cgroup.charge_memory(container.memory_bytes)
        except Exception as exc:
            span.end("error", str(exc))
            done.fail(MigrationError(
                f"destination {destination.host_id} cannot host "
                f"{container.name!r}: {exc}"
            ))
            return

        try:
            # --- iterative pre-copy -------------------------------------
            to_copy = float(container.memory_bytes)
            while True:
                report.rounds += 1
                round_start = sim.now
                flow = network.transfer(
                    src_node, dst_node, to_copy,
                    tag=f"migrate:{container.name}:round{report.rounds}",
                    parent=span,
                )
                yield flow.done
                report.bytes_per_round.append(to_copy)
                report.total_bytes += to_copy
                round_time = sim.now - round_start
                dirtied = container.dirty_rate * round_time
                if dirtied <= stop_threshold_bytes:
                    to_copy = dirtied
                    break
                if report.rounds >= max_rounds:
                    report.converged = False
                    to_copy = dirtied
                    break
                if report.bytes_per_round[-1] > 0 and dirtied >= to_copy:
                    # Dirty rate >= achieved bandwidth: rounds are not
                    # shrinking; go to stop-and-copy now.
                    report.converged = False
                    to_copy = dirtied
                    break
                to_copy = dirtied

            # --- stop-and-copy (downtime window) ------------------------
            source.lxc_freeze(container)
            downtime_start = sim.now
            if to_copy > 0:
                flow = network.transfer(
                    src_node, dst_node, to_copy,
                    tag=f"migrate:{container.name}:final",
                    parent=span,
                )
                yield flow.done
                report.total_bytes += to_copy
            # Switch over: move the IP (and its open server sockets),
            # re-home the container object.
            ip = container.ip
            source_stack = source.kernel.netstack
            if ip is not None:
                source_stack.set_rate_cap(ip, None)
                source_stack.unbind_address(ip)
                destination.kernel.netstack.bind_address(ip)
                source_stack.transfer_listeners(ip, destination.kernel.netstack)
                if container.net_rate_cap is not None:
                    destination.kernel.netstack.set_rate_cap(
                        ip, container.net_rate_cap
                    )
            source.abandon(container)
            # Release source-side resources.
            old_cgroup = container.cgroup
            old_rss = container.memory_bytes
            if old_rss > 0:
                old_cgroup.uncharge_memory(old_rss)
            source.kernel.remove_cgroup(old_cgroup.name)
            if source.kernel.filesystem.exists(container.rootfs_path):
                source.kernel.filesystem.delete(container.rootfs_path)
            # Adopt on the destination.
            container.cgroup = dst_container.cgroup
            destination._containers.pop(dst_container.name, None)
            destination.adopt(container, ip)
            container.state = ContainerState.RUNNING
            container.migration_count += 1
            report.downtime_s = sim.now - downtime_start
            report.finished_at = sim.now
            span.set_attribute("rounds", report.rounds)
            span.set_attribute("downtime_s", report.downtime_s)
            span.set_attribute("converged", report.converged)
            span.end("ok")
            done.succeed(report)
        except Exception as exc:  # noqa: BLE001 - report migration failure
            if container.state is ContainerState.FROZEN:
                source.lxc_unfreeze(container)
            span.end("error", str(exc))
            done.fail(MigrationError(f"migration of {container.name!r} failed: {exc}"))

    sim.process(run(), name=f"migrate.{container.name}")
    return done
