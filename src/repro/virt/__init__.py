"""Virtualisation layer: Linux Containers on the PiCloud (paper §II-B/C).

The paper uses LXC -- operating-system-level virtualisation via cgroups --
because Xen-style full virtualisation does not fit a 256 MB ARM board.
This package models that stack:

* :mod:`~repro.virt.image` -- container images (rootfs blobs with an idle
  memory footprint) and the image library pimaster manages.
* :mod:`~repro.virt.container` -- the container object and its LXC
  lifecycle state machine.
* :mod:`~repro.virt.lxc` -- the per-host runtime (`lxc-create`,
  `lxc-start`, `lxc-freeze`, ... equivalents) enforcing memory-bounded
  density: three ~30 MB containers per 256 MB Pi.
* :mod:`~repro.virt.libvirt_api` -- a libvirt-flavoured facade (the paper
  plans to adopt libvirt; we provide the adapter it describes).
* :mod:`~repro.virt.migration` -- iterative pre-copy live migration over
  the simulated fabric (the paper's named future work, implemented).
"""

from repro.virt.container import Container, ContainerState
from repro.virt.image import ContainerImage, ImageLibrary, STANDARD_IMAGES
from repro.virt.libvirt_api import Domain, LibvirtConnection
from repro.virt.lxc import LxcRuntime
from repro.virt.migration import MigrationReport, live_migrate

__all__ = [
    "Container",
    "ContainerImage",
    "ContainerState",
    "Domain",
    "ImageLibrary",
    "LibvirtConnection",
    "LxcRuntime",
    "MigrationReport",
    "STANDARD_IMAGES",
    "live_migrate",
]
