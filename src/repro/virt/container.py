"""The container object and its LXC lifecycle.

State machine (mirroring LXC's)::

    DEFINED --start--> RUNNING --freeze--> FROZEN
       ^                  |  ^---unfreeze----'
       |                stop
       '---destroy <------'--> DEFINED ... --destroy--> DESTROYED

A container is "an enhanced chroot" (paper §II-B): its own process and
network space, enforced by a cgroup.  All CPU work an application does
inside the container goes through :meth:`Container.execute`, which charges
the container's cgroup on whatever host currently runs it -- this
indirection is what makes live migration transparent to applications.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Optional

from repro.errors import ContainerStateError
from repro.hostos.cgroup import CGroup
from repro.hostos.scheduler import Task
from repro.sim.process import Signal
from repro.virt.image import ContainerImage

if TYPE_CHECKING:  # pragma: no cover
    from repro.virt.lxc import LxcRuntime


class ContainerState(enum.Enum):
    DEFINED = "defined"      # created on disk, not running
    RUNNING = "running"
    FROZEN = "frozen"
    DESTROYED = "destroyed"


class Container:
    """One Linux Container: image instance + cgroup + bridged IP."""

    def __init__(
        self,
        name: str,
        image: ContainerImage,
        runtime: "LxcRuntime",
        cgroup: CGroup,
        rootfs_path: str,
    ) -> None:
        self.name = name
        self.image = image
        self.runtime = runtime
        self.cgroup = cgroup
        self.rootfs_path = rootfs_path
        self.state = ContainerState.DEFINED
        self.ip: Optional[str] = None
        self.memory_bytes = 0            # current RSS (0 while stopped)
        self.dirty_rate = 0.0            # bytes/s of page dirtying (migration)
        self.net_rate_cap: Optional[float] = None  # egress cap, bytes/s
        self.created_at = runtime.sim.now
        self.started_at: Optional[float] = None
        self.app: Any = None             # application object bound to this container
        self.migration_count = 0

    # -- state helpers ---------------------------------------------------------

    @property
    def is_running(self) -> bool:
        return self.state is ContainerState.RUNNING

    @property
    def host_id(self) -> str:
        """The machine currently hosting this container."""
        return self.runtime.kernel.machine.machine_id

    def require_state(self, *states: ContainerState) -> None:
        if self.state not in states:
            wanted = ", ".join(s.value for s in states)
            raise ContainerStateError(
                f"container {self.name!r} is {self.state.value}; needs {wanted}"
            )

    # -- resource operations (application-facing) --------------------------------

    def execute(self, cycles: float, name: str = "") -> Task:
        """Run CPU work inside the container on its *current* host."""
        self.require_state(ContainerState.RUNNING)
        return self.runtime.kernel.submit(
            cycles, cgroup=self.cgroup, name=name or f"{self.name}.work"
        )

    def run(self, cycles: float, name: str = "") -> Signal:
        return self.execute(cycles, name).done

    def grow_memory(self, nbytes: int) -> None:
        """Increase RSS (application allocated memory)."""
        self.require_state(ContainerState.RUNNING, ContainerState.FROZEN)
        self.cgroup.charge_memory(nbytes)
        self.memory_bytes += nbytes

    def shrink_memory(self, nbytes: int) -> None:
        if nbytes > self.memory_bytes:
            raise ValueError(
                f"container {self.name!r}: cannot shrink {nbytes} of {self.memory_bytes}"
            )
        self.cgroup.uncharge_memory(nbytes)
        self.memory_bytes -= nbytes

    def send(self, dst_ip: str, dst_port: int, payload: Any, size: int,
             **kwargs: Any) -> Signal:
        """Send a message from this container's bridged IP."""
        self.require_state(ContainerState.RUNNING)
        if self.ip is None:
            raise ContainerStateError(f"container {self.name!r} has no IP")
        return self.runtime.kernel.netstack.send(
            dst_ip, dst_port, payload, size, src_ip=self.ip, **kwargs
        )

    def listen(self, port: int):
        """Open a mailbox on this container's IP."""
        self.require_state(ContainerState.RUNNING)
        if self.ip is None:
            raise ContainerStateError(f"container {self.name!r} has no IP")
        return self.runtime.kernel.netstack.listen(port, ip=self.ip)

    def set_network_cap(self, bytes_per_s: Optional[float]) -> None:
        """Soft per-VM network limit (Fig. 4): cap this container's egress."""
        self.require_state(ContainerState.RUNNING, ContainerState.FROZEN)
        if self.ip is None:
            raise ContainerStateError(f"container {self.name!r} has no IP")
        self.runtime.kernel.netstack.set_rate_cap(self.ip, bytes_per_s)
        self.net_rate_cap = bytes_per_s

    # -- reporting ------------------------------------------------------------------

    def describe(self) -> dict[str, Any]:
        """One row of the Fig. 4 management panel's VM table."""
        return {
            "name": self.name,
            "image": self.image.qualified_name,
            "state": self.state.value,
            "host": self.host_id,
            "ip": self.ip,
            "memory": self.memory_bytes,
            "cpu_shares": self.cgroup.cpu_shares,
            "cpu_quota": self.cgroup.cpu_quota,
            "migrations": self.migration_count,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Container {self.name} {self.state.value} on {self.host_id}>"
