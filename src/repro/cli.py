"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info``       -- build the configured cloud and print its architecture.
* ``table1``     -- regenerate the paper's Table I.
* ``dashboard``  -- boot a cloud, spawn demo containers, print the Fig. 4
  control panel.
* ``scale``      -- the scale throughput benchmark, unsharded or on the
  sharded per-pod parallel kernel (``--shards``).
* ``storm``      -- run the inter-rack elephant storm under a routing mode
  and report completion time (experiment C3's workload).
* ``load``       -- drive session-level user load (optionally a flash
  crowd) through the fabric and report latency percentiles + SLO burn.

All commands accept ``--racks`` / ``--pis`` / ``--routing`` / ``--seed``
so paper-scale and toy runs use the same entry point.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import PurePath
from typing import Optional, Sequence

from repro.core.cloud import PiCloud
from repro.core.comparison import testbed_comparison
from repro.core.config import (
    CC_PROTOCOLS,
    RATE_MODELS,
    ROUTING_MODES,
    HealthConfig,
    PiCloudConfig,
    RateModelConfig,
    SimBudgetConfig,
    TraceConfig,
)
from repro.core.experiments import elephant_storm
from repro.errors import PiCloudError, SimBudgetExceeded
from repro.load import (
    FlashCrowdArrivals,
    LoadEngine,
    PoissonArrivals,
    Service,
    ServiceProfile,
    SloObjective,
)
from repro.telemetry.stats import format_table
from repro.units import mbit_per_s


def _add_cloud_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--racks", type=int, default=4,
                        help="number of racks (paper: 4)")
    parser.add_argument("--pis", type=int, default=14,
                        help="Pis per rack (paper: 14)")
    parser.add_argument("--routing", choices=ROUTING_MODES,
                        default="sdn-shortest", help="fabric control plane")
    parser.add_argument("--seed", type=int, default=0, help="RNG master seed")
    parser.add_argument("--max-events", type=int, default=None, metavar="N",
                        help="run budget: abort after N kernel events")
    parser.add_argument("--max-sim-time", type=float, default=None, metavar="T",
                        help="run budget: abort past simulated time T (s)")
    parser.add_argument("--wall-timeout", type=float, default=None, metavar="S",
                        help="watchdog: abort a run after S wall-clock seconds")
    parser.add_argument("--trace-out", type=str, default=None, metavar="PATH",
                        help="record a causal trace and write it to PATH "
                             "(.jsonl = span records, anything else = "
                             "Chrome trace-viewer JSON)")
    parser.add_argument("--rate-model", choices=RATE_MODELS, default="maxmin",
                        help="fabric rate assignment: instantaneous max-min "
                             "fair share (default) or per-flow congestion "
                             "control with queue/ECN dynamics")
    parser.add_argument("--cc-protocol", choices=CC_PROTOCOLS, default="reno",
                        help="congestion-control update rule when "
                             "--rate-model=cc (ignored under maxmin)")
    parser.add_argument("--self-healing", action="store_true",
                        help="start the pimaster's heartbeat failure "
                             "detector: dead nodes are detected, their "
                             "containers evacuated, repaired nodes rejoin")
    parser.add_argument("--profile", nargs="?", const="", default=None,
                        metavar="PATH",
                        help="profile the whole command (build + boot + "
                             "run) with cProfile and write a pstats dump "
                             "to PATH (default: next to --trace-out, else "
                             "repro-profile.pstats)")


def _resolve_profile_out(args: argparse.Namespace) -> Optional[str]:
    """Where the pstats dump goes; None when --profile was not given."""
    profile = getattr(args, "profile", None)
    if profile is None:
        return None
    if profile:
        return profile
    if getattr(args, "trace_out", None):
        return str(PurePath(args.trace_out).with_suffix(".pstats"))
    return "repro-profile.pstats"


def _build_cloud(args: argparse.Namespace, monitoring: bool = False) -> PiCloud:
    extra = {}
    if getattr(args, "topology", None) is not None:
        extra["topology"] = args.topology
        extra["fat_tree_k"] = args.fat_tree_k
    if getattr(args, "uplink_mbps", None) is not None:
        extra["uplink_bandwidth"] = mbit_per_s(args.uplink_mbps)
    config = PiCloudConfig(
        num_racks=args.racks, pis_per_rack=args.pis,
        routing=args.routing, seed=args.seed,
        start_monitoring=monitoring,
        **extra,
        budget=SimBudgetConfig(
            max_events=args.max_events,
            max_sim_time_s=args.max_sim_time,
            max_wall_s=args.wall_timeout,
        ),
        trace=TraceConfig(enabled=args.trace_out is not None),
        health=HealthConfig(enabled=args.self_healing),
        rate_model=RateModelConfig(
            model=getattr(args, "rate_model", "maxmin"),
            protocol=getattr(args, "cc_protocol", "reno"),
        ),
        profile_out=_resolve_profile_out(args),
    )
    cloud = PiCloud(config)
    # Remembered so main() can export the trace even when the command
    # aborts (e.g. a tripped run budget).
    args._cloud = cloud
    cloud.boot()
    return cloud


def _export_trace(args: argparse.Namespace) -> None:
    cloud = getattr(args, "_cloud", None)
    if cloud is None or getattr(args, "trace_out", None) is None:
        return
    if cloud.tracer is None:
        return
    path = cloud.write_trace(args.trace_out)
    print(f"trace written to {path}", file=sys.stderr)


def _export_profile(args: argparse.Namespace) -> None:
    cloud = getattr(args, "_cloud", None)
    if cloud is None or cloud.profiler is None:
        return
    path = cloud.write_profile()
    print(f"profile written to {path} "
          f"(inspect with: python -m pstats {path})", file=sys.stderr)


def cmd_info(args: argparse.Namespace) -> int:
    cloud = _build_cloud(args)
    description = cloud.describe()
    rows = [[key, value] for key, value in sorted(description.items())]
    print(format_table(["property", "value"], rows))
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    comparison = testbed_comparison(count=args.count)
    print(f"Table I: cost breakdown of a testbed consisting "
          f"{args.count} servers\n")
    print(format_table(
        ["", "Server", "Power", "Needs Cooling?"],
        [[row["testbed"], row["server"], row["power"], row["needs_cooling"]]
         for row in comparison.table()],
    ))
    print(f"\ncapex ratio {comparison.cost_ratio:.1f}x | "
          f"power ratio {comparison.power_ratio:.1f}x")
    return 0


def cmd_dashboard(args: argparse.Namespace) -> int:
    cloud = _build_cloud(args, monitoring=True)
    for image, name in (("webserver", "web-1"), ("database", "db-1")):
        signal = cloud.spawn(image, name=name)
        cloud.run_until_signal(signal)
        if not signal.ok:
            print(f"spawn of {name} failed: {signal.exception}",
                  file=sys.stderr)
            return 1
    cloud.run_for(args.runtime)
    print(cloud.dashboard().render())
    return 0


def cmd_campaign_run(args: argparse.Namespace) -> int:
    from repro.campaign import load_spec, run_campaign

    spec = load_spec(args.spec)
    out_dir = args.out or str(PurePath("campaign-out") / spec.name)
    result = run_campaign(
        spec, out_dir,
        workers=args.workers,
        baseline=args.baseline,
        dashboard=not args.no_dashboard,
        verbose=not args.quiet,
    )
    rows = [["campaign", spec.name],
            ["scenario", spec.scenario],
            ["grid cells", spec.cell_count],
            ["runs", len(result.records)],
            ["wall clock", f"{result.wall_s:.1f} s"]]
    for status, count in sorted(result.summary().items()):
        rows.append([f"runs {status}", count])
    rows.append(["result store", str(result.store.path)])
    if result.dashboard_path is not None:
        rows.append(["dashboard", str(result.dashboard_path)])
    print(format_table(["metric", "value"], rows))
    if not result.ok:
        print("campaign completed with failed runs (see the result store)",
              file=sys.stderr)
        return 1
    return 0


def cmd_campaign_report(args: argparse.Namespace) -> int:
    from repro.campaign import ResultStore, render_dashboard

    store = ResultStore.load(args.store)
    baseline = ResultStore.load(args.baseline) if args.baseline else None
    out = args.out or str(PurePath(str(store.directory)) / "dashboard.html")
    path = render_dashboard(store, out, baseline=baseline)
    ok = sum(1 for record in store if record.ok)
    print(f"{len(store)} runs ({ok} ok) -> {path}")
    return 0


def cmd_scale(args: argparse.Namespace) -> int:
    """The scale benchmark, unsharded or on the sharded kernel.

    ``--shards 1`` (the default) runs the exact single-kernel
    :func:`~repro.campaign.scenarios.measure_scale` path --
    byte-identical to every previous release.  ``--shards N`` runs
    per-pod shard kernels under conservative time sync with the control
    plane as shard 0.  ``--profile`` works for both: with shards, each
    worker process profiles itself and the dumps are merged with the
    parent's coordinator profile into one pstats file.
    """
    import cProfile
    import tempfile

    from repro.campaign.scenarios import (
        SCALES,
        measure_scale,
        measure_scale_sharded,
    )

    if args.nodes not in SCALES:
        print(f"unknown scale {args.nodes}; known: {sorted(SCALES)}",
              file=sys.stderr)
        return 2

    profile_out = _resolve_profile_out(args)
    sharded = args.shards > 1
    profile_dir = None
    parent_profiler = None
    if profile_out is not None:
        parent_profiler = cProfile.Profile()
        if sharded:
            profile_dir = tempfile.mkdtemp(prefix="repro-shard-profile-")

    try:
        if parent_profiler is not None:
            parent_profiler.enable()
        if sharded:
            result = measure_scale_sharded(
                args.nodes, shards=args.shards, seed=args.seed,
                pairs=args.pairs, processes=not args.inline,
                trace=args.trace_out is not None,
                profile_dir=profile_dir,
            )
        else:
            result = measure_scale(args.nodes, incremental=True,
                                   seed=args.seed, pairs=args.pairs)
    finally:
        if parent_profiler is not None:
            parent_profiler.disable()

    spans = result.pop("spans", None)
    if args.trace_out is not None and spans is not None:
        from repro.trace.export import write_span_dicts_jsonl

        path = write_span_dicts_jsonl(spans, args.trace_out)
        print(f"trace written to {path}", file=sys.stderr)

    shard_paths = result.pop("profile_paths", {})
    if profile_out is not None:
        from repro.sim.shard import merge_profiles

        parent_dump = profile_out + ".parent"
        parent_profiler.dump_stats(parent_dump)
        merged = merge_profiles(
            [parent_dump] + [shard_paths[sid] for sid in sorted(shard_paths)],
            profile_out,
        )
        import os

        os.unlink(parent_dump)
        print(f"profile written to {merged} (parent + "
              f"{len(shard_paths)} shard workers merged; inspect with: "
              f"python -m pstats {merged})", file=sys.stderr)

    rows = [[key, result[key]] for key in sorted(result)
            if not isinstance(result[key], dict)]
    print(format_table(["metric", "value"], rows))
    return 0


def cmd_storm(args: argparse.Namespace) -> int:
    if args.racks < 2:
        print("storm needs at least 2 racks", file=sys.stderr)
        return 2
    cloud = _build_cloud(args)
    result = elephant_storm(cloud, flows=args.flows,
                            size_bytes=args.mb * 1e6)
    print(format_table(
        ["metric", "value"],
        [["routing", args.routing],
         ["flows", args.flows],
         ["size each", f"{args.mb} MB"],
         ["completion", f"{result['completion_s']:.2f} s"],
         ["failed", result["failed"]],
         ["aggregation roots used", ", ".join(result["roots_used"])],
         ["mean throughput", f"{result['mean_throughput'] / 1e6:.2f} MB/s"]],
    ))
    return 0


def cmd_load(args: argparse.Namespace) -> int:
    cloud = _build_cloud(args)
    for index in range(args.replicas):
        cloud.spawn_and_wait("webserver", name=f"{args.service}{index}",
                             group=args.service)
    rerouter = None
    if args.te:
        if cloud.controller is None:
            print("--te needs an SDN routing mode (--routing sdn-*)",
                  file=sys.stderr)
            return 2
        from repro.netsim.sdn import ElephantRerouter

        rerouter = ElephantRerouter(
            cloud.sim, cloud.network, cloud.controller,
            interval=0.5, congestion_threshold=0.7, min_flow_bytes=1e5,
        )
    service = Service(
        args.service,
        profile=ServiceProfile(
            response_bytes=args.response_kib * 1024.0,
            requests_per_session_per_s=args.request_rate,
            session_duration_s=args.session_s,
        ),
        slo=SloObjective(threshold_s=args.slo_ms / 1e3,
                         objective=args.objective),
    )
    if args.crowd_peak is not None:
        arrivals = FlashCrowdArrivals(
            base_rate_per_s=args.rate, peak_rate_per_s=args.crowd_peak,
            start_s=args.crowd_start,
        )
    else:
        arrivals = PoissonArrivals(args.rate)
    injector = None
    if args.mtbf is not None:
        import random

        from repro.faults import MtbfFaultInjector

        injector = MtbfFaultInjector(
            cloud, rng=random.Random(args.seed),
            node_mtbf_s=args.mtbf, mttr_s=args.mttr,
            duration_s=args.duration,
        )
    engine = LoadEngine(cloud, [service], arrivals)
    report = engine.run(args.duration)
    if rerouter is not None:
        rerouter.stop()
    if injector is not None:
        injector.stop()
    print(report.format())
    fleet = report.fleet_summary()
    _, worst = report.worst_burn()
    rows = [
        ["routing", args.routing + (" + TE rerouter" if args.te else "")],
        ["peak concurrent sessions",
         f"{report.peak_concurrent_sessions:,.0f}"],
        ["epochs", report.epochs],
        ["fleet p50", f"{fleet.p50 * 1e3:.1f} ms"],
        ["fleet p99", f"{fleet.p99 * 1e3:.1f} ms"],
        ["fleet p999", f"{fleet.p999 * 1e3:.1f} ms"],
        ["fleet error rate", f"{report.fleet_error_rate():.2e}"],
        ["worst SLO burn", f"{worst:.2f}x"],
        ["kernel events", cloud.sim.events_executed],
    ]
    if args.rate_model == "cc":
        queue = cloud.network.queue_metrics()
        rows.append(["rate model", f"cc/{args.cc_protocol}"])
        rows.append(["queue depth p99",
                     f"{queue['queue_depth_p99'] / 1024.0:.1f} KiB"])
        rows.append(["ECN mark fraction", f"{queue['ecn_mark_frac']:.3f}"])
        rows.append(["queue drops", f"{queue['dropped_bytes']:,.0f} B"])
    if injector is not None:
        rows.append(["node faults injected", sum(
            1 for e in injector.log if e.kind == "node-fail"
        )])
        rows.append(["node repairs", sum(
            1 for e in injector.log if e.kind == "node-repair"
        )])
        if cloud.pimaster is not None and cloud.pimaster.recovery is not None:
            rows.append(["containers evacuated",
                         cloud.pimaster.recovery.containers_evacuated])
            rows.append(["containers respawned",
                         cloud.pimaster.recovery.containers_respawned])
    print()
    print(format_table(["metric", "value"], rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PiCloud: a scale model of the Glasgow Raspberry Pi Cloud",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    info = commands.add_parser("info", help="print the built architecture")
    _add_cloud_arguments(info)
    info.set_defaults(handler=cmd_info)

    table1 = commands.add_parser("table1", help="regenerate the paper's Table I")
    table1.add_argument("--count", type=int, default=56,
                        help="machines per testbed (paper: 56)")
    table1.set_defaults(handler=cmd_table1)

    dashboard = commands.add_parser(
        "dashboard", help="boot, spawn demo containers, print the panel"
    )
    _add_cloud_arguments(dashboard)
    dashboard.add_argument("--runtime", type=float, default=30.0,
                           help="simulated seconds to run before the snapshot")
    dashboard.set_defaults(handler=cmd_dashboard)

    scale = commands.add_parser(
        "scale",
        help="scale benchmark, optionally on the sharded parallel kernel "
             "(docs/performance.md)",
    )
    scale.add_argument("--nodes", type=int, default=224,
                       help="cloud size; must be a known benchmark scale")
    scale.add_argument("--shards", type=int, default=1,
                       help="pod shard count (1 = the exact unsharded "
                            "single-kernel path; N>1 = per-pod kernels "
                            "under conservative time sync)")
    scale.add_argument("--pairs", type=int, default=None,
                       help="chatty pair count (default: per-scale)")
    scale.add_argument("--seed", type=int, default=None,
                       help="RNG master seed (default: the node count)")
    scale.add_argument("--inline", action="store_true",
                       help="run shard kernels in-process instead of "
                            "forked workers (debugging)")
    scale.add_argument("--trace-out", type=str, default=None, metavar="PATH",
                       help="write the (shard-tagged, merged) span trace "
                            "to PATH as JSONL; sharded runs only")
    scale.add_argument("--profile", nargs="?", const="", default=None,
                       metavar="PATH",
                       help="profile with cProfile; per-shard worker "
                            "profiles are merged with the parent's into "
                            "one pstats dump at PATH")
    scale.set_defaults(handler=cmd_scale)

    storm = commands.add_parser(
        "storm", help="inter-rack elephant storm (experiment C3 workload)"
    )
    _add_cloud_arguments(storm)
    storm.add_argument("--flows", type=int, default=6)
    storm.add_argument("--mb", type=float, default=10.0,
                       help="size of each elephant in MB")
    storm.set_defaults(handler=cmd_storm)

    load = commands.add_parser(
        "load",
        help="session-level user load with SLO accounting (docs/load.md)",
    )
    _add_cloud_arguments(load)
    load.add_argument("--topology", choices=("multi-root-tree", "fat-tree"),
                      default=None, help="fabric topology (default: config)")
    load.add_argument("--fat-tree-k", type=int, default=4,
                      help="fat-tree arity when --topology fat-tree")
    load.add_argument("--uplink-mbps", type=float, default=None,
                      help="uplink bandwidth in Mb/s (default: 1000)")
    load.add_argument("--duration", type=float, default=60.0,
                      help="simulated seconds of load")
    load.add_argument("--rate", type=float, default=50.0,
                      help="baseline session arrivals per second")
    load.add_argument("--crowd-peak", type=float, default=None, metavar="RATE",
                      help="flash crowd peak arrival rate (sessions/s); "
                           "omit for steady Poisson arrivals")
    load.add_argument("--crowd-start", type=float, default=10.0,
                      help="flash crowd start, seconds into the run")
    load.add_argument("--service", default="web",
                      help="service/placement-group name")
    load.add_argument("--replicas", type=int, default=8,
                      help="webserver replicas to spawn")
    load.add_argument("--request-rate", type=float, default=0.2,
                      help="requests per session per second")
    load.add_argument("--session-s", type=float, default=60.0,
                      help="mean session duration (s)")
    load.add_argument("--response-kib", type=float, default=8.0,
                      help="response size (KiB)")
    load.add_argument("--slo-ms", type=float, default=250.0,
                      help="SLO latency threshold (ms)")
    load.add_argument("--objective", type=float, default=0.999,
                      help="SLO objective fraction (default 99.9%%)")
    load.add_argument("--mtbf", type=float, default=None, metavar="SECONDS",
                      help="inject node faults during the load run with "
                           "this exponential mean time between failures "
                           "(pair with --self-healing to watch the "
                           "recovery plane absorb them)")
    load.add_argument("--mttr", type=float, default=60.0, metavar="SECONDS",
                      help="mean time to repair for --mtbf node faults")
    load.add_argument("--te", action="store_true",
                      help="run the elephant-rerouter TE app alongside "
                           "the SDN controller")
    load.set_defaults(handler=cmd_load)

    campaign = commands.add_parser(
        "campaign",
        help="declarative experiment campaigns (see docs/campaigns.md)",
    )
    campaign_commands = campaign.add_subparsers(
        dest="campaign_command", required=True
    )

    campaign_run = campaign_commands.add_parser(
        "run", help="expand a spec's grid and run it across workers"
    )
    campaign_run.add_argument("spec", help="campaign spec (.yaml/.json)")
    campaign_run.add_argument("--out", default=None, metavar="DIR",
                              help="output directory (default: "
                                   "campaign-out/<campaign-name>)")
    campaign_run.add_argument("--workers", type=int, default=None,
                              help="worker processes (default: from spec)")
    campaign_run.add_argument("--baseline", default=None, metavar="STORE",
                              help="baseline result store for dashboard "
                                   "regression deltas")
    campaign_run.add_argument("--no-dashboard", action="store_true",
                              help="skip rendering dashboard.html")
    campaign_run.add_argument("--quiet", action="store_true",
                              help="suppress per-run progress lines")
    campaign_run.set_defaults(handler=cmd_campaign_run)

    campaign_report = campaign_commands.add_parser(
        "report", help="render a dashboard from an existing result store"
    )
    campaign_report.add_argument(
        "store", help="result store: directory, results.jsonl, or .sqlite"
    )
    campaign_report.add_argument("--out", default=None, metavar="PATH",
                                 help="dashboard path (default: "
                                      "<store>/dashboard.html)")
    campaign_report.add_argument("--baseline", default=None, metavar="STORE",
                                 help="baseline store for regression deltas")
    campaign_report.set_defaults(handler=cmd_campaign_report)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except SimBudgetExceeded as exc:
        print("simulation aborted: run budget exceeded", file=sys.stderr)
        if exc.snapshot is not None:
            print(exc.snapshot.describe(), file=sys.stderr)
        return 3
    except PiCloudError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        _export_trace(args)
        _export_profile(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
