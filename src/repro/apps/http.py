"""Lightweight HTTP: the paper's "lightweight httpd servers" (§IV).

The server lives in a container: per-request CPU cost is charged to the
container's cgroup (so a noisy co-tenant stretches service time) and the
response crosses the fabric from the container's IP (so placement
decides whether it stays on the ToR or crosses the aggregation layer).

Clients come in the two canonical flavours:

* **closed-loop** -- N workers, each send -> wait -> think; models a fixed
  user population.
* **open-loop** -- Poisson arrivals regardless of completions; models
  internet-facing load and exposes queueing collapse.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.errors import PiCloudError
from repro.hostos.netstack import Message, NetStack
from repro.sim.kernel import Simulator
from repro.sim.process import AllOf, Signal, Timeout
from repro.telemetry.series import Counter, TimeSeries
from repro.units import kib, mcycles
from repro.virt.container import Container, ContainerState

HTTP_PORT = 80
# Service cost: base request parsing plus per-KiB response rendering.
DEFAULT_BASE_CYCLES = mcycles(5)
DEFAULT_CYCLES_PER_KIB = mcycles(0.5)


class HttpServerApp:
    """A static-content httpd inside a container."""

    def __init__(
        self,
        container: Container,
        port: int = HTTP_PORT,
        base_cycles: float = DEFAULT_BASE_CYCLES,
        cycles_per_kib: float = DEFAULT_CYCLES_PER_KIB,
        default_response_bytes: int = kib(16),
    ) -> None:
        if not container.is_running:
            raise PiCloudError(
                f"container {container.name!r} must be running to serve HTTP"
            )
        self.container = container
        self.sim = container.runtime.sim
        self.port = port
        self.base_cycles = base_cycles
        self.cycles_per_kib = cycles_per_kib
        self.default_response_bytes = default_response_bytes
        self.requests_served = Counter(self.sim, f"{container.name}.http.requests")
        self.service_times = TimeSeries(f"{container.name}.http.service")
        container.app = self
        self._inbox = container.listen(port)
        self._stopped = False
        self._process = self.sim.process(
            self._serve(), name=f"httpd:{container.name}"
        )

    def stop(self) -> None:
        self._stopped = True
        if self.container.state in (ContainerState.RUNNING, ContainerState.FROZEN):
            self.container.runtime.kernel.netstack.close(
                self.port, ip=self.container.ip
            )
        self._process.interrupt("httpd stopped")

    def _serve(self):
        while not self._stopped:
            message: Message = yield self._inbox.get()
            self.sim.process(
                self._handle(message), name=f"httpd:{self.container.name}:req"
            )

    def _handle(self, message: Message):
        start = self.sim.now
        request = message.payload or {}
        response_bytes = int(request.get("response_bytes", self.default_response_bytes))
        cycles = self.base_cycles + self.cycles_per_kib * (response_bytes / kib(1))
        # CPU work inside the container (frozen/stopped container drops it).
        try:
            yield self.container.run(cycles, name="http-request")
        except Exception:
            return
        try:
            yield self.container.runtime.kernel.netstack.reply(
                message,
                {"status": 200, "path": request.get("path", "/")},
                size=response_bytes,
                tag="http-response",
            )
        except Exception:
            return  # client went away
        self.requests_served.add()
        self.service_times.record(self.sim.now, self.sim.now - start)


class HttpClientApp:
    """Load generator aimed at one HTTP server address."""

    def __init__(
        self,
        netstack: NetStack,
        server_ip: str,
        server_port: int = HTTP_PORT,
        request_bytes: int = 512,
        response_bytes: int = kib(16),
        rng: Optional[random.Random] = None,
        src_ip: Optional[str] = None,
    ) -> None:
        self.netstack = netstack
        self.sim = netstack.sim
        self.server_ip = server_ip
        self.server_port = server_port
        self.request_bytes = request_bytes
        self.response_bytes = response_bytes
        self.rng = rng or random.Random(0)
        self.src_ip = src_ip
        self.latencies = TimeSeries("http.client.latency")
        self.errors = Counter(self.sim, "http.client.errors")
        self.completed = Counter(self.sim, "http.client.completed")

    # -- one request ----------------------------------------------------------

    def fetch(self, path: str = "/") -> Signal:
        """Issue a single GET; Signal -> latency seconds."""
        done = Signal(self.sim, name="http.fetch")
        self.sim.process(self._fetch(path, done), name="http.fetch")
        return done

    def _fetch(self, path: str, done: Signal):
        start = self.sim.now
        reply_ip = self.src_ip or self.netstack.primary_ip
        port = self.netstack.ephemeral_port()
        inbox = self.netstack.listen(port, ip=reply_ip)
        try:
            try:
                yield self.netstack.send(
                    self.server_ip, self.server_port,
                    {"path": path, "response_bytes": self.response_bytes},
                    size=self.request_bytes,
                    src_ip=reply_ip, src_port=port, tag="http-request",
                )
                yield inbox.get()
            except Exception as exc:
                self.errors.add()
                done.fail(exc if isinstance(exc, PiCloudError) else
                          PiCloudError(str(exc)))
                return
            latency = self.sim.now - start
            self.latencies.record(self.sim.now, latency)
            self.completed.add()
            done.succeed(latency)
        finally:
            self.netstack.close(port, ip=reply_ip)

    # -- closed loop --------------------------------------------------------------

    def run_closed_loop(
        self,
        workers: int,
        duration_s: float,
        think_time_s: float = 0.1,
    ) -> Signal:
        """N users: request -> wait -> think, for ``duration_s``."""
        if workers < 1:
            raise ValueError("need at least one worker")
        done = Signal(self.sim, name="http.closed-loop")
        deadline = self.sim.now + duration_s

        def worker(index: int):
            while self.sim.now < deadline:
                try:
                    yield self.fetch(f"/w{index}")
                except Exception:
                    yield Timeout(self.sim, min(1.0, think_time_s or 1.0))
                    continue
                if think_time_s > 0:
                    think = self.rng.expovariate(1.0 / think_time_s)
                    yield Timeout(self.sim, think)

        processes = [
            self.sim.process(worker(i), name=f"http.worker{i}")
            for i in range(workers)
        ]

        def waiter():
            yield AllOf(self.sim, processes)
            done.succeed(self.summary())

        self.sim.process(waiter(), name="http.closed-loop")
        return done

    # -- open loop ------------------------------------------------------------------

    def run_open_loop(self, rate_per_s: float, duration_s: float) -> Signal:
        """Poisson arrivals at ``rate_per_s`` for ``duration_s``."""
        if rate_per_s <= 0:
            raise ValueError("rate must be positive")
        done = Signal(self.sim, name="http.open-loop")
        deadline = self.sim.now + duration_s

        def generator():
            pending = []
            while self.sim.now < deadline:
                pending.append(self.fetch("/"))
                yield Timeout(self.sim, self.rng.expovariate(rate_per_s))
            # Drain: wait for outstanding requests (ignore failures).
            for signal in pending:
                if not signal.triggered:
                    try:
                        yield signal
                    except Exception:
                        pass
            done.succeed(self.summary())

        self.sim.process(generator(), name="http.open-loop")
        return done

    def summary(self) -> dict[str, float]:
        from repro.telemetry.stats import summarize

        stats = summarize(self.latencies.values)
        return {
            "completed": self.completed.total,
            "errors": self.errors.total,
            "latency_mean": stats.mean,
            "latency_p50": stats.p50,
            "latency_p99": stats.p99,
        }
