"""Name-based senders: the §III "IP-less routing" study apparatus.

"We are researching IP-less routing in order to support more flexible
and efficient migration."  The pain being solved: when a VM's address is
bound to its subnet, migration re-addresses it and every peer holding
the old address breaks until it re-resolves.  Two senders capture the
design space:

* :class:`CachedIpSender` -- the conventional scheme: resolve the name
  through DNS once, cache the address for ``cache_ttl_s``, send to the
  cached address.  Fast, but stale after an address change.
* :class:`FlatNameSender` -- the IP-less scheme: every message resolves
  the *current* location through the (logically centralised) directory,
  paying a small per-message resolution latency, and therefore follows
  migrations immediately.

Both count delivery failures so experiments can quantify the outage
window each scheme suffers across migrations.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from repro.errors import NameError_, PiCloudError
from repro.hostos.netstack import NetStack
from repro.mgmt.dns import DnsServer
from repro.sim.process import Signal, Timeout
from repro.telemetry.series import Counter

# Directory lookup cost for the flat scheme (a small control-plane RPC).
DEFAULT_RESOLVE_LATENCY_S = 0.5e-3


class _SenderBase:
    def __init__(self, netstack: NetStack, dns: DnsServer) -> None:
        self.netstack = netstack
        self.sim = netstack.sim
        self.dns = dns
        self.sent = Counter(self.sim, "named.sent")
        self.delivered = Counter(self.sim, "named.delivered")
        self.failed = Counter(self.sim, "named.failed")

    def _transmit(self, done: Signal, ip: str, port: int, payload: Any,
                  size: int):
        try:
            message = yield self.netstack.send(ip, port, payload, size)
        except Exception as exc:
            self.failed.add()
            done.fail(exc if isinstance(exc, PiCloudError) else PiCloudError(str(exc)))
            return None
        self.delivered.add()
        done.succeed(message)
        return message

    @property
    def failure_rate(self) -> float:
        return self.failed.total / self.sent.total if self.sent.total else 0.0


class CachedIpSender(_SenderBase):
    """Resolve once, cache for ``cache_ttl_s``, send to the cached IP."""

    def __init__(self, netstack: NetStack, dns: DnsServer,
                 cache_ttl_s: float = 60.0) -> None:
        super().__init__(netstack, dns)
        if cache_ttl_s <= 0:
            raise ValueError("cache TTL must be positive")
        self.cache_ttl_s = cache_ttl_s
        self._cache: dict[str, Tuple[str, float]] = {}
        self.cache_hits = 0
        self.resolutions = 0

    def _resolve(self, name: str) -> str:
        cached = self._cache.get(name)
        if cached is not None and self.sim.now - cached[1] < self.cache_ttl_s:
            self.cache_hits += 1
            return cached[0]
        ip = self.dns.resolve(name)  # raises NameError_ on NXDOMAIN
        self.resolutions += 1
        self._cache[name] = (ip, self.sim.now)
        return ip

    def send(self, name: str, port: int, payload: Any, size: int) -> Signal:
        done = Signal(self.sim, name=f"cached-send:{name}")
        self.sent.add()

        def run():
            try:
                ip = self._resolve(name)
            except NameError_ as exc:
                self.failed.add()
                done.fail(exc)
                return
            result = yield from self._transmit(done, ip, port, payload, size)
            if result is None:
                # Delivery failed: drop the (likely stale) cache entry so
                # the *next* send re-resolves -- standard client behaviour.
                self._cache.pop(name, None)

        self.sim.process(run(), name=f"cached-send:{name}")
        return done


class FlatNameSender(_SenderBase):
    """Resolve the current location on *every* send (IP-less routing)."""

    def __init__(self, netstack: NetStack, dns: DnsServer,
                 resolve_latency_s: float = DEFAULT_RESOLVE_LATENCY_S) -> None:
        super().__init__(netstack, dns)
        if resolve_latency_s < 0:
            raise ValueError("resolve latency must be >= 0")
        self.resolve_latency_s = resolve_latency_s
        self.resolutions = 0

    def send(self, name: str, port: int, payload: Any, size: int) -> Signal:
        done = Signal(self.sim, name=f"flat-send:{name}")
        self.sent.add()

        def run():
            if self.resolve_latency_s > 0:
                yield Timeout(self.sim, self.resolve_latency_s)
            try:
                ip = self.dns.resolve(name)
            except NameError_ as exc:
                self.failed.add()
                done.fail(exc)
                return
            self.resolutions += 1
            yield from self._transmit(done, ip, port, payload, size)

        self.sim.process(run(), name=f"flat-send:{name}")
        return done
