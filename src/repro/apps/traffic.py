"""Traffic pattern primitives.

DC traffic is "constantly changing and generally unpredictable" (§I,
citing Gill et al. and VL2); the standard approximation the measurement
literature supports is Poisson-ish arrivals with heavy-tailed flow sizes
(a sea of mice, a few elephants) plus ON/OFF burstiness.  All randomness
comes from caller-supplied ``random.Random`` streams so experiments are
reproducible.

The sampling primitives (``poisson_wait``, ``pareto_size``) live in
:mod:`repro.load.arrivals` -- one implementation shared between the
per-event traffic sources here and the session-level load engine -- and
are re-exported for compatibility.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.load.arrivals import pareto_size, poisson_wait
from repro.sim.kernel import Simulator
from repro.sim.process import Timeout
from repro.units import kib, mib

__all__ = ["OnOffTrafficSource", "dc_flow_size", "pareto_size", "poisson_wait"]


def dc_flow_size(rng: random.Random) -> int:
    """The mice/elephants mix measured in DC traffic studies.

    ~80% mice under 10 KB (queries, control), ~15% mid-size (KB-MB), and
    ~5% elephants (backup/shuffle traffic, MBs to tens of MB).
    """
    roll = rng.random()
    if roll < 0.80:
        return int(rng.uniform(200, kib(10)))
    if roll < 0.95:
        return int(rng.uniform(kib(10), mib(1)))
    return int(min(pareto_size(rng, alpha=1.1, minimum=mib(1)), mib(64)))


class OnOffTrafficSource:
    """Bursty sender: exponential ON/OFF periods, fixed rate while ON.

    During an ON period, messages of ``message_bytes`` are emitted back to
    back at ``rate_per_s``; OFF periods are silent.  ``send`` is a callback
    returning a Signal (e.g. ``lambda: stack.send(...)``).
    """

    def __init__(
        self,
        sim: Simulator,
        rng: random.Random,
        send: Callable[[], object],
        on_mean_s: float = 1.0,
        off_mean_s: float = 1.0,
        rate_per_s: float = 10.0,
        duration_s: Optional[float] = None,
    ) -> None:
        if on_mean_s <= 0 or off_mean_s <= 0 or rate_per_s <= 0:
            raise ValueError("ON/OFF means and rate must be positive")
        self.sim = sim
        self.rng = rng
        self.send = send
        self.on_mean_s = on_mean_s
        self.off_mean_s = off_mean_s
        self.rate_per_s = rate_per_s
        self.duration_s = duration_s
        self.messages_sent = 0
        self.on_periods = 0
        self._stopped = False
        self._process = sim.process(self._run(), name="onoff-source")

    def stop(self) -> None:
        self._stopped = True
        self._process.interrupt("source stopped")

    def _run(self):
        deadline = (
            None if self.duration_s is None else self.sim.now + self.duration_s
        )
        while not self._stopped:
            if deadline is not None and self.sim.now >= deadline:
                return
            # ON period: send at the configured rate.
            self.on_periods += 1
            on_until = self.sim.now + self.rng.expovariate(1.0 / self.on_mean_s)
            while self.sim.now < on_until and not self._stopped:
                if deadline is not None and self.sim.now >= deadline:
                    return
                self.send()
                self.messages_sent += 1
                yield Timeout(self.sim, 1.0 / self.rate_per_s)
            # OFF period: silence.
            off = self.rng.expovariate(1.0 / self.off_mean_s)
            yield Timeout(self.sim, off)
