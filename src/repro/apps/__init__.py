"""Cloud application workloads: realistic traffic for the scale model.

"As a development environment, it permits reproduction of actual traffic
patterns with realistic Cloud applications" (§I) -- the paper names
lightweight httpd servers, databases and Hadoop (Fig. 3, §IV).  These
applications run *inside containers*: their CPU work goes through the
container's cgroup on the host scheduler, and their traffic crosses the
fabric from the container's bridged IP -- so the cross-layer couplings
the paper argues for are intrinsic, not scripted.

* :mod:`~repro.apps.traffic` -- arrival processes and flow-size
  distributions (Poisson, Pareto mice/elephants, ON/OFF bursts).
* :mod:`~repro.apps.http` -- a lighttpd-style server and closed/open-loop
  HTTP clients with latency accounting.
* :mod:`~repro.apps.kvstore` -- a key-value database with GET/PUT and
  persistence writes to the SD card.
* :mod:`~repro.apps.mapreduce` -- a Hadoop-style job: splits, map tasks,
  an all-to-all shuffle over the fabric, reduce tasks.
* :mod:`~repro.apps.threetier` -- the classic web -> app -> db service
  chain with per-tier latency breakdown.
"""

from repro.apps.http import HttpClientApp, HttpServerApp
from repro.apps.kvstore import KvClientApp, KeyValueStoreApp
from repro.apps.mapreduce import MapReduceJob, MapReduceReport
from repro.apps.threetier import ThreeTierService
from repro.apps.traffic import (
    OnOffTrafficSource,
    dc_flow_size,
    pareto_size,
    poisson_wait,
)

__all__ = [
    "HttpClientApp",
    "HttpServerApp",
    "KeyValueStoreApp",
    "KvClientApp",
    "MapReduceJob",
    "MapReduceReport",
    "OnOffTrafficSource",
    "ThreeTierService",
    "dc_flow_size",
    "pareto_size",
    "poisson_wait",
]
