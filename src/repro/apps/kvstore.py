"""A key-value database container (the Fig. 3 "Database" box).

GETs cost CPU; PUTs cost CPU plus a persistence write to the host's SD
card (inside the container's rootfs directory) and grow the container's
RSS through its cgroup -- so a write-heavy tenant physically squeezes
its co-tenants, the exact interference a cohabiting cloud exhibits.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.errors import PiCloudError
from repro.hostos.netstack import Message, NetStack
from repro.sim.process import AllOf, Signal, Timeout
from repro.telemetry.series import Counter, TimeSeries
from repro.units import kib, mcycles, mib
from repro.virt.container import Container, ContainerState

KV_PORT = 6379
GET_CYCLES = mcycles(1)
PUT_CYCLES = mcycles(2)
# RSS growth per stored byte (index + cache overhead), capped below.
MEMORY_PER_VALUE_BYTE = 0.1


class KeyValueStoreApp:
    """GET/PUT store with persistence and memory pressure."""

    def __init__(
        self,
        container: Container,
        port: int = KV_PORT,
        memory_cap_bytes: int = mib(20),
        persist: bool = True,
    ) -> None:
        if not container.is_running:
            raise PiCloudError(
                f"container {container.name!r} must be running to serve KV"
            )
        self.container = container
        self.sim = container.runtime.sim
        self.port = port
        self.memory_cap_bytes = memory_cap_bytes
        self.persist = persist
        self._store: Dict[str, int] = {}  # key -> value size
        self._memory_grown = 0
        self._data_file = f"{container.rootfs_path}.data"
        self.gets = Counter(self.sim, f"{container.name}.kv.gets")
        self.puts = Counter(self.sim, f"{container.name}.kv.puts")
        self.misses = Counter(self.sim, f"{container.name}.kv.misses")
        self.op_latencies = TimeSeries(f"{container.name}.kv.latency")
        container.app = self
        self._inbox = container.listen(port)
        self._stopped = False
        self._process = self.sim.process(self._serve(), name=f"kv:{container.name}")

    @property
    def keys_stored(self) -> int:
        return len(self._store)

    def stop(self) -> None:
        self._stopped = True
        if self.container.state in (ContainerState.RUNNING, ContainerState.FROZEN):
            self.container.runtime.kernel.netstack.close(
                self.port, ip=self.container.ip
            )
        self._process.interrupt("kv stopped")

    def _serve(self):
        while not self._stopped:
            message: Message = yield self._inbox.get()
            self.sim.process(self._handle(message), name=f"kv:{self.container.name}:op")

    def _grow_memory(self, value_bytes: int) -> None:
        grow = int(value_bytes * MEMORY_PER_VALUE_BYTE)
        if grow <= 0 or self._memory_grown + grow > self.memory_cap_bytes:
            return
        try:
            self.container.grow_memory(grow)
            self._memory_grown += grow
        except Exception:
            pass  # cgroup/host full: run from disk only

    def _handle(self, message: Message):
        start = self.sim.now
        op = message.payload or {}
        kind = op.get("op")
        key = op.get("key", "")
        kernel = self.container.runtime.kernel
        if kind == "put":
            value_bytes = int(op.get("value_bytes", kib(1)))
            try:
                yield self.container.run(PUT_CYCLES, name="kv-put")
            except Exception:
                return
            if self.persist:
                fs = kernel.filesystem
                if not fs.exists(self._data_file):
                    fs.create(self._data_file, 0)
                try:
                    fs.truncate(self._data_file, fs.stat(self._data_file).size + value_bytes)
                    yield kernel.machine.storage.write(value_bytes)
                except Exception:
                    yield kernel.netstack.reply(
                        message, {"status": "error", "reason": "disk-full"}, size=128
                    )
                    return
            fresh_key = key not in self._store
            self._store[key] = value_bytes
            if fresh_key:
                self._grow_memory(value_bytes)
            self.puts.add()
            yield kernel.netstack.reply(message, {"status": "ok"}, size=128)
        elif kind == "get":
            try:
                yield self.container.run(GET_CYCLES, name="kv-get")
            except Exception:
                return
            size = self._store.get(key)
            if size is None:
                self.misses.add()
                yield kernel.netstack.reply(
                    message, {"status": "miss", "key": key}, size=128
                )
            else:
                self.gets.add()
                yield kernel.netstack.reply(
                    message, {"status": "ok", "key": key}, size=128 + size
                )
        else:
            yield kernel.netstack.reply(
                message, {"status": "error", "reason": f"bad op {kind!r}"}, size=128
            )
        self.op_latencies.record(self.sim.now, self.sim.now - start)


class KvClientApp:
    """A workload of GET/PUT operations against one store."""

    def __init__(
        self,
        netstack: NetStack,
        server_ip: str,
        server_port: int = KV_PORT,
        rng: Optional[random.Random] = None,
        get_fraction: float = 0.8,
        value_bytes: int = kib(4),
        keyspace: int = 1000,
        src_ip: Optional[str] = None,
    ) -> None:
        if not (0.0 <= get_fraction <= 1.0):
            raise ValueError("get_fraction must be in [0, 1]")
        self.netstack = netstack
        self.sim = netstack.sim
        self.server_ip = server_ip
        self.server_port = server_port
        self.rng = rng or random.Random(0)
        self.get_fraction = get_fraction
        self.value_bytes = value_bytes
        self.keyspace = keyspace
        self.src_ip = src_ip
        self.latencies = TimeSeries("kv.client.latency")
        self.errors = Counter(self.sim, "kv.client.errors")
        self.completed = Counter(self.sim, "kv.client.completed")

    def op(self) -> Signal:
        """One randomly-chosen operation; Signal -> response payload."""
        done = Signal(self.sim, name="kv.op")
        self.sim.process(self._op(done), name="kv.op")
        return done

    def _op(self, done: Signal):
        start = self.sim.now
        key = f"k{self.rng.randrange(self.keyspace)}"
        if self.rng.random() < self.get_fraction:
            payload = {"op": "get", "key": key}
            size = 128
        else:
            payload = {"op": "put", "key": key, "value_bytes": self.value_bytes}
            size = 128 + self.value_bytes
        reply_ip = self.src_ip or self.netstack.primary_ip
        port = self.netstack.ephemeral_port()
        inbox = self.netstack.listen(port, ip=reply_ip)
        try:
            try:
                yield self.netstack.send(
                    self.server_ip, self.server_port, payload, size=size,
                    src_ip=reply_ip, src_port=port, tag="kv-op",
                )
                response = yield inbox.get()
            except Exception as exc:
                self.errors.add()
                done.fail(PiCloudError(str(exc)))
                return
            self.latencies.record(self.sim.now, self.sim.now - start)
            self.completed.add()
            done.succeed(response.payload)
        finally:
            self.netstack.close(port, ip=reply_ip)

    def run_closed_loop(self, workers: int, duration_s: float,
                        think_time_s: float = 0.05) -> Signal:
        done = Signal(self.sim, name="kv.closed-loop")
        deadline = self.sim.now + duration_s

        def worker():
            while self.sim.now < deadline:
                try:
                    yield self.op()
                except Exception:
                    pass
                if think_time_s > 0:
                    yield Timeout(self.sim, self.rng.expovariate(1.0 / think_time_s))

        processes = [self.sim.process(worker(), name="kv.worker") for _ in range(workers)]

        def waiter():
            yield AllOf(self.sim, processes)
            done.succeed({"completed": self.completed.total, "errors": self.errors.total})

        self.sim.process(waiter(), name="kv.closed-loop")
        return done
