"""A Hadoop-style MapReduce job across containers (Fig. 3 "Hadoop").

The job runs on a set of worker containers: input splits are read from
each mapper's SD card, map tasks burn container CPU, intermediate data
shuffles all-to-all across the fabric (the classic incast/elephant-mix
that stresses DC networks), and reducers burn CPU before writing output.

Phase timings come out of the underlying models, not parameters: slow SD
cards stretch the read phase, CPU contention stretches map/reduce, and
rack-locality of the workers decides how much shuffle crosses the
aggregation layer -- experiment C7's knobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import PiCloudError
from repro.sim.process import AllOf, Signal
from repro.telemetry.series import Counter
from repro.units import mib
from repro.virt.container import Container

SHUFFLE_PORT = 7000
# Map/reduce computational intensity: cycles per input byte.  ~10 cy/B on
# a 700 MHz ARM11 gives the paper's "compute-lite" workload profile.
DEFAULT_MAP_CYCLES_PER_BYTE = 10.0
DEFAULT_REDUCE_CYCLES_PER_BYTE = 8.0


@dataclass
class MapReduceReport:
    """What one job did, per phase."""

    input_bytes: int
    splits: int
    mappers: int
    reducers: int
    read_s: float = 0.0
    map_s: float = 0.0
    shuffle_s: float = 0.0
    reduce_s: float = 0.0
    total_s: float = 0.0
    shuffle_bytes: float = 0.0
    cross_host_shuffle_bytes: float = 0.0

    @property
    def phases(self) -> dict[str, float]:
        return {
            "read": self.read_s,
            "map": self.map_s,
            "shuffle": self.shuffle_s,
            "reduce": self.reduce_s,
        }


class MapReduceJob:
    """One job: coordinator logic over worker containers."""

    def __init__(
        self,
        workers: Sequence[Container],
        input_bytes: int,
        reducers: Optional[int] = None,
        split_bytes: int = mib(8),
        map_cycles_per_byte: float = DEFAULT_MAP_CYCLES_PER_BYTE,
        reduce_cycles_per_byte: float = DEFAULT_REDUCE_CYCLES_PER_BYTE,
        intermediate_ratio: float = 0.5,
        shuffle_port: int = SHUFFLE_PORT,
    ) -> None:
        if not workers:
            raise PiCloudError("a MapReduce job needs at least one worker")
        if any(not w.is_running for w in workers):
            raise PiCloudError("all MapReduce workers must be running containers")
        if input_bytes <= 0 or split_bytes <= 0:
            raise PiCloudError("input and split sizes must be positive")
        if not (0.0 <= intermediate_ratio <= 2.0):
            raise PiCloudError("intermediate_ratio out of range")
        self.workers = list(workers)
        self.sim = self.workers[0].runtime.sim
        self.input_bytes = input_bytes
        self.split_bytes = split_bytes
        self.reducer_count = min(reducers or len(self.workers), len(self.workers))
        self.map_cycles_per_byte = map_cycles_per_byte
        self.reduce_cycles_per_byte = reduce_cycles_per_byte
        self.intermediate_ratio = intermediate_ratio
        self.shuffle_port = shuffle_port
        self.bytes_shuffled = Counter(self.sim, "mr.shuffled")

    def run(self) -> Signal:
        """Execute the job; Signal -> :class:`MapReduceReport`."""
        done = Signal(self.sim, name="mapreduce.job")
        self.sim.process(self._run(done), name="mapreduce.job")
        return done

    # -- the job pipeline ---------------------------------------------------------

    def _splits(self) -> List[int]:
        full, rest = divmod(self.input_bytes, self.split_bytes)
        sizes = [self.split_bytes] * int(full)
        if rest:
            sizes.append(int(rest))
        return sizes

    def _run(self, done: Signal):
        start = self.sim.now
        report = MapReduceReport(
            input_bytes=self.input_bytes,
            splits=len(self._splits()),
            mappers=len(self.workers),
            reducers=self.reducer_count,
        )
        reducers = self.workers[: self.reducer_count]
        inboxes = [r.listen(self.shuffle_port) for r in reducers]
        try:
            # --- read phase: each mapper reads its splits from SD ---------
            phase_start = self.sim.now
            reads = []
            assignments: List[List[int]] = [[] for _ in self.workers]
            for index, size in enumerate(self._splits()):
                assignments[index % len(self.workers)].append(size)
            for worker, sizes in zip(self.workers, assignments):
                storage = worker.runtime.kernel.machine.storage
                for size in sizes:
                    reads.append(storage.read(size))
            if reads:
                yield AllOf(self.sim, reads)
            report.read_s = self.sim.now - phase_start

            # --- map phase: CPU inside each worker container --------------
            phase_start = self.sim.now
            maps = []
            for worker, sizes in zip(self.workers, assignments):
                volume = sum(sizes)
                if volume > 0:
                    maps.append(worker.run(
                        volume * self.map_cycles_per_byte, name="map-task"
                    ))
            if maps:
                yield AllOf(self.sim, maps)
            report.map_s = self.sim.now - phase_start

            # --- shuffle: all-to-all intermediate transfer ----------------
            phase_start = self.sim.now
            transfers = []
            for worker, sizes in zip(self.workers, assignments):
                intermediate = sum(sizes) * self.intermediate_ratio
                if intermediate <= 0:
                    continue
                portion = intermediate / self.reducer_count
                for reducer in reducers:
                    report.shuffle_bytes += portion
                    if reducer is worker:
                        continue  # local partition: no network
                    if reducer.host_id != worker.host_id:
                        report.cross_host_shuffle_bytes += portion
                    transfers.append(worker.send(
                        reducer.ip, self.shuffle_port,
                        {"from": worker.name}, size=int(portion),
                        tag="mr-shuffle",
                    ))
                    self.bytes_shuffled.add(portion)
            if transfers:
                yield AllOf(self.sim, transfers)
            report.shuffle_s = self.sim.now - phase_start

            # --- reduce phase ---------------------------------------------
            phase_start = self.sim.now
            reduce_volume = (
                self.input_bytes * self.intermediate_ratio / self.reducer_count
            )
            reduces = [
                reducer.run(
                    reduce_volume * self.reduce_cycles_per_byte, name="reduce-task"
                )
                for reducer in reducers
            ]
            yield AllOf(self.sim, reduces)
            report.reduce_s = self.sim.now - phase_start

            report.total_s = self.sim.now - start
            done.succeed(report)
        except Exception as exc:  # noqa: BLE001 - job failure surfaces
            done.fail(PiCloudError(f"MapReduce job failed: {exc}"))
        finally:
            for reducer in reducers:
                if reducer.is_running and reducer.ip is not None:
                    reducer.runtime.kernel.netstack.close(
                        self.shuffle_port, ip=reducer.ip
                    )
