"""A three-tier web service: web -> app -> database across containers.

The canonical cloud service shape: a front-end web container renders
pages, calling an application-logic container, which queries a key-value
database container.  Per-tier latency is recorded, so placement
experiments can see exactly where time goes when tiers land in different
racks (the §III "file management and migration" and locality questions).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import PiCloudError
from repro.hostos.netstack import Message
from repro.sim.process import Signal
from repro.telemetry.series import Counter, TimeSeries
from repro.units import kib, mcycles
from repro.virt.container import Container, ContainerState

WEB_PORT = 80
APP_PORT = 8800
DB_PORT = 6379

WEB_CYCLES = mcycles(3)
APP_CYCLES = mcycles(6)
DB_CYCLES = mcycles(1.5)


class _TierServer:
    """Internal: a tier that does CPU work then either calls on or replies."""

    def __init__(self, service: "ThreeTierService", container: Container,
                 port: int, cycles: float, downstream: Optional[str],
                 downstream_port: Optional[int], response_bytes: int) -> None:
        self.service = service
        self.container = container
        self.sim = container.runtime.sim
        self.port = port
        self.cycles = cycles
        self.downstream = downstream
        self.downstream_port = downstream_port
        self.response_bytes = response_bytes
        self.latencies = TimeSeries(f"{container.name}.tier.latency")
        self._inbox = container.listen(port)
        self._stopped = False
        self._process = self.sim.process(
            self._serve(), name=f"tier:{container.name}"
        )

    def stop(self) -> None:
        self._stopped = True
        if self.container.state in (ContainerState.RUNNING, ContainerState.FROZEN):
            self.container.runtime.kernel.netstack.close(
                self.port, ip=self.container.ip
            )
        self._process.interrupt("tier stopped")

    def _serve(self):
        while not self._stopped:
            message: Message = yield self._inbox.get()
            self.sim.process(self._handle(message),
                             name=f"tier:{self.container.name}:req")

    def _handle(self, message: Message):
        start = self.sim.now
        kernel = self.container.runtime.kernel
        try:
            yield self.container.run(self.cycles, name=f"tier-{self.port}")
        except Exception:
            return
        if self.downstream is not None:
            # RPC to the next tier, then relay its answer upstream.
            port = kernel.netstack.ephemeral_port()
            inbox = kernel.netstack.listen(port, ip=self.container.ip)
            try:
                try:
                    yield kernel.netstack.send(
                        self.downstream, self.downstream_port,
                        message.payload, size=kib(1),
                        src_ip=self.container.ip, src_port=port,
                        tag="tier-rpc",
                    )
                    yield inbox.get()
                except Exception:
                    return
            finally:
                kernel.netstack.close(port, ip=self.container.ip)
        try:
            yield kernel.netstack.reply(
                message, {"status": 200}, size=self.response_bytes,
                tag="tier-response",
            )
        except Exception:
            return
        self.latencies.record(self.sim.now, self.sim.now - start)


class ThreeTierService:
    """Deploy the web/app/db chain over three running containers."""

    def __init__(
        self,
        web: Container,
        app: Container,
        db: Container,
        page_bytes: int = kib(32),
    ) -> None:
        for tier in (web, app, db):
            if not tier.is_running:
                raise PiCloudError(f"tier container {tier.name!r} is not running")
        self.sim = web.runtime.sim
        self.web = web
        self.app = app
        self.db = db
        self.db_tier = _TierServer(
            self, db, DB_PORT, DB_CYCLES, None, None, response_bytes=kib(4)
        )
        self.app_tier = _TierServer(
            self, app, APP_PORT, APP_CYCLES, db.ip, DB_PORT, response_bytes=kib(8)
        )
        self.web_tier = _TierServer(
            self, web, WEB_PORT, WEB_CYCLES, app.ip, APP_PORT,
            response_bytes=page_bytes,
        )
        self.requests = Counter(self.sim, "threetier.requests")

    def stop(self) -> None:
        for tier in (self.web_tier, self.app_tier, self.db_tier):
            tier.stop()

    @property
    def entry_ip(self) -> str:
        return self.web.ip

    @property
    def entry_port(self) -> int:
        return WEB_PORT

    def tier_latency_breakdown(self) -> dict[str, float]:
        """Mean in-tier latency per tier (seconds)."""
        def mean(series: TimeSeries) -> float:
            return sum(series.values) / len(series) if len(series) else 0.0

        return {
            "web": mean(self.web_tier.latencies),
            "app": mean(self.app_tier.latencies),
            "db": mean(self.db_tier.latencies),
        }

    def spans_racks(self) -> bool:
        """Do the tiers live in more than one rack?"""
        racks = {
            t.runtime.kernel.machine.rack for t in (self.web, self.app, self.db)
        }
        return len(racks) > 1
