"""Trace capture and model calibration: closing the testbed->simulator loop.

§IV: "We also anticipate that results from testbed experiments can be fed
back into the improvement of Cloud simulation and modelling processes."
This module is that feedback path:

1. :class:`TraceRecorder` captures every completed flow on the fabric
   (start time, endpoints, size, duration) during a real workload run.
2. :class:`FittedWorkload` fits a generative model to the trace -- the
   empirical flow-size distribution (inverse-CDF sampling), the Poisson
   arrival rate, and the src/dst traffic matrix.
3. :meth:`FittedWorkload.replay` drives any fabric (same cloud, a bigger
   cloud, a different topology) with synthetic traffic drawn from the
   fitted model -- the "realistic traffic patterns" a standalone
   simulator lacks.

Fidelity of the fit is checked by :func:`compare_link_profiles`, which
contrasts per-link mean utilisation between the original and replayed
runs.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.netsim.fabric import FlowState, FlowTransfer, Network
from repro.sim.process import Timeout


@dataclass(frozen=True)
class FlowRecord:
    """One captured flow."""

    started_at: float
    completed_at: float
    src: str
    dst: str
    size: float
    duration: float
    tag: str
    ok: bool


class TraceRecorder:
    """Subscribes to a fabric and captures completed flows."""

    def __init__(self, network: Network, include_failed: bool = False) -> None:
        self.network = network
        self.include_failed = include_failed
        self.records: List[FlowRecord] = []
        self._attached = False
        self.attach()

    def attach(self) -> None:
        if not self._attached:
            self.network.flow_observers.append(self._observe)
            self._attached = True

    def detach(self) -> None:
        if self._attached:
            self.network.flow_observers.remove(self._observe)
            self._attached = False

    def _observe(self, flow: FlowTransfer) -> None:
        ok = flow.state is FlowState.DONE
        if not ok and not self.include_failed:
            return
        self.records.append(FlowRecord(
            started_at=flow.requested_at,
            completed_at=flow.completed_at if ok else self.network.sim.now,
            src=flow.src,
            dst=flow.dst,
            size=flow.size,
            duration=flow.duration if ok else 0.0,
            tag=flow.tag,
            ok=ok,
        ))

    def __len__(self) -> int:
        return len(self.records)

    @property
    def span_s(self) -> float:
        """Time between the first and last captured flow starts."""
        if len(self.records) < 2:
            return 0.0
        starts = [r.started_at for r in self.records]
        return max(starts) - min(starts)


class FittedWorkload:
    """A generative traffic model fitted to a trace."""

    def __init__(
        self,
        sizes: List[float],
        arrival_rate_per_s: float,
        matrix: Dict[Tuple[str, str], float],
    ) -> None:
        if not sizes:
            raise ValueError("cannot fit a workload to zero flows")
        if arrival_rate_per_s <= 0:
            raise ValueError("arrival rate must be positive")
        if not matrix:
            raise ValueError("empty traffic matrix")
        self.sizes = sorted(sizes)
        self.arrival_rate_per_s = arrival_rate_per_s
        # Normalised (src, dst) -> probability.
        total = sum(matrix.values())
        self.matrix = {pair: weight / total for pair, weight in matrix.items()}
        self._pairs = sorted(self.matrix)
        self._cumulative: List[float] = []
        acc = 0.0
        for pair in self._pairs:
            acc += self.matrix[pair]
            self._cumulative.append(acc)

    # -- fitting --------------------------------------------------------------

    @classmethod
    def from_trace(cls, trace: TraceRecorder,
                   min_size: float = 1.0) -> "FittedWorkload":
        """Fit sizes, rate and matrix to the recorder's capture."""
        usable = [r for r in trace.records if r.ok and r.size >= min_size]
        if len(usable) < 2:
            raise ValueError(f"need >= 2 usable flows, have {len(usable)}")
        span = trace.span_s or 1.0
        matrix: Dict[Tuple[str, str], float] = {}
        for record in usable:
            key = (record.src, record.dst)
            matrix[key] = matrix.get(key, 0.0) + 1.0
        return cls(
            sizes=[r.size for r in usable],
            arrival_rate_per_s=len(usable) / span,
            matrix=matrix,
        )

    # -- sampling --------------------------------------------------------------

    def sample_size(self, rng: random.Random) -> float:
        """Inverse-CDF draw from the empirical size distribution, with
        linear interpolation between order statistics."""
        position = rng.random() * (len(self.sizes) - 1)
        low = int(position)
        frac = position - low
        if low + 1 >= len(self.sizes):
            return self.sizes[-1]
        return self.sizes[low] * (1 - frac) + self.sizes[low + 1] * frac

    def sample_pair(self, rng: random.Random) -> Tuple[str, str]:
        index = bisect.bisect_left(self._cumulative, rng.random())
        index = min(index, len(self._pairs) - 1)
        return self._pairs[index]

    # -- replay -----------------------------------------------------------------

    def replay(
        self,
        network: Network,
        duration_s: float,
        rng: Optional[random.Random] = None,
        rate_scale: float = 1.0,
        tag: str = "replay",
    ):
        """Drive ``network`` with fitted traffic for ``duration_s``.

        Returns the spawning Process; the flows it creates run to
        completion on their own.  Endpoints absent from the target
        topology are skipped (with a counter), so a model fitted on one
        cloud can replay onto a differently-sized one.
        """
        rng = rng or random.Random(0)
        stats = {"launched": 0, "skipped": 0}
        rate = self.arrival_rate_per_s * rate_scale

        def run():
            deadline = network.sim.now + duration_s
            while network.sim.now < deadline:
                yield Timeout(network.sim, rng.expovariate(rate))
                src, dst = self.sample_pair(rng)
                if (src not in network.topology.graph
                        or dst not in network.topology.graph):
                    stats["skipped"] += 1
                    continue
                network.transfer(src, dst, self.sample_size(rng), tag=tag)
                stats["launched"] += 1

        process = network.sim.process(run(), name="replay")
        process.stats = stats  # type: ignore[attr-defined]
        return process


def link_utilization_profile(network: Network) -> Dict[str, float]:
    """Per-direction mean utilisation so far (the comparison fingerprint)."""
    profile = {}
    for link in network.links():
        for direction in (link.forward, link.reverse):
            profile[direction.name] = direction.mean_utilization()
    return profile


def compare_link_profiles(
    original: Dict[str, float], replayed: Dict[str, float]
) -> float:
    """Mean absolute utilisation difference across shared directions.

    0.0 = identical profiles; the replay-fidelity headline number.
    """
    shared = set(original) & set(replayed)
    if not shared:
        raise ValueError("profiles share no link directions")
    return sum(abs(original[d] - replayed[d]) for d in shared) / len(shared)
