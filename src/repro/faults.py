"""Failure injection: scheduled and stochastic faults for the testbed.

The paper motivates the PiCloud partly with the unpredictability of real
DC behaviour (§I cites Gill et al.'s study of DC *failures*), and a
physical testbed's virtue is that failures have consequences at every
layer.  This module drives those consequences:

* :class:`FaultSchedule` -- deterministic scripted faults ("kill pi-r2-n7
  at t=300, cut tor0-agg1 at t=450, repair at t=600").
* :class:`MtbfFaultInjector` -- stochastic node/link failures with
  exponential time-between-failures and repair times, from a seeded
  stream, for availability experiments.

Both record a full event log for post-hoc analysis.  The fault trace
instants (``fault.node-fail`` etc.) are emitted by the
:class:`~repro.core.cloud.PiCloud` fault methods themselves, so direct
calls and injected faults trace identically and the failure detector can
parent its ``health.*`` transitions on the causing fault.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Literal, Optional, Tuple

from repro.core.cloud import PiCloud
from repro.errors import (
    ConfigurationError,
    FaultStateError,
    FaultTargetError,
    NetworkError,
)
from repro.sim.process import Timeout

FaultKind = Literal[
    "node-fail", "node-repair", "link-fail", "link-repair",
    # Gray failures (revertible; targets stay "up"):
    "link-degrade", "link-restore", "node-slow", "node-restore",
    # Reachability cuts (no element is marked failed at all):
    "partition", "partition-heal",
]


@dataclass(frozen=True)
class FaultEvent:
    """One entry in a fault log."""

    time: float
    kind: FaultKind
    target: str


@dataclass
class FaultSchedule:
    """Scripted fault injection against a booted cloud.

    Build the script with the binary faults (:meth:`fail_node` /
    :meth:`cut_link` / :meth:`repair_link` / :meth:`repair_node`), the
    gray faults (:meth:`degrade_link` / :meth:`slow_node` and their
    restores), :meth:`partition` / :meth:`heal_partition`, or the
    correlated-domain helpers (:meth:`fail_tor` / :meth:`fail_pod` /
    :meth:`fail_power_domain`, which expand to their member faults at one
    timestamp, in deterministic member order), then :meth:`arm`.
    Targets are validated at arm time, so a typo'd node or link id fails
    immediately with the valid ids listed -- not minutes into the run
    when the fault fires.  Same-timestamp events fire in *script order*
    (the sort is stable and keys on time only).
    """

    cloud: PiCloud
    log: List[FaultEvent] = field(default_factory=list)
    _armed: bool = False
    _script: List[Tuple[float, FaultKind, str, Dict]] = field(
        default_factory=list
    )

    def fail_node(self, at: float, node_id: str) -> "FaultSchedule":
        self._script.append((at, "node-fail", node_id, {}))
        return self

    def repair_node(self, at: float, node_id: str) -> "FaultSchedule":
        self._script.append((at, "node-repair", node_id, {}))
        return self

    def cut_link(self, at: float, a: str, b: str) -> "FaultSchedule":
        self._script.append((at, "link-fail", f"{a}|{b}", {}))
        return self

    def repair_link(self, at: float, a: str, b: str) -> "FaultSchedule":
        self._script.append((at, "link-repair", f"{a}|{b}", {}))
        return self

    # -- gray failures ------------------------------------------------------

    def degrade_link(self, at: float, a: str, b: str,
                     bandwidth_frac: float = 1.0, extra_latency: float = 0.0,
                     loss: float = 0.0) -> "FaultSchedule":
        """Gray-fail a cable at ``at``: it stays up but under-delivers."""
        if not 0.0 < bandwidth_frac <= 1.0:
            raise ConfigurationError(
                f"bandwidth_frac must be in (0, 1], got {bandwidth_frac}"
            )
        if extra_latency < 0:
            raise ConfigurationError(
                f"extra_latency must be >= 0, got {extra_latency}"
            )
        if not 0.0 <= loss < 1.0:
            raise ConfigurationError(f"loss must be in [0, 1), got {loss}")
        self._script.append((at, "link-degrade", f"{a}|{b}", {
            "bandwidth_frac": bandwidth_frac,
            "extra_latency": extra_latency,
            "loss": loss,
        }))
        return self

    def restore_link(self, at: float, a: str, b: str) -> "FaultSchedule":
        """Revert a link's gray failure at ``at``."""
        self._script.append((at, "link-restore", f"{a}|{b}", {}))
        return self

    def slow_node(self, at: float, node_id: str,
                  factor: float = 2.0) -> "FaultSchedule":
        """Gray-fail a Pi at ``at``: service times stretch by ``factor``."""
        if factor < 1.0:
            raise ConfigurationError(f"factor must be >= 1, got {factor}")
        self._script.append((at, "node-slow", node_id, {"factor": factor}))
        return self

    def restore_node(self, at: float, node_id: str) -> "FaultSchedule":
        """Revert a node's slow-down at ``at``."""
        self._script.append((at, "node-restore", node_id, {}))
        return self

    # -- partitions ---------------------------------------------------------

    def partition(self, at: float,
                  groups: Iterable[Iterable[str]]) -> "FaultSchedule":
        """Cut cross-group reachability at ``at`` (nothing marked dead)."""
        frozen = [list(group) for group in groups]
        if not frozen or not any(frozen):
            raise ConfigurationError("partition needs at least one non-empty group")
        target = ";".join(",".join(group) for group in frozen)
        self._script.append((at, "partition", target, {"groups": frozen}))
        return self

    def heal_partition(self, at: float) -> "FaultSchedule":
        """Heal the active partition at ``at``."""
        self._script.append((at, "partition-heal", "partition", {}))
        return self

    # -- correlated failure domains -----------------------------------------
    #
    # Real incidents rarely take out one element: a ToR failure severs a
    # whole rack, a mis-pushed config blackholes a pod, a PDU trip kills
    # every board on the strip.  These helpers expand a domain into its
    # member faults *at build time* -- same timestamp, deterministic
    # (sorted) member order -- so the schedule log shows exactly what
    # happened and arm-time validation covers every member.

    def fail_tor(self, at: float, tor_id: str) -> "FaultSchedule":
        """Cut every cable on a top-of-rack switch (severs its rack)."""
        graph = self.cloud.topology.graph
        if tor_id not in graph:
            raise FaultTargetError(f"unknown switch {tor_id!r}")
        neighbors = sorted(graph.neighbors(tor_id))
        if not neighbors:
            raise FaultTargetError(f"switch {tor_id!r} has no cables")
        for neighbor in neighbors:
            self.cut_link(at, tor_id, neighbor)
        return self

    def fail_pod(self, at: float, pod: int) -> "FaultSchedule":
        """Cut a fat-tree pod's core uplinks (blackholes the whole pod)."""
        graph = self.cloud.topology.graph
        prefix = f"p{pod}-agg"
        aggs = sorted(n for n in graph.nodes if str(n).startswith(prefix))
        if not aggs:
            raise FaultTargetError(
                f"no aggregation switches match {prefix!r}* "
                "(fail_pod needs a fat-tree topology)"
            )
        for agg in aggs:
            for neighbor in sorted(graph.neighbors(agg)):
                if str(neighbor).startswith("core"):
                    self.cut_link(at, agg, neighbor)
        return self

    def fail_power_domain(self, at: float, rack: str) -> "FaultSchedule":
        """Hard-fail every Pi in one rack (a PDU / power-strip trip)."""
        members = sorted(
            name for name, machine in self.cloud.machines.items()
            if machine.rack == rack
        )
        if not members:
            valid = sorted({m.rack for m in self.cloud.machines.values()
                            if m.rack is not None})
            raise FaultTargetError(
                f"unknown power domain {rack!r}; valid racks: {', '.join(valid)}"
            )
        for name in members:
            self.fail_node(at, name)
        return self

    # -- arming -------------------------------------------------------------

    def _validate_targets(self) -> None:
        for _, kind, target, _kwargs in self._script:
            if kind in ("node-fail", "node-repair", "node-slow",
                        "node-restore"):
                if target not in self.cloud.machines:
                    valid = ", ".join(sorted(self.cloud.machines))
                    raise FaultTargetError(
                        f"fault schedule targets unknown node {target!r}; "
                        f"valid nodes: {valid}"
                    )
            elif kind in ("link-fail", "link-repair", "link-degrade",
                          "link-restore"):
                a, b = target.split("|")
                try:
                    self.cloud.network.link(a, b)
                except NetworkError:
                    valid = ", ".join(
                        "|".join(link.endpoints)
                        for link in self.cloud.network.links()
                    )
                    raise FaultTargetError(
                        f"fault schedule targets unknown link {target!r}; "
                        f"valid links: {valid}"
                    ) from None
            elif kind == "partition":
                for group in _kwargs["groups"]:
                    for node in group:
                        if node not in self.cloud.topology.graph:
                            raise FaultTargetError(
                                f"partition group names unknown node {node!r}"
                            )

    def arm(self) -> None:
        """Validate targets and schedule every scripted fault.

        The sort keys on *time only* and is stable, so same-timestamp
        events fire in the order they were scripted -- a correlated
        domain's member faults land atomically in a deterministic,
        author-controlled order (a lexicographic sort used to reorder
        them by kind/target string).
        """
        if self._armed:
            raise FaultStateError("fault schedule already armed")
        self._validate_targets()
        self._armed = True
        for at, kind, target, kwargs in sorted(self._script,
                                               key=lambda entry: entry[0]):
            self.cloud.sim.schedule_at(at, self._fire, kind, target, kwargs)

    def _fire(self, kind: FaultKind, target: str, kwargs: Dict) -> None:
        if kind == "node-fail":
            self.cloud.fail_node(target)
        elif kind == "node-repair":
            self.cloud.rejoin_node(target)
        elif kind == "link-fail":
            a, b = target.split("|")
            self.cloud.fail_link(a, b)
        elif kind == "link-repair":
            a, b = target.split("|")
            self.cloud.repair_link(a, b)
        elif kind == "link-degrade":
            a, b = target.split("|")
            self.cloud.degrade_link(a, b, **kwargs)
        elif kind == "link-restore":
            a, b = target.split("|")
            self.cloud.restore_link(a, b)
        elif kind == "node-slow":
            self.cloud.slow_node(target, **kwargs)
        elif kind == "node-restore":
            self.cloud.restore_node_speed(target)
        elif kind == "partition":
            self.cloud.partition(kwargs["groups"])
        elif kind == "partition-heal":
            self.cloud.heal_partition()
        self.log.append(FaultEvent(self.cloud.sim.now, kind, target))


class MtbfFaultInjector:
    """Stochastic fault process: exponential MTBF / MTTR per target class.

    Targets are sampled uniformly from the cloud's Pis (``node_mtbf_s``)
    and fabric links (``link_mtbf_s``); each failure schedules its own
    repair after an exponential MTTR.  Node repairs go through
    :meth:`PiCloud.rejoin_node`: the machine reboots on a re-imaged SD
    card, a fresh daemon comes up, and the pimaster re-enrolls it -- so
    long availability runs keep their full fleet and the pimaster's
    self-healing plane (when on) sees nodes leave *and* return.
    """

    def __init__(
        self,
        cloud: PiCloud,
        rng: Optional[random.Random] = None,
        node_mtbf_s: Optional[float] = None,
        link_mtbf_s: Optional[float] = None,
        mttr_s: float = 120.0,
        duration_s: Optional[float] = None,
    ) -> None:
        if node_mtbf_s is None and link_mtbf_s is None:
            raise ConfigurationError("enable at least one of node/link failures")
        for value in (node_mtbf_s, link_mtbf_s):
            if value is not None and value <= 0:
                raise ConfigurationError("MTBF must be positive")
        if mttr_s <= 0:
            raise ConfigurationError("MTTR must be positive")
        self.cloud = cloud
        self.rng = rng or random.Random(0)
        self.node_mtbf_s = node_mtbf_s
        self.link_mtbf_s = link_mtbf_s
        self.mttr_s = mttr_s
        self.duration_s = duration_s
        self.log: List[FaultEvent] = []
        self._stopped = False
        self._processes = []
        # Scheduled-but-unfired repair events, so stop() can cancel them:
        # a stopped injector must not keep mutating the cloud or the log.
        self._pending_repairs: List = []
        if node_mtbf_s is not None:
            self._processes.append(
                cloud.sim.process(self._node_loop(), name="faults.nodes")
            )
        if link_mtbf_s is not None:
            self._processes.append(
                cloud.sim.process(self._link_loop(), name="faults.links")
            )

    def stop(self) -> None:
        """Stop injecting and cancel every still-pending repair."""
        self._stopped = True
        for process in self._processes:
            process.interrupt("fault injector stopped")
        for event in self._pending_repairs:
            event.cancel()
        self._pending_repairs.clear()

    def _deadline(self) -> Optional[float]:
        if self.duration_s is None:
            return None
        return self.cloud.sim.now + self.duration_s

    def _schedule_repair(self, delay: float, fn, *args) -> None:
        self._pending_repairs.append(self.cloud.sim.schedule(delay, fn, *args))

    def _node_loop(self):
        deadline = self._deadline()
        sim = self.cloud.sim
        while not self._stopped:
            yield Timeout(sim, self.rng.expovariate(1.0 / self.node_mtbf_s))
            if deadline is not None and sim.now >= deadline:
                return
            candidates = [
                n for n in self.cloud.node_names if self.cloud.machines[n].is_on
            ]
            if not candidates:
                continue
            victim = self.rng.choice(candidates)
            self.cloud.fail_node(victim)
            self.log.append(FaultEvent(sim.now, "node-fail", victim))
            self._schedule_repair(
                self.rng.expovariate(1.0 / self.mttr_s), self._repair_node, victim
            )

    def _repair_node(self, node_id: str) -> None:
        if self._stopped:
            return
        machine = self.cloud.machines[node_id]
        if machine.state.value != "failed":
            return
        self.cloud.rejoin_node(node_id)
        self.log.append(FaultEvent(self.cloud.sim.now, "node-repair", node_id))

    def _link_loop(self):
        deadline = self._deadline()
        sim = self.cloud.sim
        links = [link.endpoints for link in self.cloud.network.links()]
        while not self._stopped:
            yield Timeout(sim, self.rng.expovariate(1.0 / self.link_mtbf_s))
            if deadline is not None and sim.now >= deadline:
                return
            up = [e for e in links if self.cloud.network.link(*e).up]
            if not up:
                continue
            a, b = self.rng.choice(up)
            self.cloud.fail_link(a, b)
            self.log.append(FaultEvent(sim.now, "link-fail", f"{a}|{b}"))
            self._schedule_repair(
                self.rng.expovariate(1.0 / self.mttr_s), self._repair_link, a, b
            )

    def _repair_link(self, a: str, b: str) -> None:
        if self._stopped:
            return
        if self.cloud.network.link(a, b).up:
            return
        self.cloud.repair_link(a, b)
        self.log.append(FaultEvent(self.cloud.sim.now, "link-repair", f"{a}|{b}"))

    # -- analysis ---------------------------------------------------------------

    def availability(self, node_id: str, start: float, end: float) -> float:
        """Fraction of [start, end] the node spent up (from the log).

        Down-intervals are clamped to the window on both sides: a node
        that failed before ``start`` and is still down counts as down
        *from* ``start``, and intervals entirely outside the window
        contribute nothing (they can never go negative).
        """
        if end <= start:
            raise ConfigurationError("empty window")
        down_since: Optional[float] = None
        downtime = 0.0
        for event in self.log:
            if event.target != node_id:
                continue
            if event.kind == "node-fail" and down_since is None:
                down_since = event.time
            elif event.kind == "node-repair" and down_since is not None:
                downtime += max(0.0, min(event.time, end) - max(down_since, start))
                down_since = None
        if down_since is not None:
            downtime += max(0.0, end - max(down_since, start))
        return 1.0 - downtime / (end - start)

    def fleet_availability(self, start: float, end: float) -> float:
        """Mean per-node availability across every managed Pi.

        Nodes that never failed contribute 1.0 -- the fleet number is an
        average over the whole deployment, not just the victims.
        """
        nodes = self.cloud.node_names
        if not nodes:
            raise ConfigurationError("cloud has no managed nodes")
        return sum(self.availability(n, start, end) for n in nodes) / len(nodes)
