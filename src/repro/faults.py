"""Failure injection: scheduled and stochastic faults for the testbed.

The paper motivates the PiCloud partly with the unpredictability of real
DC behaviour (§I cites Gill et al.'s study of DC *failures*), and a
physical testbed's virtue is that failures have consequences at every
layer.  This module drives those consequences:

* :class:`FaultSchedule` -- deterministic scripted faults ("kill pi-r2-n7
  at t=300, cut tor0-agg1 at t=450, repair at t=600").
* :class:`MtbfFaultInjector` -- stochastic node/link failures with
  exponential time-between-failures and repair times, from a seeded
  stream, for availability experiments.

Both record a full event log for post-hoc analysis.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Literal, Optional, Tuple

from repro import trace
from repro.core.cloud import PiCloud
from repro.sim.process import Timeout

FaultKind = Literal["node-fail", "node-repair", "link-fail", "link-repair"]


def _trace_fault(cloud: PiCloud, kind: FaultKind, target: str) -> None:
    """Mark a fault on the causal trace as a zero-duration span."""
    trace.instant(cloud.sim, f"fault.{kind}", kind="fault",
                  attributes={"target": target},
                  status="ok" if kind.endswith("repair") else "error")


@dataclass(frozen=True)
class FaultEvent:
    """One entry in a fault log."""

    time: float
    kind: FaultKind
    target: str


@dataclass
class FaultSchedule:
    """Scripted fault injection against a booted cloud.

    Build the script with :meth:`fail_node` / :meth:`cut_link` /
    :meth:`repair_link` / :meth:`repair_node`, then :meth:`arm`.
    """

    cloud: PiCloud
    log: List[FaultEvent] = field(default_factory=list)
    _armed: bool = False
    _script: List[Tuple[float, FaultKind, str]] = field(default_factory=list)

    def fail_node(self, at: float, node_id: str) -> "FaultSchedule":
        self._script.append((at, "node-fail", node_id))
        return self

    def repair_node(self, at: float, node_id: str) -> "FaultSchedule":
        self._script.append((at, "node-repair", node_id))
        return self

    def cut_link(self, at: float, a: str, b: str) -> "FaultSchedule":
        self._script.append((at, "link-fail", f"{a}|{b}"))
        return self

    def repair_link(self, at: float, a: str, b: str) -> "FaultSchedule":
        self._script.append((at, "link-repair", f"{a}|{b}"))
        return self

    def arm(self) -> None:
        """Schedule every scripted fault.  Idempotent-guarded."""
        if self._armed:
            raise RuntimeError("fault schedule already armed")
        self._armed = True
        for at, kind, target in sorted(self._script):
            self.cloud.sim.schedule_at(at, self._fire, kind, target)

    def _fire(self, kind: FaultKind, target: str) -> None:
        if kind == "node-fail":
            self.cloud.fail_node(target)
        elif kind == "node-repair":
            machine = self.cloud.machines[target]
            machine.repair()
            machine.boot_immediately()
        elif kind == "link-fail":
            a, b = target.split("|")
            self.cloud.fail_link(a, b)
        elif kind == "link-repair":
            a, b = target.split("|")
            self.cloud.repair_link(a, b)
        self.log.append(FaultEvent(self.cloud.sim.now, kind, target))
        _trace_fault(self.cloud, kind, target)


class MtbfFaultInjector:
    """Stochastic fault process: exponential MTBF / MTTR per target class.

    Targets are sampled uniformly from the cloud's Pis (``node_mtbf_s``)
    and fabric links (``link_mtbf_s``); each failure schedules its own
    repair after an exponential MTTR.  Node repairs reboot the machine;
    the management plane's daemons are *not* resurrected (a re-imaged
    node needs re-registration), matching operational reality -- so use
    link faults for long availability runs and node faults for
    crash-impact studies.
    """

    def __init__(
        self,
        cloud: PiCloud,
        rng: Optional[random.Random] = None,
        node_mtbf_s: Optional[float] = None,
        link_mtbf_s: Optional[float] = None,
        mttr_s: float = 120.0,
        duration_s: Optional[float] = None,
    ) -> None:
        if node_mtbf_s is None and link_mtbf_s is None:
            raise ValueError("enable at least one of node/link failures")
        for value in (node_mtbf_s, link_mtbf_s):
            if value is not None and value <= 0:
                raise ValueError("MTBF must be positive")
        if mttr_s <= 0:
            raise ValueError("MTTR must be positive")
        self.cloud = cloud
        self.rng = rng or random.Random(0)
        self.node_mtbf_s = node_mtbf_s
        self.link_mtbf_s = link_mtbf_s
        self.mttr_s = mttr_s
        self.duration_s = duration_s
        self.log: List[FaultEvent] = []
        self._stopped = False
        self._processes = []
        if node_mtbf_s is not None:
            self._processes.append(
                cloud.sim.process(self._node_loop(), name="faults.nodes")
            )
        if link_mtbf_s is not None:
            self._processes.append(
                cloud.sim.process(self._link_loop(), name="faults.links")
            )

    def stop(self) -> None:
        self._stopped = True
        for process in self._processes:
            process.interrupt("fault injector stopped")

    def _deadline(self) -> Optional[float]:
        if self.duration_s is None:
            return None
        return self.cloud.sim.now + self.duration_s

    def _node_loop(self):
        deadline = self._deadline()
        sim = self.cloud.sim
        while not self._stopped:
            yield Timeout(sim, self.rng.expovariate(1.0 / self.node_mtbf_s))
            if deadline is not None and sim.now >= deadline:
                return
            candidates = [
                n for n in self.cloud.node_names if self.cloud.machines[n].is_on
            ]
            if not candidates:
                continue
            victim = self.rng.choice(candidates)
            self.cloud.fail_node(victim)
            self.log.append(FaultEvent(sim.now, "node-fail", victim))
            _trace_fault(self.cloud, "node-fail", victim)
            sim.schedule(
                self.rng.expovariate(1.0 / self.mttr_s), self._repair_node, victim
            )

    def _repair_node(self, node_id: str) -> None:
        machine = self.cloud.machines[node_id]
        if machine.state.value != "failed":
            return
        machine.repair()
        machine.boot_immediately()
        self.log.append(FaultEvent(self.cloud.sim.now, "node-repair", node_id))
        _trace_fault(self.cloud, "node-repair", node_id)

    def _link_loop(self):
        deadline = self._deadline()
        sim = self.cloud.sim
        links = [link.endpoints for link in self.cloud.network.links()]
        while not self._stopped:
            yield Timeout(sim, self.rng.expovariate(1.0 / self.link_mtbf_s))
            if deadline is not None and sim.now >= deadline:
                return
            up = [e for e in links if self.cloud.network.link(*e).up]
            if not up:
                continue
            a, b = self.rng.choice(up)
            self.cloud.fail_link(a, b)
            self.log.append(FaultEvent(sim.now, "link-fail", f"{a}|{b}"))
            _trace_fault(self.cloud, "link-fail", f"{a}|{b}")
            sim.schedule(
                self.rng.expovariate(1.0 / self.mttr_s), self._repair_link, a, b
            )

    def _repair_link(self, a: str, b: str) -> None:
        if self.cloud.network.link(a, b).up:
            return
        self.cloud.repair_link(a, b)
        self.log.append(FaultEvent(self.cloud.sim.now, "link-repair", f"{a}|{b}"))
        _trace_fault(self.cloud, "link-repair", f"{a}|{b}")

    # -- analysis ---------------------------------------------------------------

    def availability(self, node_id: str, start: float, end: float) -> float:
        """Fraction of [start, end] the node spent up (from the log)."""
        if end <= start:
            raise ValueError("empty window")
        down_since: Optional[float] = None
        downtime = 0.0
        for event in self.log:
            if event.target != node_id:
                continue
            if event.kind == "node-fail" and down_since is None:
                down_since = max(event.time, start)
            elif event.kind == "node-repair" and down_since is not None:
                downtime += min(event.time, end) - down_since
                down_since = None
        if down_since is not None:
            downtime += end - down_since
        return 1.0 - downtime / (end - start)
