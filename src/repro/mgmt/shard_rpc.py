"""Control-plane RPC routing across shard boundaries.

In a sharded run the pimaster/control plane is its own shard (shard 0 --
see :mod:`repro.netsim.partition`), so every management operation that
touches a pod (start traffic, poll metrics, place work) becomes a
cross-shard message.  This module is the thin RPC layer over the shard
channel: requests carry a method name, parameters, and a correlation id;
replies route back to the caller's pending-callback table.

Both sides instantiate one :class:`ShardRpcRouter`.  The server side
registers handlers; the client side issues :meth:`call` with an optional
reply callback.  All delivery latency comes from the shard channel's
boundary delay, which doubles as the modelled control-plane RTT -- one
way per direction, exactly like the REST round-trips of the unsharded
:mod:`repro.mgmt.rest` path.

Determinism: correlation ids are per-router counters, handlers fire
inside the destination kernel at the message timestamp, and pending
callbacks are stored in insertion-ordered dicts.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.errors import ManagementError

RPC_KIND = "shard_rpc"
REPLY_KIND = "shard_rpc_reply"


class ShardRpcRouter:
    """Request/reply plumbing over a :class:`~repro.sim.shard.ShardContext`.

    ``handlers`` maps method name to ``handler(params) -> result``; the
    result is posted back to the caller automatically (methods that want
    no reply return ``None`` and callers that want none pass
    ``on_reply=None`` -- the empty reply still flows, keeping the
    channel's message pattern uniform and cheap to reason about).
    """

    def __init__(self, ctx,
                 handlers: Optional[Dict[str, Callable[[dict], Any]]] = None
                 ) -> None:
        self.ctx = ctx
        self.handlers: Dict[str, Callable[[dict], Any]] = dict(handlers or {})
        self._next_id = 0
        self._pending: Dict[int, Callable[[Any], None]] = {}
        # Counters for the coordinator's merged metrics.
        self.calls_sent = 0
        self.calls_served = 0

    def register(self, method: str, handler: Callable[[dict], Any]) -> None:
        if method in self.handlers:
            raise ManagementError(f"rpc method {method!r} already registered")
        self.handlers[method] = handler

    def call(self, dst_shard: int, method: str, params: dict,
             on_reply: Optional[Callable[[Any], None]] = None) -> int:
        """Issue ``method(params)`` on ``dst_shard``; returns the call id."""
        call_id = self._next_id
        self._next_id += 1
        if on_reply is not None:
            self._pending[call_id] = on_reply
        self.calls_sent += 1
        self.ctx.post(dst_shard, {
            "kind": RPC_KIND,
            "id": call_id,
            "reply_to": self.ctx.shard_id,
            "method": method,
            "params": params,
        })
        return call_id

    def dispatch(self, payload: Any) -> bool:
        """Feed a shard message through the router.

        Returns True when the payload was an RPC request or reply (and
        was handled); False means it belongs to someone else.
        """
        if not isinstance(payload, dict):
            return False
        kind = payload.get("kind")
        if kind == RPC_KIND:
            handler = self.handlers.get(payload["method"])
            if handler is None:
                raise ManagementError(
                    f"shard {self.ctx.shard_id} has no rpc handler for "
                    f"{payload['method']!r}"
                )
            self.calls_served += 1
            result = handler(payload["params"])
            self.ctx.post(payload["reply_to"], {
                "kind": REPLY_KIND,
                "id": payload["id"],
                "result": result,
            })
            return True
        if kind == REPLY_KIND:
            callback = self._pending.pop(payload["id"], None)
            if callback is not None:
                callback(payload["result"])
            return True
        return False
