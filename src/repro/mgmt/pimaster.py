"""The pimaster: the PiCloud's head node.

Owns the DHCP and DNS services, the image store, the monitoring poller,
the node registry and the placement policy; orchestrates container
lifecycle by calling each node's REST daemon over the fabric.  This is
the component behind the paper's Fig. 4 control panel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro import trace
from repro.errors import (
    CircuitOpenError,
    DeadlineExceeded,
    LeaseError,
    ManagementError,
    NameError_,
    PlacementError,
    RestError,
    UnknownNodeError,
)
from repro.hostos.kernelhost import HostKernel
from repro.mgmt.dashboard import Dashboard
from repro.mgmt.dhcp import DhcpServer
from repro.mgmt.dns import DnsServer
from repro.mgmt.health import CircuitBreaker, FailureDetector, NodeHealth
from repro.mgmt.images import ImageService
from repro.mgmt.monitoring import MonitoringService
from repro.mgmt.node_daemon import NODE_DAEMON_PORT, NodeDaemon
from repro.mgmt.recovery import RecoveryManager
from repro.mgmt.rest import RestClient
from repro.netsim.addresses import Ipv4Pool
from repro.placement.base import NodeView, PlacementPolicy, PlacementRequest
from repro.placement.policies import FirstFit
from repro.sim.process import Signal, Timeout


@dataclass
class NodeRecord:
    """Registry row for one managed Pi."""

    node_id: str
    ip: str
    daemon: NodeDaemon


@dataclass
class ContainerRecord:
    """Registry row for one managed container.

    ``epoch`` is the fencing epoch the container was spawned with (None
    when fencing is off): a strictly increasing per-pimaster counter, so
    of two incarnations of the same container the one with the higher
    epoch is authoritative.
    """

    name: str
    node_id: str
    image: str
    ip: str
    fqdn: str
    group: Optional[str] = None
    epoch: Optional[int] = None


class PiMaster:
    """The head node: registry + services + orchestration."""

    def __init__(
        self,
        kernel: HostKernel,
        subnet: str = "10.0.0.0/16",
        zone: str = "picloud.dcs.gla.ac.uk",
        placement_policy: Optional[PlacementPolicy] = None,
        monitoring_interval_s: float = 5.0,
        monitoring_idle_backoff: float = 2.0,
        monitoring_max_interval_s: Optional[float] = None,
        image_service: Optional[ImageService] = None,
        op_deadline_s: float = 1800.0,
        op_attempts: int = 3,
        op_backoff_s: float = 1.0,
        heartbeat_interval_s: float = 2.0,
        heartbeat_timeout_s: float = 1.0,
        suspect_after_misses: int = 2,
        dead_after_misses: int = 4,
        evacuation_queue_limit: int = 64,
        evacuation_retry_budget: int = 2,
        breaker_failure_threshold: int = 5,
        breaker_reset_s: float = 60.0,
        unreachable_grace_s: float = 0.0,
        fencing: bool = False,
        witness_count: int = 2,
    ) -> None:
        self.kernel = kernel
        self.sim = kernel.sim
        # Management calls can legitimately take minutes (an image push
        # moves hundreds of MiB across the fabric onto an SD card), so the
        # per-attempt deadline defaults generous; transport-level failures
        # (timeout, no route, connection refused) are retried with
        # exponential backoff before the orchestration gives up.
        self.op_deadline_s = op_deadline_s
        self.op_attempts = op_attempts
        self.op_backoff_s = op_backoff_s
        self.op_retries = 0
        self.op_deadline_failures = 0
        self.client = RestClient(kernel.netstack, timeout_s=op_deadline_s)
        self.dhcp = DhcpServer(self.sim, Ipv4Pool(subnet))
        self.dns = DnsServer(zone)
        self.images = image_service or ImageService(self.sim)
        self.monitoring = MonitoringService(
            self.sim, self.client, interval_s=monitoring_interval_s,
            idle_backoff=monitoring_idle_backoff,
            max_interval_s=monitoring_max_interval_s,
        )
        self.placement_policy: PlacementPolicy = placement_policy or FirstFit()
        self._nodes: Dict[str, NodeRecord] = {}
        self._containers: Dict[str, ContainerRecord] = {}
        # Indexes kept in step with _containers so node_views() does not
        # rescan every container and every fabric link per node: the
        # node's access link (found once, lazily) and per-node group
        # refcounts (anti-affinity placement input).
        self._access_links: Dict[str, object] = {}
        self._node_groups: Dict[str, Dict[str, int]] = {}
        self._spawn_seq = 0
        self._destroy_seq = 0
        self.spawns = 0
        self.spawn_failures = 0
        self.rejoins = 0
        self.breaker_fast_fails = 0
        # Self-healing plane: per-node circuit breakers, the heartbeat
        # failure detector (its own short-timeout client so dead nodes
        # cannot stall probing), and the evacuation/recovery worker.
        self.breaker_failure_threshold = breaker_failure_threshold
        self.breaker_reset_s = breaker_reset_s
        self._breakers: Dict[str, CircuitBreaker] = {}
        self.health = FailureDetector(
            self.sim,
            RestClient(kernel.netstack, timeout_s=heartbeat_timeout_s),
            interval_s=heartbeat_interval_s,
            suspect_misses=suspect_after_misses,
            dead_misses=dead_after_misses,
            daemon_port=NODE_DAEMON_PORT,
            breaker_for=self._breakers.get,
            unreachable_grace_s=unreachable_grace_s,
            witness_count=witness_count,
        )
        # Split-brain safety: when fencing is on, every spawn carries the
        # next value of this monotone counter, daemons reject stale-epoch
        # ops, and a node coming back from UNREACHABLE/DEAD is reconciled
        # (its stale duplicate containers destroyed -- newest epoch wins).
        self.fencing = fencing
        self.fencing_epoch = 0
        self.reconciles = 0
        self.duplicate_container_epochs = 0
        self.false_dead_evacuations = 0
        self._evacuated_nodes: set[str] = set()
        self.recovery = RecoveryManager(
            self,
            queue_limit=evacuation_queue_limit,
            retry_budget=evacuation_retry_budget,
        )
        self.health.add_listener(self._on_health_transition)
        self.health.add_listener(self.recovery.on_transition)

    # -- registry ---------------------------------------------------------------

    def register_node(self, daemon: NodeDaemon, ip: str) -> NodeRecord:
        """Enroll a Pi: record its address, wire up migration resolution."""
        node_id = daemon.node_id
        if node_id in self._nodes:
            raise ManagementError(f"node {node_id!r} already registered")
        record = NodeRecord(node_id=node_id, ip=ip, daemon=daemon)
        self._nodes[node_id] = record
        daemon.peer_resolver = self.daemon
        self.monitoring.watch(node_id, ip)
        self.dns.register(node_id, ip)
        self._breakers[node_id] = CircuitBreaker(
            self.sim,
            failure_threshold=self.breaker_failure_threshold,
            reset_timeout_s=self.breaker_reset_s,
            node_id=node_id,
        )
        self.health.watch(node_id, ip)
        return record

    def breaker(self, node_id: str) -> CircuitBreaker:
        try:
            return self._breakers[node_id]
        except KeyError:
            raise UnknownNodeError(f"unknown node {node_id!r}") from None

    def _on_health_transition(self, node_id: str, old: NodeHealth,
                              new: NodeHealth, context) -> None:
        """Registry housekeeping on health transitions.

        A dead node stops being polled (its monitoring probes would only
        burn the detector's work) and its image cache is forgotten -- the
        repair path re-images the SD card, so anything cached is gone.

        A node coming straight back ALIVE from UNREACHABLE or DEAD (the
        gen-2 detector's partition-heal path: the node was never actually
        down) is re-polled and *reconciled*: its containers are listed
        and compared against the registry, so duplicates created by an
        evacuation during the partition are resolved (fencing on: newest
        epoch wins, the stale copy is destroyed) or at least counted
        (fencing off: the split-brain double-run is left visible in
        ``duplicate_container_epochs``).
        """
        if new is NodeHealth.DEAD:
            self.monitoring.unwatch(node_id)
            self.images.invalidate_node(node_id)
            self._evacuated_nodes.add(node_id)
        elif (new is NodeHealth.ALIVE
                and old in (NodeHealth.UNREACHABLE, NodeHealth.DEAD)):
            if old is NodeHealth.DEAD and node_id in self._evacuated_nodes:
                # The detector buried a live node and recovery respawned
                # its containers elsewhere: a false positive with real
                # cost (the split-brain input).
                self.false_dead_evacuations += 1
            self._evacuated_nodes.discard(node_id)
            record = self._nodes.get(node_id)
            if record is not None:
                if old is NodeHealth.DEAD:
                    self.monitoring.watch(node_id, record.ip)
                self.sim.process(
                    self._reconcile(node_id, context),
                    name=f"reconcile:{node_id}",
                )

    def _reconcile(self, node_id: str, parent=None):
        """Resolve container state divergence after a node comes back.

        Lists the node's actual containers and compares against the
        registry.  Three cases per listed container:

        * registry row points at this node -- consistent, nothing to do;
        * registry row points at *another* node -- a duplicate:
          evacuation respawned it elsewhere while this node (alive all
          along) kept its copy running.  With fencing the lower epoch
          loses and is destroyed here; without fencing both copies keep
          running and the duplicate is counted;
        * no registry row -- an orphan (destroyed while unreachable);
          destroyed here when fencing is on.
        """
        record = self._nodes.get(node_id)
        if record is None:
            return
        self.reconciles += 1
        span = trace.start_span(
            self.sim, "mgmt.reconcile", parent=parent, kind="mgmt",
            attributes={"node": node_id, "fencing": self.fencing},
        )
        try:
            response = yield from self._call_with_retry(
                lambda attempt: self.client.get(
                    record.ip, NODE_DAEMON_PORT, "/containers", parent=attempt,
                ),
                f"reconcile listing of {node_id}",
                parent=span,
                node_id=node_id,
            )
            response.raise_for_status()
        except Exception as exc:  # noqa: BLE001 - node flapped again
            span.end("error", str(exc))
            return
        rows = sorted(response.body or [], key=lambda r: r.get("name", ""))
        duplicates = 0
        destroyed = 0
        for row in rows:
            name = row.get("name")
            registry = self._containers.get(name)
            if registry is not None and registry.node_id == node_id:
                continue  # consistent
            stale_epoch = row.get("epoch")
            if registry is not None:
                # Duplicate incarnations.  The registry copy is the one
                # the pimaster respawned (higher epoch when fencing is
                # on); the listed copy survived the partition.
                if not self.fencing:
                    duplicates += 1
                    self.duplicate_container_epochs += 1
                    continue
                winner_epoch = registry.epoch
                if (stale_epoch is not None and winner_epoch is not None
                        and stale_epoch > winner_epoch):
                    # Cannot happen with a single spawner; if it ever
                    # does, the listed copy is authoritative -- repoint
                    # the registry instead of destroying the newer copy.
                    self._untrack_group(registry)
                    registry.node_id = node_id
                    registry.epoch = stale_epoch
                    self._track_group(registry)
                    continue
            elif not self.fencing:
                continue  # orphan, but we have no authority to kill it
            destroy_epoch = (self._containers[name].epoch
                             if registry is not None else self.fencing_epoch)
            try:
                yield from self._destroy_stale(
                    node_id, record.ip, name, destroy_epoch, span,
                )
                destroyed += 1
            except Exception:  # noqa: BLE001 - daemon refused / vanished
                continue
        span.set_attribute("duplicates", duplicates)
        span.set_attribute("destroyed", destroyed)
        span.end("ok")

    def _destroy_stale(self, node_id: str, ip: str, name: str,
                       epoch: Optional[int], parent):
        """Fence off a stale container copy on a healed node."""
        self._destroy_seq += 1
        body = {"idempotency_key": f"fence:{name}:{self._destroy_seq}"}
        if epoch is not None:
            body["epoch"] = epoch
        destroy_span = trace.start_span(
            self.sim, "mgmt.fence-destroy", parent=parent, kind="mgmt",
            attributes={"container": name, "node": node_id, "epoch": epoch},
        )
        try:
            response = yield from self._call_with_retry(
                lambda attempt: self.client.delete(
                    ip, NODE_DAEMON_PORT, f"/containers/{name}",
                    body=body, parent=attempt,
                ),
                f"fence destroy of stale {name!r} on {node_id}",
                parent=destroy_span,
                node_id=node_id,
            )
            response.raise_for_status()
        except Exception as exc:  # noqa: BLE001
            destroy_span.end("error", str(exc))
            raise
        destroy_span.end("ok")

    def rejoin_node(self, daemon: NodeDaemon, ip: str, parent=None) -> Signal:
        """Re-enroll a repaired node; Signal -> NodeRecord.

        The node daemon re-announces itself after repair; the pimaster
        marks it REJOINING, lets one half-open probe through its breaker,
        and on a successful ``GET /health`` refreshes the registry row
        (new daemon object, fresh management IP), DNS, monitoring and the
        failure detector -- then marks it ALIVE again.  Closes the known
        resurrection gap in :class:`~repro.faults.MtbfFaultInjector`.
        """
        node_id = daemon.node_id
        done = Signal(self.sim, name=f"rejoin:{node_id}")
        span = trace.start_span(
            self.sim, "mgmt.rejoin", parent=parent, kind="mgmt",
            attributes={"node": node_id, "ip": ip},
        )
        self.health.mark(node_id, NodeHealth.REJOINING, parent=span.context)
        # The repair path re-images the SD card, so anything the image
        # service believes is cached there is gone -- even when the node
        # was never declared DEAD (manual rejoin, detector off).
        self.images.invalidate_node(node_id)
        breaker = self._breakers.get(node_id)
        if breaker is not None:
            breaker.half_open_now()

        def run():
            try:
                response = yield from self._call_with_retry(
                    lambda attempt: self.client.get(
                        ip, NODE_DAEMON_PORT, "/health", parent=attempt,
                    ),
                    f"rejoin probe of {node_id}",
                    parent=span,
                    node_id=node_id,
                )
                response.raise_for_status()
            except Exception as exc:  # noqa: BLE001 - node still unreachable
                span.end("error", str(exc))
                done.fail(ManagementError(f"rejoin of {node_id!r} failed: {exc}"))
                return
            record = self._nodes.get(node_id)
            if record is None:
                record = NodeRecord(node_id=node_id, ip=ip, daemon=daemon)
                self._nodes[node_id] = record
            else:
                record.ip = ip
                record.daemon = daemon
            try:
                self.dns.update(node_id, ip)
            except NameError_:
                self.dns.register(node_id, ip)
            daemon.peer_resolver = self.daemon
            self.monitoring.watch(node_id, ip)
            self.health.rewatch(node_id, ip)
            self.health.mark(node_id, NodeHealth.ALIVE, parent=span.context)
            self.rejoins += 1
            span.end("ok")
            done.succeed(record)

        self.sim.process(run(), name=f"rejoin:{node_id}")
        return done

    def forget_container(self, name: str) -> None:
        """Drop a container's registry state without contacting its node.

        The evacuation path uses this for containers on a node declared
        dead: the REST daemon is unreachable, but the name, DNS record,
        lease and fabric address must be reusable by the respawn.  The
        address is unbound from the dead node's stack *before* the lease
        is released so a re-allocation cannot collide in the fabric.
        """
        record = self._containers.pop(name, None)
        if record is None:
            return
        self._untrack_group(record)
        node = self._nodes.get(record.node_id)
        if node is not None:
            node.daemon.kernel.netstack.unbind_address(record.ip)
        try:
            self.dns.unregister(name)
        except NameError_:
            pass
        try:
            self.dhcp.release(name)
        except LeaseError:
            pass

    def node_ids(self) -> list[str]:
        return sorted(self._nodes)

    def daemon(self, node_id: str) -> NodeDaemon:
        try:
            return self._nodes[node_id].daemon
        except KeyError:
            raise UnknownNodeError(f"unknown node {node_id!r}") from None

    def node_ip(self, node_id: str) -> str:
        return self._nodes[node_id].ip

    def container_record(self, name: str) -> ContainerRecord:
        try:
            return self._containers[name]
        except KeyError:
            raise ManagementError(f"unknown container {name!r}") from None

    def container_records(self) -> list[ContainerRecord]:
        return sorted(self._containers.values(), key=lambda r: r.name)

    # -- state views for placement ------------------------------------------------

    def _track_group(self, record: ContainerRecord) -> None:
        if record.group is None:
            return
        counts = self._node_groups.setdefault(record.node_id, {})
        counts[record.group] = counts.get(record.group, 0) + 1

    def _untrack_group(self, record: ContainerRecord) -> None:
        if record.group is None:
            return
        counts = self._node_groups.get(record.node_id)
        if not counts:
            return
        remaining = counts.get(record.group, 0) - 1
        if remaining > 0:
            counts[record.group] = remaining
        else:
            counts.pop(record.group, None)

    def _access_link(self, node_id: str, daemon: NodeDaemon):
        """The node's fabric access link, found once and memoised."""
        try:
            return self._access_links[node_id]
        except KeyError:
            pass
        found = None
        for link in daemon.kernel.netstack.fabric.network.links():
            if node_id in link.endpoints:
                found = link
                break
        self._access_links[node_id] = found
        return found

    def node_views(self) -> list[NodeView]:
        """Current snapshot of every registered node, in node-id order.

        Under the gen-2 failure detector, DEAD and UNREACHABLE nodes are
        not placement candidates: their machines may still report
        powered-on (a partitioned node *is* on), but a spawn routed there
        cannot succeed -- and respawning a partitioned replica onto its
        own dark pod would defeat the evacuation.  The legacy detector
        keeps the historical view (DEAD usually implies powered-off).
        """
        views = []
        synced = False
        partition_aware = self.health.partition_aware
        for node_id in self.node_ids():
            if partition_aware and self.health.state(node_id) in (
                    NodeHealth.DEAD, NodeHealth.UNREACHABLE):
                continue
            daemon = self._nodes[node_id].daemon
            machine = daemon.kernel.machine
            groups = tuple(sorted(self._node_groups.get(node_id, ())))
            # The host's access-link utilisation, if the fabric knows it.
            uplink = 0.0
            link = self._access_link(node_id, daemon)
            if link is not None:
                if not synced:
                    # Apply any fair-share solve deferred from churn at
                    # this instant so the utilisation read is current.
                    daemon.kernel.netstack.fabric.network.sync()
                    synced = True
                uplink = max(
                    link.forward.utilization.value,
                    link.reverse.utilization.value,
                )
            views.append(
                NodeView(
                    node_id=node_id,
                    rack=machine.rack,
                    memory_available=machine.memory.available,
                    memory_capacity=machine.memory.capacity,
                    cpu_load=machine.cpu.utilization.value,
                    running_containers=daemon.runtime.running_count(),
                    powered_on=machine.is_on,
                    uplink_utilization=uplink,
                    groups=groups,
                )
            )
        return views

    # -- orchestration ------------------------------------------------------------------

    def _call_with_retry(self, send, what: str, parent=None,
                         node_id: Optional[str] = None):
        """Issue ``send(span)`` (a REST-call factory) with retry + backoff.

        A generator helper (``yield from``).  Transport-level failures --
        the client's per-attempt deadline, connection refused, no route --
        surface as :class:`RestError` with status 0 and are retried up to
        ``op_attempts`` times, sleeping ``op_backoff_s * 2**attempt``
        between tries.  Application-level errors (any real HTTP status)
        are NOT retried: the node answered, the answer was no.  Once the
        attempts are exhausted a typed :class:`DeadlineExceeded` is
        raised, naming the operation.

        ``node_id`` routes attempt outcomes through that node's circuit
        breaker: when the breaker is open the call is rejected immediately
        with :class:`CircuitOpenError` instead of burning attempts against
        a daemon known to be dead.  An application-level answer counts as
        transport success (the node is reachable).

        ``send`` receives the attempt's span so the underlying REST call
        (and everything server-side) nests under it; each attempt is one
        child span of ``parent``, failed attempts ending in error status.
        """
        breaker = self._breakers.get(node_id) if node_id is not None else None
        last_error: Optional[RestError] = None
        for attempt in range(self.op_attempts):
            if attempt:
                self.op_retries += 1
                yield Timeout(self.sim, self.op_backoff_s * (2 ** (attempt - 1)))
            if breaker is not None and not breaker.allow():
                self.breaker_fast_fails += 1
                raise CircuitOpenError(
                    f"{what}: circuit open for node {node_id}",
                    node_id=node_id,
                )
            attempt_span = trace.start_span(
                self.sim, "mgmt.attempt", parent=parent, kind="mgmt",
                attributes={"what": what, "attempt": attempt + 1},
            )
            try:
                response = yield send(attempt_span)
            except RestError as exc:
                attempt_span.end("error", str(exc))
                if exc.status != 0:
                    # The node answered; transport is healthy.
                    if breaker is not None:
                        breaker.record_success()
                    raise
                if breaker is not None:
                    breaker.record_failure()
                last_error = exc
                continue
            if breaker is not None:
                breaker.record_success()
            attempt_span.end("ok")
            return response
        self.op_deadline_failures += 1
        raise DeadlineExceeded(
            f"{what} failed after {self.op_attempts} attempts "
            f"({self.op_deadline_s}s per-attempt deadline): {last_error}",
            deadline_s=self.op_deadline_s,
            attempts=self.op_attempts,
            trace_id=getattr(parent, "trace_id", None),
        )

    def spawn_container(
        self,
        image: str,
        name: Optional[str] = None,
        policy: Optional[PlacementPolicy] = None,
        cpu_shares: int = 1024,
        cpu_quota: Optional[float] = None,
        memory_limit_bytes: Optional[int] = None,
        same_rack_as: Optional[str] = None,
        avoid_racks: tuple = (),
        group: Optional[str] = None,
        node_id: Optional[str] = None,
        parent=None,
    ) -> Signal:
        """Place, provision and start a container; Signal -> ContainerRecord.

        ``node_id`` pins the placement; otherwise the active policy picks.
        The whole chain is real: image push (if cold), DHCP lease, REST
        create/start on the node, DNS registration.  ``parent`` roots the
        spawn's trace (the recovery plane parents respawns on the
        evacuation span).
        """
        done = Signal(self.sim, name=f"spawn:{image}")
        container_image = self.images.get(image)
        self._spawn_seq += 1
        container_name = name or f"{container_image.name}-{self._spawn_seq}"
        # One key per spawn *call*: retried attempts share it, so a node
        # that already created the container answers from its idempotency
        # cache instead of double-creating.
        idempotency_key = f"spawn:{container_name}:{self._spawn_seq}"
        # Fencing: stamp the spawn with the next epoch so the daemon can
        # reject stale ops and reconciliation can order incarnations.
        # Off by default -- the field is absent from the wire format, so
        # unfenced deployments see byte-identical request sizes.
        epoch: Optional[int] = None
        if self.fencing:
            self.fencing_epoch += 1
            epoch = self.fencing_epoch
        span = trace.start_span(
            self.sim, "mgmt.spawn", parent=parent, kind="mgmt",
            attributes={"image": container_image.name, "container": container_name},
        )
        if container_name in self._containers:
            span.end("error", "name in use")
            done.fail(ManagementError(f"container name {container_name!r} in use"))
            return done

        request = PlacementRequest(
            image=container_image.name,
            memory_bytes=container_image.idle_memory_bytes,
            cpu_shares=cpu_shares,
            cpu_quota=cpu_quota,
            same_rack_as=same_rack_as,
            avoid_racks=tuple(avoid_racks),
            anti_affinity_group=group,
        )

        def run():
            try:
                if node_id is not None:
                    target = node_id
                else:
                    chooser = policy or self.placement_policy
                    target = chooser.choose(request, self.node_views())
            except PlacementError as exc:
                self.spawn_failures += 1
                span.end("error", str(exc))
                done.fail(exc)
                return
            span.set_attribute("node", target)
            record = self._nodes[target]
            try:
                yield self.images.ensure_cached(
                    self.client, target, record.ip, NODE_DAEMON_PORT,
                    container_image, parent=span,
                )
                lease = self.dhcp.request_lease(
                    client_id=container_name, hostname=container_name
                )
                body = {
                    "name": container_name,
                    "image": container_image.qualified_name,
                    "ip": lease.ip,
                    "cpu_shares": cpu_shares,
                    "cpu_quota": cpu_quota,
                    "memory_limit_bytes": memory_limit_bytes,
                    "idempotency_key": idempotency_key,
                }
                if epoch is not None:
                    body["epoch"] = epoch
                response = yield from self._call_with_retry(
                    lambda attempt: self.client.post(
                        record.ip, NODE_DAEMON_PORT, "/containers",
                        body=body,
                        parent=attempt,
                    ),
                    f"container create/start of {container_name!r} on {target}",
                    parent=span,
                    node_id=target,
                )
                response.raise_for_status()
            except Exception as exc:  # noqa: BLE001 - spawn failed downstream
                self.spawn_failures += 1
                span.end("error", str(exc))
                done.fail(ManagementError(f"spawn of {container_name!r} failed: {exc}"))
                return
            fqdn = self.dns.register(container_name, lease.ip)
            container_record = ContainerRecord(
                name=container_name,
                node_id=target,
                image=container_image.qualified_name,
                ip=lease.ip,
                fqdn=fqdn,
                group=group,
                epoch=epoch,
            )
            self._containers[container_name] = container_record
            self._track_group(container_record)
            self.spawns += 1
            span.end("ok")
            done.succeed(container_record)

        self.sim.process(run(), name=f"spawn:{container_name}")
        return done

    def destroy_container(self, name: str) -> Signal:
        """Stop + destroy a container and release its lease and DNS record."""
        done = Signal(self.sim, name=f"destroy:{name}")
        record = self.container_record(name)
        node = self._nodes[record.node_id]
        self._destroy_seq += 1
        idempotency_key = f"destroy:{name}:{self._destroy_seq}"
        span = trace.start_span(self.sim, "mgmt.destroy", kind="mgmt",
                                attributes={"container": name})

        def run():
            try:
                response = yield from self._call_with_retry(
                    lambda attempt: self.client.delete(
                        node.ip, NODE_DAEMON_PORT, f"/containers/{name}",
                        body={"idempotency_key": idempotency_key},
                        parent=attempt,
                    ),
                    f"container destroy of {name!r}",
                    parent=span,
                    node_id=record.node_id,
                )
                response.raise_for_status()
            except Exception as exc:  # noqa: BLE001
                span.end("error", str(exc))
                done.fail(ManagementError(f"destroy of {name!r} failed: {exc}"))
                return
            self.dns.unregister(name)
            self.dhcp.release(name)
            self._untrack_group(record)
            del self._containers[name]
            span.end("ok")
            done.succeed(name)

        self.sim.process(run(), name=f"destroy:{name}")
        return done

    def set_limits(self, name: str, **limits) -> Signal:
        """Adjust a container's soft resource limits (Fig. 4 use case)."""
        done = Signal(self.sim, name=f"limits:{name}")
        record = self.container_record(name)
        node = self._nodes[record.node_id]
        span = trace.start_span(self.sim, "mgmt.set_limits", kind="mgmt",
                                attributes={"container": name})

        def run():
            try:
                response = yield from self._call_with_retry(
                    lambda attempt: self.client.post(
                        node.ip, NODE_DAEMON_PORT, f"/containers/{name}/limits",
                        body=limits, parent=attempt,
                    ),
                    f"set_limits on {name!r}",
                    parent=span,
                    node_id=record.node_id,
                )
                response.raise_for_status()
            except Exception as exc:  # noqa: BLE001
                span.end("error", str(exc))
                done.fail(ManagementError(f"set_limits on {name!r} failed: {exc}"))
                return
            span.end("ok")
            done.succeed(response.body)

        self.sim.process(run(), name=f"limits:{name}")
        return done

    def migrate_container(self, name: str, destination: str,
                          reassign_ip: bool = False) -> Signal:
        """Live-migrate via the source node's daemon; Signal -> report dict.

        ``reassign_ip=True`` models subnet-bound ("IP-full") addressing:
        after the move the container receives a *new* DHCP lease on the
        destination and DNS is updated -- so peers holding the old
        address break until they re-resolve.  The default keeps the IP
        (the paper's IP-less-routing goal of seamless migration).
        """
        done = Signal(self.sim, name=f"migrate:{name}")
        record = self.container_record(name)
        if destination not in self._nodes:
            done.fail(ManagementError(f"unknown destination node {destination!r}"))
            return done
        source = self._nodes[record.node_id]
        span = trace.start_span(
            self.sim, "mgmt.migrate", kind="mgmt",
            attributes={"container": name, "source": record.node_id,
                        "destination": destination},
        )

        def run():
            try:
                response = yield from self._call_with_retry(
                    lambda attempt: self.client.post(
                        source.ip, NODE_DAEMON_PORT, f"/containers/{name}/migrate",
                        body={"destination": destination}, parent=attempt,
                    ),
                    f"migration of {name!r} to {destination}",
                    parent=span,
                    node_id=record.node_id,
                )
                response.raise_for_status()
            except Exception as exc:  # noqa: BLE001
                span.end("error", str(exc))
                done.fail(ManagementError(f"migration of {name!r} failed: {exc}"))
                return
            self._untrack_group(record)
            record.node_id = destination
            self._track_group(record)
            if reassign_ip:
                try:
                    old_ip = record.ip
                    self.dhcp.release(name)
                    lease = self.dhcp.request_lease(client_id=name, hostname=name)
                    rebind = yield self.client.post(
                        self._nodes[destination].ip, NODE_DAEMON_PORT,
                        f"/containers/{name}/rebind", body={"ip": lease.ip},
                        parent=span,
                    )
                    rebind.raise_for_status()
                    record.ip = lease.ip
                    self.dns.update(name, lease.ip)
                except Exception as exc:  # noqa: BLE001
                    span.end("error", str(exc))
                    done.fail(ManagementError(
                        f"IP reassignment for {name!r} failed: {exc}"
                    ))
                    return
            span.end("ok")
            done.succeed(response.body)

        self.sim.process(run(), name=f"migrate:{name}")
        return done

    # -- panel ------------------------------------------------------------------------

    def dashboard(self) -> Dashboard:
        """Snapshot the cloud for the web control panel."""
        return Dashboard(self)
