"""The per-Pi API daemon: the node-side half of the management plane.

"There is an API daemon on each Pi providing a RESTful management
interface for facilitating virtual host management and interacting with a
head node (the pimaster)" (§II-A).  The daemon wraps the host's LXC
runtime behind REST routes:

====== =============================== ==========================================
Method Path                            Action
====== =============================== ==========================================
GET    /health                         liveness probe
GET    /metrics                        CPU load, memory, container count, watts
GET    /containers                     list containers (Fig. 4 table rows)
POST   /images                         receive an image push (body = rootfs)
POST   /containers                     create + start a container
POST   /containers/{name}/stop         stop
POST   /containers/{name}/start        start a stopped container
POST   /containers/{name}/freeze       freeze
POST   /containers/{name}/unfreeze     unfreeze
POST   /containers/{name}/limits       adjust soft resource limits (Fig. 4)
POST   /containers/{name}/migrate      live-migrate to a peer node
DELETE /containers/{name}              stop if needed + destroy
====== =============================== ==========================================
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict, Optional, Tuple

from repro.errors import DeadlineExceeded, PiCloudError, RestError
from repro.hostos.kernelhost import HostKernel
from repro.mgmt.rest import RestClient, RestRequest, RestServer
from repro.sim.process import AnyOf, Signal, Timeout
from repro.virt.container import ContainerState
from repro.virt.image import ContainerImage
from repro.virt.lxc import LxcRuntime
from repro.virt.migration import live_migrate

NODE_DAEMON_PORT = 8600
IMAGE_CACHE_DIR = "/var/cache/picloud/images"


class NodeDaemon:
    """One Pi's management agent: REST façade over its LXC runtime."""

    def __init__(
        self,
        kernel: HostKernel,
        runtime: Optional[LxcRuntime] = None,
        port: int = NODE_DAEMON_PORT,
        peer_resolver: Optional[Callable[[str], "NodeDaemon"]] = None,
        op_deadline_s: Optional[float] = None,
    ) -> None:
        self.kernel = kernel
        self.sim = kernel.sim
        self.runtime = runtime or LxcRuntime(kernel)
        # peer_resolver("pi-r1-n3") -> that node's daemon; installed by the
        # pimaster so migrations can find their destination runtime.
        self.peer_resolver = peer_resolver
        # Watchdog for timed lifecycle work (create/start/migrate): the
        # guarded operation fails with HTTP 504 after this many simulated
        # seconds instead of blocking the daemon forever.
        self.op_deadline_s = op_deadline_s
        self.deadline_trips = 0
        self._images: Dict[str, ContainerImage] = {}
        # Idempotency for mutating routes: a completed result per key, plus
        # an in-flight Signal so a retry that overlaps the original attempt
        # waits for it instead of re-running the work.  Results are kept
        # for the daemon's lifetime (keys are unique per pimaster call, so
        # the map grows with real operations, not retries).
        self._idem_results: Dict[str, Tuple[int, object]] = {}
        self._idem_inflight: Dict[str, Signal] = {}
        self.idempotent_replays = 0
        # Fencing: highest epoch ever seen per container name.  Creates
        # and epoch-stamped destroys below the recorded epoch are stale
        # (issued before a partition by a pimaster that has since moved
        # on) and are rejected with 409.  Populated only when the
        # pimaster runs with fencing on; never pruned -- the whole point
        # is to remember epochs across a container's destruction.
        self._container_epochs: Dict[str, int] = {}
        self.stale_epoch_rejections = 0
        self.server = RestServer(kernel, port, name=f"daemon:{kernel.node_id}")
        self._register_routes()

    def _idempotent(self, key: Optional[str], work: Callable):
        """Run ``work()`` at most once per idempotency key.

        A generator helper.  ``work`` returns either a plain
        ``(status, body)`` or a generator producing one.  With no key the
        work simply runs; with a key, a finished result is replayed
        verbatim, and a retry racing the original attempt waits on its
        in-flight signal.  Failures are NOT cached -- a later retry after
        an error re-runs the work.
        """
        if key is None:
            result = work()
            if inspect.isgenerator(result):
                result = yield from result
            return result
        cached = self._idem_results.get(key)
        if cached is not None:
            self.idempotent_replays += 1
            return cached
        pending = self._idem_inflight.get(key)
        if pending is not None:
            self.idempotent_replays += 1
            result = yield pending
            return result
        signal = Signal(self.sim, name=f"idem:{key}")
        self._idem_inflight[key] = signal
        try:
            result = work()
            if inspect.isgenerator(result):
                result = yield from result
        except BaseException as exc:
            self._idem_inflight.pop(key, None)
            signal.fail(exc)
            raise
        self._idem_results[key] = result
        self._idem_inflight.pop(key, None)
        signal.succeed(result)
        return result

    def _guarded(self, waitable, what: str, parent=None):
        """Wait on ``waitable`` with the daemon's operation deadline.

        A generator helper (``yield from self._guarded(...)``): returns the
        waitable's value, or raises :class:`DeadlineExceeded` once
        ``op_deadline_s`` simulated seconds pass without completion.
        ``parent`` (the serving span's context) stamps the deadline error
        with its ``trace_id`` so 504s are correlatable with their trace.
        """
        if self.op_deadline_s is None:
            result = yield waitable
            return result
        guard = Timeout(self.sim, self.op_deadline_s)
        try:
            winner, value = yield AnyOf(self.sim, [waitable, guard])
        finally:
            guard.cancel()
        if winner == 1:
            self.deadline_trips += 1
            raise DeadlineExceeded(
                f"{what} on {self.node_id} exceeded the "
                f"{self.op_deadline_s}s operation deadline",
                deadline_s=self.op_deadline_s,
                trace_id=getattr(parent, "trace_id", None),
            )
        return value

    @staticmethod
    def _trace_504(exc: DeadlineExceeded) -> RestError:
        """A 504 response carrying the timed-out operation's trace id."""
        extra = {"trace_id": exc.trace_id} if exc.trace_id is not None else None
        return RestError(504, str(exc), extra=extra)

    @property
    def node_id(self) -> str:
        return self.kernel.node_id

    # -- local image cache --------------------------------------------------------

    def has_image(self, qualified_name: str) -> bool:
        return qualified_name in self._images

    def cached_images(self) -> list[str]:
        return sorted(self._images)

    # -- route handlers --------------------------------------------------------------

    def _register_routes(self) -> None:
        server = self.server
        server.add_route("GET", "/health", self._health)
        server.add_route("GET", "/metrics", self._metrics)
        server.add_route("POST", "/probe", self._probe_peer)
        server.add_route("GET", "/containers", self._list_containers)
        server.add_route("POST", "/images", self._receive_image)
        server.add_route("POST", "/containers", self._create_container)
        server.add_route("POST", "/containers/{name}/stop", self._stop)
        server.add_route("POST", "/containers/{name}/start", self._start)
        server.add_route("POST", "/containers/{name}/freeze", self._freeze)
        server.add_route("POST", "/containers/{name}/unfreeze", self._unfreeze)
        server.add_route("POST", "/containers/{name}/limits", self._limits)
        server.add_route("POST", "/containers/{name}/migrate", self._migrate)
        server.add_route("POST", "/containers/{name}/rebind", self._rebind)
        server.add_route("DELETE", "/containers/{name}", self._destroy)

    def _health(self, request: RestRequest):
        return 200, {"status": "ok", "node": self.node_id, "time": self.sim.now}

    def _probe_peer(self, request: RestRequest):
        """Witness probe: can *this* node reach the given daemon?

        The gen-2 failure detector asks alive peers to corroborate an
        UNREACHABLE verdict before declaring a node DEAD.  The answer is
        from this node's vantage point on the fabric, so a node on the
        pimaster's far side of a partition answers "reachable" for its
        partition-mates.
        """
        body = request.body or {}
        target_ip = body.get("ip")
        if target_ip is None:
            raise RestError(400, "missing field 'ip'")
        port = body.get("port", NODE_DAEMON_PORT)
        client = RestClient(self.kernel.netstack, timeout_s=2.0)
        reachable = False
        try:
            response = yield client.get(target_ip, port, "/health")
            reachable = response.ok
        except Exception:  # noqa: BLE001 - unreachable from here too
            reachable = False
        return 200, {"witness": self.node_id, "ip": target_ip,
                     "reachable": reachable}

    def _metrics(self, request: RestRequest):
        machine = self.kernel.machine
        return 200, {
            "node": self.node_id,
            "cpu_load": self.kernel.cpu_load(),
            "mem_used": machine.memory.used,
            "mem_capacity": machine.memory.capacity,
            "disk_used": machine.storage.used,
            "disk_capacity": machine.storage.capacity,
            "containers_running": self.runtime.running_count(),
            "containers_total": len(self.runtime.containers()),
            "watts": machine.power.current_watts,
        }

    def _list_containers(self, request: RestRequest):
        rows = []
        for container in self.runtime.containers():
            row = container.describe()
            # Fencing epoch, only for containers spawned with one -- the
            # wire format is unchanged for unfenced deployments.
            epoch = self._container_epochs.get(container.name)
            if epoch is not None:
                row["epoch"] = epoch
            rows.append(row)
        return 200, rows

    def _receive_image(self, request: RestRequest):
        body = request.body or {}
        try:
            image = ContainerImage(
                name=body["name"],
                version=body["version"],
                rootfs_bytes=body["size"],
                idle_memory_bytes=body.get("idle_memory", 30 * 1024 * 1024),
                app_class=body.get("app_class", "generic"),
            )
        except (KeyError, PiCloudError) as exc:
            raise RestError(400, f"bad image descriptor: {exc}") from exc
        path = f"{IMAGE_CACHE_DIR}/{image.name}-v{image.version}.rootfs"
        if self.kernel.filesystem.exists(path):
            self._images[image.qualified_name] = image
            return 200, {"cached": True}
        # Write the received rootfs to the SD card (timed).
        yield self.kernel.filesystem.write(
            path, image.rootfs_bytes, metadata={"image": image.qualified_name}
        )
        self._images[image.qualified_name] = image
        return 201, {"cached": False, "image": image.qualified_name}

    def _create_container(self, request: RestRequest):
        body = request.body or {}
        for key in ("name", "image"):
            if key not in body:
                raise RestError(400, f"missing field {key!r}")
        ctx = request.server_trace or request.trace
        result = yield from self._idempotent(
            body.get("idempotency_key"),
            lambda: self._create_container_work(body, ctx),
        )
        return result

    def _check_epoch(self, name: str, epoch: Optional[int], op: str) -> None:
        """Fencing gate: reject ops stamped with an epoch we've outgrown."""
        if epoch is None:
            return
        current = self._container_epochs.get(name)
        if current is not None and epoch < current:
            self.stale_epoch_rejections += 1
            raise RestError(
                409,
                f"stale fencing epoch {epoch} for {name!r} on "
                f"{self.node_id} (current epoch {current}); {op} rejected",
            )

    def _create_container_work(self, body: dict, ctx):
        name = body["name"]
        epoch = body.get("epoch")
        self._check_epoch(name, epoch, "create")
        if epoch is not None:
            current = self._container_epochs.get(name)
            if current is not None and epoch > current:
                # A newer-epoch create supersedes any copy this node still
                # runs -- e.g. a stale replica that survived behind a healed
                # partition while the pimaster respawned the name elsewhere
                # and then placed it back here.  Newest epoch wins: the old
                # incarnation is destroyed before the new one is created.
                try:
                    stale = self.runtime.container(name)
                except PiCloudError:
                    stale = None
                if stale is not None:
                    if stale.state in (ContainerState.RUNNING,
                                       ContainerState.FROZEN):
                        self.runtime.lxc_stop(stale)
                    self.runtime.lxc_destroy(stale)
        image = self._images.get(body["image"])
        if image is None:
            raise RestError(409, f"image {body['image']!r} not cached on {self.node_id}")
        create = self.runtime.lxc_create(
            body["name"],
            image,
            cpu_shares=body.get("cpu_shares", 1024),
            cpu_quota=body.get("cpu_quota"),
            memory_limit_bytes=body.get("memory_limit_bytes"),
            parent=ctx,
        )
        try:
            container = yield from self._guarded(create, "container create",
                                                 parent=ctx)
        except DeadlineExceeded as exc:
            raise self._trace_504(exc) from exc
        except Exception as exc:
            raise RestError(409, f"create failed: {exc}") from exc
        if body.get("start", True):
            try:
                yield from self._guarded(
                    self.runtime.lxc_start(container, ip=body.get("ip"),
                                           parent=ctx),
                    "container start",
                    parent=ctx,
                )
            except DeadlineExceeded as exc:
                self.runtime.lxc_destroy(container)
                raise self._trace_504(exc) from exc
            except Exception as exc:
                self.runtime.lxc_destroy(container)
                raise RestError(507, f"start failed: {exc}") from exc
        if epoch is not None:
            self._container_epochs[name] = epoch
        return 201, container.describe()

    def _container_or_404(self, name: str):
        try:
            return self.runtime.container(name)
        except PiCloudError as exc:
            raise RestError(404, str(exc)) from exc

    def _stop(self, request: RestRequest, name: str):
        container = self._container_or_404(name)
        try:
            self.runtime.lxc_stop(container)
        except PiCloudError as exc:
            raise RestError(409, str(exc)) from exc
        return 200, container.describe()

    def _start(self, request: RestRequest, name: str):
        container = self._container_or_404(name)
        body = request.body or {}
        ctx = request.server_trace or request.trace
        try:
            yield from self._guarded(
                self.runtime.lxc_start(container, ip=body.get("ip"), parent=ctx),
                "container start",
                parent=ctx,
            )
        except DeadlineExceeded as exc:
            raise self._trace_504(exc) from exc
        except Exception as exc:
            raise RestError(409, f"start failed: {exc}") from exc
        return 200, container.describe()

    def _freeze(self, request: RestRequest, name: str):
        container = self._container_or_404(name)
        try:
            self.runtime.lxc_freeze(container)
        except PiCloudError as exc:
            raise RestError(409, str(exc)) from exc
        return 200, container.describe()

    def _unfreeze(self, request: RestRequest, name: str):
        container = self._container_or_404(name)
        try:
            self.runtime.lxc_unfreeze(container)
        except PiCloudError as exc:
            raise RestError(409, str(exc)) from exc
        return 200, container.describe()

    def _limits(self, request: RestRequest, name: str):
        """The Fig. 4 'soft per-VM resource utilisation limits' endpoint."""
        container = self._container_or_404(name)
        body = request.body or {}
        try:
            if "cpu_shares" in body:
                container.cgroup.set_cpu_shares(body["cpu_shares"])
            if "cpu_quota" in body:
                container.cgroup.set_cpu_quota(body["cpu_quota"])
            if "memory_limit_bytes" in body:
                container.cgroup.set_memory_limit(body["memory_limit_bytes"])
            if "net_rate_cap" in body:
                container.set_network_cap(body["net_rate_cap"])
        except (ValueError, PiCloudError) as exc:
            raise RestError(400, str(exc)) from exc
        self.kernel.scheduler.notify_change()
        return 200, container.describe()

    def _migrate(self, request: RestRequest, name: str):
        container = self._container_or_404(name)
        body = request.body or {}
        destination_id = body.get("destination")
        if destination_id is None:
            raise RestError(400, "missing field 'destination'")
        if self.peer_resolver is None:
            raise RestError(501, "node has no peer resolver configured")
        try:
            peer = self.peer_resolver(destination_id)
        except KeyError:
            raise RestError(404, f"unknown destination node {destination_id!r}") from None
        ctx = request.server_trace or request.trace
        try:
            report = yield from self._guarded(
                live_migrate(container, peer.runtime, parent=ctx),
                "live migration",
                parent=ctx,
            )
        except DeadlineExceeded as exc:
            raise self._trace_504(exc) from exc
        except Exception as exc:
            raise RestError(409, f"migration failed: {exc}") from exc
        return 200, {
            "container": report.container,
            "source": report.source,
            "destination": report.destination,
            "rounds": report.rounds,
            "total_bytes": report.total_bytes,
            "downtime_s": report.downtime_s,
            "duration_s": report.duration_s,
            "converged": report.converged,
        }

    def _rebind(self, request: RestRequest, name: str):
        """Re-address a running container (subnet-bound IP after migration).

        Unbinds the current address and binds the supplied one.  Used by
        the pimaster's ``reassign_ip`` migration mode -- the IP-full
        baseline of the §III IP-less routing study.
        """
        container = self._container_or_404(name)
        body = request.body or {}
        new_ip = body.get("ip")
        if new_ip is None:
            raise RestError(400, "missing field 'ip'")
        if not container.is_running:
            raise RestError(409, f"container {name!r} is not running")
        stack = self.kernel.netstack
        old_ip = container.ip
        try:
            if old_ip is not None:
                stack.unbind_address(old_ip)
            stack.bind_address(new_ip)
        except Exception as exc:
            raise RestError(409, f"rebind failed: {exc}") from exc
        if old_ip is not None:
            stack.rekey_listeners(old_ip, new_ip)
            stack.set_rate_cap(old_ip, None)
        if container.net_rate_cap is not None:
            stack.set_rate_cap(new_ip, container.net_rate_cap)
        container.ip = new_ip
        return 200, {"name": name, "old_ip": old_ip, "ip": new_ip}

    def _destroy(self, request: RestRequest, name: str):
        body = request.body or {}
        result = yield from self._idempotent(
            body.get("idempotency_key"),
            lambda: self._destroy_work(name, body.get("epoch")),
        )
        return result

    def _destroy_work(self, name: str, epoch: Optional[int] = None):
        # An epoch-stamped destroy must not kill a *newer* incarnation
        # (a stale destroy retry from before a partition); destroys
        # without an epoch are unfenced (legacy / operator-driven) and
        # always allowed.
        self._check_epoch(name, epoch, "destroy")
        container = self._container_or_404(name)
        if container.state in (ContainerState.RUNNING, ContainerState.FROZEN):
            self.runtime.lxc_stop(container)
        self.runtime.lxc_destroy(container)
        return 200, {"destroyed": name}
