"""Failure detection and circuit breaking for the management plane.

The paper motivates the testbed with the unpredictability of real DC
behaviour (§I cites Gill et al.'s failure study); a control plane that is
worth studying must therefore *notice* failures, not just suffer them.
This module provides the two mechanisms the pimaster uses to do so:

* :class:`FailureDetector` -- heartbeat probes (`GET /health` over the
  real fabric) driving a per-node lifecycle state machine::

      alive -> suspect -> dead -> rejoining -> alive

  Transitions use a consecutive-miss accrual rule (``suspect_misses``
  unanswered heartbeats to suspect, ``dead_misses`` to declare death) and
  are emitted as ``health.node-*`` trace instants parented on the fault
  that caused them, so the chain *fault -> detection -> recovery* is
  assertable from an exported trace.

* :class:`CircuitBreaker` -- a per-node breaker over management
  transport.  After ``failure_threshold`` consecutive transport failures
  the breaker opens and orchestration calls fail fast instead of
  hammering a dead daemon; after ``reset_timeout_s`` one half-open probe
  is let through, and a success closes the breaker again.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional

from repro import trace
from repro.mgmt.rest import RestClient
from repro.sim.kernel import Simulator
from repro.sim.process import AllOf, Timeout
from repro.trace.span import SpanContext

DEFAULT_HEARTBEAT_INTERVAL_S = 2.0
DEFAULT_SUSPECT_MISSES = 2
DEFAULT_DEAD_MISSES = 4


class NodeHealth(enum.Enum):
    """Lifecycle state of one managed node, as seen by the pimaster.

    UNREACHABLE is the gen-2 (partition-aware) detector's refinement of
    DEAD: the pimaster cannot reach the node, but it has not proven the
    node is down -- a partitioned node looks exactly like a dead one from
    one vantage point.  UNREACHABLE nodes are never auto-evacuated; only
    after ``unreachable_grace_s`` elapses *and* no witness peer can reach
    the node either does it become DEAD.
    """

    ALIVE = "alive"
    SUSPECT = "suspect"
    UNREACHABLE = "unreachable"
    DEAD = "dead"
    REJOINING = "rejoining"


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Transport circuit breaker for one node's management endpoint.

    ``allow()`` gates each attempt: CLOSED always allows; OPEN allows
    nothing until ``reset_timeout_s`` has elapsed, at which point the
    breaker moves to HALF_OPEN and admits exactly one probe; the probe's
    ``record_success`` / ``record_failure`` closes or re-opens it.
    """

    def __init__(self, sim: Simulator, failure_threshold: int = 5,
                 reset_timeout_s: float = 60.0, node_id: str = "") -> None:
        if failure_threshold < 1:
            raise ValueError("breaker failure_threshold must be >= 1")
        if reset_timeout_s <= 0:
            raise ValueError("breaker reset_timeout_s must be positive")
        self.sim = sim
        self.node_id = node_id
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        self.opened_count = 0
        self.fast_fails = 0
        self.probes = 0
        self._probe_inflight = False

    def allow(self) -> bool:
        """May an attempt be sent now?  Counts fast-fails when not."""
        if self.state is BreakerState.CLOSED:
            return True
        if (self.state is BreakerState.OPEN
                and self.sim.now - self.opened_at >= self.reset_timeout_s):
            self.state = BreakerState.HALF_OPEN
            self._probe_inflight = False
        if self.state is BreakerState.HALF_OPEN:
            if not self._probe_inflight:
                self._probe_inflight = True
                self.probes += 1
                return True
            # One probe already in flight; everything else fast-fails.
        self.fast_fails += 1
        return False

    def half_open_now(self) -> None:
        """Force the half-open probe window (out-of-band repair evidence).

        Used by the rejoin path: a node that just re-announced itself is
        better evidence than the reset timer, so the next attempt becomes
        the probe regardless of how long the breaker has been open.
        """
        if self.state is BreakerState.OPEN:
            self.state = BreakerState.HALF_OPEN
            self._probe_inflight = False

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self._probe_inflight = False
        if self.state is not BreakerState.CLOSED:
            self.state = BreakerState.CLOSED
            self.opened_at = None

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        self._probe_inflight = False
        if self.state is BreakerState.HALF_OPEN or (
            self.state is BreakerState.CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            if self.state is not BreakerState.OPEN:
                self.opened_count += 1
            self.state = BreakerState.OPEN
            self.opened_at = self.sim.now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<CircuitBreaker {self.node_id} {self.state.value} "
                f"fails={self.consecutive_failures}>")


# listener(node_id, old_state, new_state, transition_context)
TransitionListener = Callable[[str, NodeHealth, NodeHealth,
                               Optional[SpanContext]], None]


class FailureDetector:
    """Heartbeat-based failure detection for every registered node.

    Each interval, every watched node that is not already DEAD is probed
    in parallel with ``GET /health`` (a dedicated short-timeout client,
    so a dead node cannot stall the detection of others).  Consecutive
    misses drive the state machine; probe outcomes also feed the node's
    :class:`CircuitBreaker` when ``breaker_for`` is wired.

    ``fault_context_provider(node_id)`` (installed by the cloud) returns
    the trace context of the most recent fault instant against a node, so
    ``health.node-suspect`` / ``health.node-dead`` instants descend from
    the fault that caused them.
    """

    def __init__(
        self,
        sim: Simulator,
        client: RestClient,
        interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S,
        suspect_misses: int = DEFAULT_SUSPECT_MISSES,
        dead_misses: int = DEFAULT_DEAD_MISSES,
        daemon_port: int = 8600,
        fault_context_provider: Optional[
            Callable[[str], Optional[SpanContext]]] = None,
        breaker_for: Optional[Callable[[str], Optional[CircuitBreaker]]] = None,
        unreachable_grace_s: float = 0.0,
        witness_count: int = 2,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("heartbeat interval must be positive")
        if suspect_misses < 1 or dead_misses <= suspect_misses:
            raise ValueError(
                "need 1 <= suspect_misses < dead_misses "
                f"(got {suspect_misses}, {dead_misses})"
            )
        if unreachable_grace_s < 0:
            raise ValueError("unreachable_grace_s must be >= 0")
        if witness_count < 1:
            raise ValueError("witness_count must be >= 1")
        self.sim = sim
        self.client = client
        self.interval_s = interval_s
        self.suspect_misses = suspect_misses
        self.dead_misses = dead_misses
        self.daemon_port = daemon_port
        # Gen-2 (partition-aware) detection: > 0 switches accrued
        # dead_misses to UNREACHABLE and requires witness corroboration
        # plus grace expiry before declaring DEAD.  0.0 = legacy binary
        # detector, byte-identical behaviour.
        self.unreachable_grace_s = unreachable_grace_s
        self.witness_count = witness_count
        self.fault_context_provider = fault_context_provider
        self.breaker_for = breaker_for
        self._targets: Dict[str, str] = {}          # node_id -> management IP
        self._states: Dict[str, NodeHealth] = {}
        self._misses: Dict[str, int] = {}
        # Trace context of each node's latest transition instant, so the
        # next transition chains onto it (suspect -> dead -> ...).
        self._last_ctx: Dict[str, Optional[SpanContext]] = {}
        self._listeners: List[TransitionListener] = []
        self.heartbeats_sent = 0
        self.heartbeats_missed = 0
        self.transitions: Dict[str, int] = {}       # "alive->suspect" -> count
        # Gen-2 bookkeeping: when each node entered UNREACHABLE, the
        # cumulative seconds spent there, and witness-probe counters.
        self._unreachable_since: Dict[str, float] = {}
        self.unreachable_s = 0.0
        self.witness_probes = 0
        self.witness_confirmations = 0
        self._witness_inflight: set[str] = set()
        self._stopped = False
        self._process = None

    @property
    def partition_aware(self) -> bool:
        """True when the gen-2 (UNREACHABLE + witness) detector is on."""
        return self.unreachable_grace_s > 0

    # -- membership -------------------------------------------------------

    def watch(self, node_id: str, ip: str) -> None:
        self._targets[node_id] = ip
        self._states.setdefault(node_id, NodeHealth.ALIVE)
        self._misses.setdefault(node_id, 0)

    def unwatch(self, node_id: str) -> None:
        self._targets.pop(node_id, None)

    def rewatch(self, node_id: str, ip: str) -> None:
        """Refresh a node's probe address (rejoin gives a fresh lease)."""
        self._targets[node_id] = ip
        self._misses[node_id] = 0

    def state(self, node_id: str) -> NodeHealth:
        return self._states.get(node_id, NodeHealth.ALIVE)

    def states(self) -> Dict[str, NodeHealth]:
        return dict(self._states)

    def nodes_in(self, state: NodeHealth) -> List[str]:
        return sorted(n for n, s in self._states.items() if s is state)

    def transition_context(self, node_id: str) -> Optional[SpanContext]:
        """Trace context of the node's most recent health transition."""
        return self._last_ctx.get(node_id)

    def add_listener(self, listener: TransitionListener) -> None:
        self._listeners.append(listener)

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        if self._process is None:
            self._process = self.sim.process(self._probe_loop(),
                                             name="health.detector")

    def stop(self) -> None:
        self._stopped = True
        if self._process is not None:
            self._process.interrupt("failure detector stopped")

    # -- probing ----------------------------------------------------------

    def _probe_loop(self):
        while not self._stopped:
            # Legacy mode writes DEAD off permanently (rejoin is the only
            # way back); the gen-2 detector keeps probing UNREACHABLE and
            # DEAD nodes so a partition heal is noticed promptly.
            probes = [
                self.sim.process(self._probe(node_id, ip),
                                 name=f"health.probe:{node_id}")
                for node_id, ip in sorted(self._targets.items())
                if (self.partition_aware
                    or self._states.get(node_id) is not NodeHealth.DEAD)
            ]
            if probes:
                yield AllOf(self.sim, probes)
            yield Timeout(self.sim, self.interval_s)

    def _probe(self, node_id: str, ip: str):
        self.heartbeats_sent += 1
        ok = False
        try:
            response = yield self.client.get(ip, self.daemon_port, "/health")
            ok = response.ok
        except Exception:  # noqa: BLE001 - any transport failure is a miss
            ok = False
        if self._stopped or node_id not in self._targets:
            return
        breaker = self.breaker_for(node_id) if self.breaker_for else None
        if ok:
            if breaker is not None:
                breaker.record_success()
            self._heartbeat_ok(node_id)
        else:
            self.heartbeats_missed += 1
            if breaker is not None:
                breaker.record_failure()
            self._heartbeat_miss(node_id)
            if (self.partition_aware
                    and self._states.get(node_id) is NodeHealth.UNREACHABLE
                    and node_id not in self._witness_inflight):
                since = self._unreachable_since.get(node_id)
                if (since is not None
                        and self.sim.now - since >= self.unreachable_grace_s):
                    self._witness_inflight.add(node_id)
                    try:
                        yield from self._witness_check(node_id, ip)
                    finally:
                        self._witness_inflight.discard(node_id)

    def _witness_check(self, node_id: str, ip: str):
        """Ask alive peers whether *they* can reach the node.

        An UNREACHABLE node whose grace period has expired is only
        declared DEAD when none of up to ``witness_count`` alive peers
        can reach its daemon either -- that distinguishes "the pimaster
        is partitioned from it" (a witness inside the partition still
        sees it) from "it is actually down".  A positive witness keeps
        the node UNREACHABLE indefinitely: its containers keep running
        and must not be double-spawned.
        """
        witnesses = [
            peer for peer, state in sorted(self._states.items())
            if peer != node_id and peer in self._targets
            and state is NodeHealth.ALIVE
        ][:self.witness_count]
        reachable = False
        for peer in witnesses:
            self.witness_probes += 1
            try:
                response = yield self.client.post(
                    self._targets[peer], self.daemon_port, "/probe",
                    {"ip": ip, "port": self.daemon_port},
                )
                if response.ok and (response.body or {}).get("reachable"):
                    reachable = True
                    break
            except Exception:  # noqa: BLE001 - witness unreachable too
                continue
        if self._stopped or node_id not in self._targets:
            return
        if reachable:
            self.witness_confirmations += 1
            return
        since = self._unreachable_since.get(node_id)
        if (self._states.get(node_id) is NodeHealth.UNREACHABLE
                and since is not None
                and self.sim.now - since >= self.unreachable_grace_s):
            self._transition(node_id, NodeHealth.DEAD)

    def _heartbeat_ok(self, node_id: str) -> None:
        self._misses[node_id] = 0
        state = self._states.get(node_id)
        recoverable = (NodeHealth.SUSPECT, NodeHealth.REJOINING)
        if self.partition_aware:
            # A heal makes an UNREACHABLE (or witness-less false-DEAD)
            # node answer again; legacy mode never probes DEAD nodes so
            # this branch cannot fire there.
            recoverable = (NodeHealth.SUSPECT, NodeHealth.REJOINING,
                           NodeHealth.UNREACHABLE, NodeHealth.DEAD)
        if state in recoverable:
            self._transition(node_id, NodeHealth.ALIVE)

    def _heartbeat_miss(self, node_id: str) -> None:
        misses = self._misses.get(node_id, 0) + 1
        self._misses[node_id] = misses
        state = self._states.get(node_id, NodeHealth.ALIVE)
        # The gen-2 detector interposes UNREACHABLE where the legacy one
        # jumps straight to DEAD; the UNREACHABLE -> DEAD step then needs
        # witness corroboration + grace expiry (see _witness_check).
        terminal = (NodeHealth.UNREACHABLE if self.partition_aware
                    else NodeHealth.DEAD)
        if state in (NodeHealth.ALIVE, NodeHealth.REJOINING):
            if misses >= self.suspect_misses:
                self._transition(node_id, NodeHealth.SUSPECT)
                if misses >= self.dead_misses:
                    self._transition(node_id, terminal)
        elif state is NodeHealth.SUSPECT and misses >= self.dead_misses:
            self._transition(node_id, terminal)

    # -- the state machine ------------------------------------------------

    def mark(self, node_id: str, new: NodeHealth, parent=None) -> None:
        """Externally drive a transition (the rejoin path uses this)."""
        self._misses[node_id] = 0
        self._transition(node_id, new, parent=parent)

    def _transition(self, node_id: str, new: NodeHealth, parent=None) -> None:
        old = self._states.get(node_id, NodeHealth.ALIVE)
        if old is new:
            return
        self._states[node_id] = new
        now = self.sim.now
        if old is NodeHealth.UNREACHABLE:
            since = self._unreachable_since.pop(node_id, None)
            if since is not None:
                self.unreachable_s += now - since
        if new is NodeHealth.UNREACHABLE:
            self._unreachable_since[node_id] = now
        key = f"{old.value}->{new.value}"
        self.transitions[key] = self.transitions.get(key, 0) + 1
        ctx = parent
        if ctx is None:
            # Entering suspicion chains onto the causing fault (when the
            # cloud knows one); deeper transitions chain onto the previous
            # transition so the whole episode shares one trace.  A gen-2
            # recovery (UNREACHABLE/DEAD answering again) chains onto the
            # *heal* instant instead -- the cloud re-points the node's
            # fault context at the heal -- so reconciliation provably
            # descends from the partition healing.
            if new is NodeHealth.SUSPECT and self.fault_context_provider:
                ctx = self.fault_context_provider(node_id)
            elif (new is NodeHealth.ALIVE
                    and old in (NodeHealth.UNREACHABLE, NodeHealth.DEAD)
                    and self.fault_context_provider):
                ctx = self.fault_context_provider(node_id)
            if ctx is None:
                ctx = self._last_ctx.get(node_id)
        span = trace.instant(
            self.sim, f"health.node-{new.value}", parent=ctx, kind="health",
            attributes={"node": node_id, "from": old.value},
            status="error" if new in (NodeHealth.DEAD,
                                      NodeHealth.UNREACHABLE) else "ok",
        )
        context = span.context
        self._last_ctx[node_id] = context
        for listener in list(self._listeners):
            listener(node_id, old, new, context)

    def unreachable_seconds(self) -> float:
        """Cumulative seconds nodes have spent UNREACHABLE (open included)."""
        total = self.unreachable_s
        now = self.sim.now
        for since in self._unreachable_since.values():
            total += now - since
        return total
