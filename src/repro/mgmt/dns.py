"""DNS: the pimaster's naming-policy service.

Nodes register as ``<node>.<zone>`` and containers as ``<name>.<zone>``;
applications address each other by name, so migrations (which keep the
IP) and re-spawns (which change it) both resolve correctly.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import NameError_


class DnsServer:
    """A-record store with a zone-suffix naming policy."""

    def __init__(self, zone: str = "picloud.dcs.gla.ac.uk") -> None:
        self.zone = zone.strip(".")
        self._records: Dict[str, str] = {}
        self.queries = 0
        self.misses = 0

    def fqdn(self, name: str) -> str:
        """Apply the naming policy: qualify a bare name into the zone."""
        name = name.strip(".").lower()
        if name.endswith(self.zone):
            return name
        return f"{name}.{self.zone}"

    def register(self, name: str, ip: str) -> str:
        """Add an A record; returns the FQDN.  Duplicate names rejected."""
        fqdn = self.fqdn(name)
        if fqdn in self._records:
            raise NameError_(f"{fqdn} already registered to {self._records[fqdn]}")
        self._records[fqdn] = ip
        return fqdn

    def update(self, name: str, ip: str) -> str:
        """Point an existing record at a new address (re-spawn case)."""
        fqdn = self.fqdn(name)
        if fqdn not in self._records:
            raise NameError_(f"no record for {fqdn}")
        self._records[fqdn] = ip
        return fqdn

    def unregister(self, name: str) -> None:
        fqdn = self.fqdn(name)
        if self._records.pop(fqdn, None) is None:
            raise NameError_(f"no record for {fqdn}")

    def resolve(self, name: str) -> str:
        """A-record lookup; raises on NXDOMAIN."""
        self.queries += 1
        fqdn = self.fqdn(name)
        try:
            return self._records[fqdn]
        except KeyError:
            self.misses += 1
            raise NameError_(f"NXDOMAIN: {fqdn}") from None

    def records(self) -> dict[str, str]:
        return dict(self._records)
