"""The pimaster's monitoring poller.

"Typical use-case scenarios include remote monitoring of the CPU load on
some/all Pi nodes" (§II-C).  The poller GETs every node's ``/metrics``
endpoint over the real fabric (so monitoring traffic is part of the
workload) and keeps both the latest snapshot and a CPU-load time series
per node -- the data behind the Fig. 4 dashboard.

Two scale optimisations over the naive fixed-interval loop:

* **Batched polling** -- all due nodes are polled concurrently each tick
  (one gather barrier) instead of serially awaiting each response, so a
  slow node does not stretch the whole sweep.
* **Idle backoff** -- a node whose metrics did not change since the last
  poll has its next poll pushed out by ``idle_backoff``× (capped at
  ``max_interval_s``); the first changed sample snaps it back to the base
  interval.  A mostly-idle fleet stops generating O(nodes) REST round
  trips (each of which is many kernel events) per base interval.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.errors import ConfigurationError
from repro.mgmt.rest import RestClient
from repro.sim.kernel import Simulator
from repro.sim.process import Signal, Timeout
from repro.telemetry.series import TimeSeries

_DUE_EPSILON = 1e-9


def _gather(sim: Simulator, signals: Iterable[Signal]) -> Signal:
    """Succeed once every child signal triggered, success or failure.

    Unlike :class:`~repro.sim.process.AllOf` this never fails fast: a
    poll sweep must ingest every response, including the errors.
    """
    children = list(signals)
    done = Signal(sim, name="monitoring.gather")
    remaining = len(children)
    if remaining == 0:
        done.succeed([])
        return done

    def on_child(_sig: Signal) -> None:
        nonlocal remaining
        remaining -= 1
        if remaining == 0:
            done.succeed(children)

    for child in children:
        child.add_done_callback(on_child)
    return done


class MonitoringService:
    """Periodic metrics collection from registered node daemons."""

    def __init__(
        self,
        sim: Simulator,
        client: RestClient,
        interval_s: float = 5.0,
        daemon_port: int = 8600,
        idle_backoff: float = 2.0,
        max_interval_s: Optional[float] = None,
    ) -> None:
        if interval_s <= 0:
            raise ConfigurationError("monitoring interval must be positive")
        if idle_backoff < 1.0:
            raise ConfigurationError(
                f"idle_backoff must be >= 1.0 (1.0 disables), got {idle_backoff}"
            )
        if max_interval_s is not None and max_interval_s < interval_s:
            raise ConfigurationError(
                "max_interval_s must be >= interval_s "
                f"(got {max_interval_s} < {interval_s})"
            )
        self.sim = sim
        self.client = client
        self.interval_s = interval_s
        self.daemon_port = daemon_port
        self.idle_backoff = idle_backoff
        self.max_interval_s = (
            max_interval_s if max_interval_s is not None else interval_s * 8
        )
        self._targets: Dict[str, str] = {}  # node_id -> management IP
        self.latest: Dict[str, dict] = {}
        self.cpu_series: Dict[str, TimeSeries] = {}
        self.poll_errors = 0
        self.polls = 0
        self._stopped = False
        self._process: Optional[object] = None
        # Adaptive schedule: when each node is next due and its current
        # (possibly backed-off) polling interval.
        self._next_poll: Dict[str, float] = {}
        self._intervals: Dict[str, float] = {}

    def watch(self, node_id: str, ip: str) -> None:
        self._targets[node_id] = ip
        self.cpu_series.setdefault(node_id, TimeSeries(f"{node_id}.cpu"))
        # Deterministic phase stagger: spread first polls across the base
        # interval (16 buckets, by registration order) so a large fleet's
        # sweeps do not all align into one burst of concurrent flows.
        phase = (len(self._intervals) % 16) / 16.0
        self._next_poll[node_id] = self.sim.now + phase * self.interval_s
        self._intervals[node_id] = self.interval_s

    def unwatch(self, node_id: str) -> None:
        self._targets.pop(node_id, None)
        self.latest.pop(node_id, None)
        self._next_poll.pop(node_id, None)
        self._intervals.pop(node_id, None)

    def start(self) -> None:
        if self._process is None:
            self._process = self.sim.process(self._poll_loop(), name="monitoring")

    def stop(self) -> None:
        self._stopped = True
        if self._process is not None:
            self._process.interrupt("monitoring stopped")

    def _poll_loop(self):
        while not self._stopped:
            now = self.sim.now
            due = sorted(
                node_id
                for node_id, when in self._next_poll.items()
                if when <= now + _DUE_EPSILON
            )
            if due:
                requests = {
                    node_id: self.client.get(
                        self._targets[node_id], self.daemon_port, "/metrics"
                    )
                    for node_id in due
                }
                yield _gather(self.sim, requests.values())
                for node_id in due:
                    self._ingest(node_id, requests[node_id])
            # Sleep until the earliest due node, but never past one base
            # interval, so newly watched nodes are picked up promptly.
            horizon = min(self._next_poll.values(), default=self.sim.now)
            delay = min(max(horizon - self.sim.now, self.interval_s * 0.01),
                        self.interval_s)
            yield Timeout(self.sim, delay)

    def _ingest(self, node_id: str, response: Signal) -> None:
        if node_id not in self._targets:
            return  # unwatched while the request was in flight
        if response.exception is not None or not response.value.ok:
            self.poll_errors += 1
            # Errors keep the base cadence: a down node should be seen
            # coming back within one interval.
            self._intervals[node_id] = self.interval_s
            self._next_poll[node_id] = self.sim.now + self.interval_s
            return
        metrics = response.value.body
        changed = metrics != self.latest.get(node_id)
        self.latest[node_id] = metrics
        self.polls += 1
        self.cpu_series[node_id].record(self.sim.now, metrics["cpu_load"])
        if changed or self.idle_backoff <= 1.0:
            interval = self.interval_s
        else:
            interval = min(
                self._intervals.get(node_id, self.interval_s) * self.idle_backoff,
                self.max_interval_s,
            )
        self._intervals[node_id] = interval
        self._next_poll[node_id] = self.sim.now + interval

    def mean_cpu_load(self, node_id: str) -> float:
        series = self.cpu_series.get(node_id)
        if series is None or len(series) == 0:
            return 0.0
        return sum(series.values) / len(series)
