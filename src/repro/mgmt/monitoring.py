"""The pimaster's monitoring poller.

"Typical use-case scenarios include remote monitoring of the CPU load on
some/all Pi nodes" (§II-C).  The poller GETs every node's ``/metrics``
endpoint on a fixed interval over the real fabric (so monitoring traffic
is part of the workload) and keeps both the latest snapshot and a CPU-load
time series per node -- the data behind the Fig. 4 dashboard.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.mgmt.rest import RestClient
from repro.sim.kernel import Simulator
from repro.sim.process import Timeout
from repro.telemetry.series import TimeSeries


class MonitoringService:
    """Periodic metrics collection from registered node daemons."""

    def __init__(
        self,
        sim: Simulator,
        client: RestClient,
        interval_s: float = 5.0,
        daemon_port: int = 8600,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("monitoring interval must be positive")
        self.sim = sim
        self.client = client
        self.interval_s = interval_s
        self.daemon_port = daemon_port
        self._targets: Dict[str, str] = {}  # node_id -> management IP
        self.latest: Dict[str, dict] = {}
        self.cpu_series: Dict[str, TimeSeries] = {}
        self.poll_errors = 0
        self.polls = 0
        self._stopped = False
        self._process: Optional[object] = None

    def watch(self, node_id: str, ip: str) -> None:
        self._targets[node_id] = ip
        self.cpu_series.setdefault(node_id, TimeSeries(f"{node_id}.cpu"))

    def unwatch(self, node_id: str) -> None:
        self._targets.pop(node_id, None)
        self.latest.pop(node_id, None)

    def start(self) -> None:
        if self._process is None:
            self._process = self.sim.process(self._poll_loop(), name="monitoring")

    def stop(self) -> None:
        self._stopped = True
        if self._process is not None:
            self._process.interrupt("monitoring stopped")

    def _poll_loop(self):
        while not self._stopped:
            for node_id, ip in sorted(self._targets.items()):
                try:
                    response = yield self.client.get(ip, self.daemon_port, "/metrics")
                except Exception:  # noqa: BLE001 - node down; keep polling
                    self.poll_errors += 1
                    continue
                if not response.ok:
                    self.poll_errors += 1
                    continue
                metrics = response.body
                self.latest[node_id] = metrics
                self.polls += 1
                self.cpu_series[node_id].record(self.sim.now, metrics["cpu_load"])
            yield Timeout(self.sim, self.interval_s)

    def mean_cpu_load(self, node_id: str) -> float:
        series = self.cpu_series.get(node_id)
        if series is None or len(series) == 0:
            return 0.0
        return sum(series.values) / len(series)
