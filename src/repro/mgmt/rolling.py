"""Rolling image upgrades: the pimaster's fleet-patching tool.

§II-A: the pimaster "hosts image management tools providing image
upgrading, patching, and spawning".  A :class:`RollingUpgrade` moves
every managed container of an image onto the image's latest version,
``batch_size`` containers at a time: push the new image to the node
(real bytes), destroy the old container, respawn under the same name on
the same node, re-registering DHCP/DNS -- so at most ``batch_size``
replicas are ever down, and the upgrade's network/SD cost is borne on
the fabric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.mgmt.pimaster import PiMaster
from repro.sim.process import Signal


@dataclass
class UpgradeReport:
    """Outcome of one rolling upgrade."""

    image: str
    from_versions: List[str] = field(default_factory=list)
    to_version: str = ""
    upgraded: List[str] = field(default_factory=list)
    failed: List[str] = field(default_factory=list)
    started_at: float = 0.0
    finished_at: float = 0.0
    max_simultaneously_down: int = 0

    @property
    def duration_s(self) -> float:
        return self.finished_at - self.started_at


class RollingUpgrade:
    """Upgrade all containers of ``image_name`` to the library's latest."""

    def __init__(self, pimaster: PiMaster, image_name: str,
                 batch_size: int = 1) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.pimaster = pimaster
        self.sim = pimaster.sim
        self.image_name = image_name
        self.batch_size = batch_size

    def targets(self) -> list:
        """Container records currently running an older version."""
        latest = self.pimaster.images.get(self.image_name)
        return [
            record
            for record in self.pimaster.container_records()
            if record.image.split(":")[0] == self.image_name
            and record.image != latest.qualified_name
        ]

    def run(self) -> Signal:
        """Execute the upgrade; Signal -> :class:`UpgradeReport`."""
        done = Signal(self.sim, name=f"rolling:{self.image_name}")
        latest = self.pimaster.images.get(self.image_name)
        report = UpgradeReport(
            image=self.image_name,
            to_version=latest.qualified_name,
            started_at=self.sim.now,
        )
        targets = self.targets()
        report.from_versions = sorted({record.image for record in targets})

        def upgrade_one(record):
            """Child process: replace one container in place."""
            name, node = record.name, record.node_id
            try:
                yield self.pimaster.destroy_container(name)
                yield self.pimaster.spawn_container(
                    self.image_name, name=name, node_id=node,
                    group=record.group,
                )
            except Exception:
                report.failed.append(name)
                return
            report.upgraded.append(name)

        def run():
            batch: list = []
            for record in targets:
                batch.append(record)
                if len(batch) == self.batch_size:
                    yield from self._run_batch(batch, upgrade_one, report)
                    batch = []
            if batch:
                yield from self._run_batch(batch, upgrade_one, report)
            report.finished_at = self.sim.now
            done.succeed(report)

        self.sim.process(run(), name=f"rolling:{self.image_name}")
        return done

    def _run_batch(self, batch, upgrade_one, report):
        from repro.sim.process import AllOf

        report.max_simultaneously_down = max(
            report.max_simultaneously_down, len(batch)
        )
        children = [
            self.sim.process(upgrade_one(record), name=f"upgrade:{record.name}")
            for record in batch
        ]
        yield AllOf(self.sim, children)
