"""Image management: the pimaster's upgrade/patch/spawn tooling (§II-A).

The pimaster "hosts image management tools providing image upgrading,
patching, and spawning".  :class:`ImageService` keeps the versioned
library and pushes images to nodes: a push is a REST POST whose wire size
is the rootfs size, so distributing a 220 MiB webserver image to a rack
genuinely loads the fabric and the receiving SD cards.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro import trace
from repro.errors import ImageError
from repro.mgmt.rest import RestClient
from repro.sim.kernel import Simulator
from repro.sim.process import Signal
from repro.virt.image import ContainerImage, ImageLibrary

IMAGE_CACHE_DIR = "/var/cache/picloud/images"


def cache_path(image: ContainerImage) -> str:
    return f"{IMAGE_CACHE_DIR}/{image.name}-v{image.version}.rootfs"


class ImageService:
    """The pimaster-side image store and distributor."""

    def __init__(self, sim: Simulator, library: Optional[ImageLibrary] = None) -> None:
        self.sim = sim
        self.library = library or ImageLibrary()
        # node_id -> set of qualified image names known to be cached there.
        self._node_caches: Dict[str, Set[str]] = {}
        self.pushes = 0
        self.push_bytes = 0.0

    # -- library passthroughs --------------------------------------------------

    def get(self, name: str) -> ContainerImage:
        return self.library.get(name)

    def publish(self, image: ContainerImage) -> None:
        self.library.publish(image)

    def patch(self, name: str, size_delta: int = 0) -> ContainerImage:
        """Create the next version; nodes will re-pull on next spawn."""
        return self.library.patch(name, size_delta)

    # -- distribution -------------------------------------------------------------

    def node_has(self, node_id: str, image: ContainerImage) -> bool:
        return image.qualified_name in self._node_caches.get(node_id, set())

    def mark_cached(self, node_id: str, image: ContainerImage) -> None:
        self._node_caches.setdefault(node_id, set()).add(image.qualified_name)

    def invalidate_node(self, node_id: str) -> None:
        """Forget a node's cache (e.g. after SD-card reimage or failure)."""
        self._node_caches.pop(node_id, None)

    def ensure_cached(
        self,
        client: RestClient,
        node_id: str,
        node_ip: str,
        node_port: int,
        image: ContainerImage,
        parent=None,
    ) -> Signal:
        """Push ``image`` to a node unless it already has it.

        The Signal succeeds with True if a push happened, False if the
        cache was already warm; fails with :class:`ImageError` wrapping
        any transport/daemon error.  ``parent`` threads the caller's span
        so the push (a large flow on the fabric) is causally attributed.
        """
        done = Signal(self.sim, name=f"image-push:{image.qualified_name}:{node_id}")
        if self.node_has(node_id, image):
            done.succeed(False)
            return done
        span = trace.start_span(
            self.sim, "mgmt.image_push", parent=parent, kind="mgmt",
            attributes={"image": image.qualified_name, "node": node_id,
                        "bytes": image.rootfs_bytes},
        )

        def run():
            try:
                response = yield client.post(
                    node_ip, node_port, "/images",
                    body={
                        "name": image.name,
                        "version": image.version,
                        "size": image.rootfs_bytes,
                        "idle_memory": image.idle_memory_bytes,
                        "app_class": image.app_class,
                    },
                    # The POST body *is* the rootfs: size it accordingly.
                    wire_size=image.rootfs_bytes,
                    parent=span,
                )
                response.raise_for_status()
            except Exception as exc:  # noqa: BLE001 - wrap for the caller
                span.end("error", str(exc))
                done.fail(ImageError(
                    f"push of {image.qualified_name} to {node_id} failed: {exc}"
                ))
                return
            self.mark_cached(node_id, image)
            self.pushes += 1
            self.push_bytes += image.rootfs_bytes
            span.end("ok")
            done.succeed(True)

        self.sim.process(run(), name=f"image-push:{node_id}")
        return done
