"""Container evacuation: respawn the workload of a dead node elsewhere.

When the :class:`~repro.mgmt.health.FailureDetector` declares a node
dead, every container the registry recorded on it is gone -- the paper's
point about failures having cross-layer consequences.  The
:class:`RecoveryManager` turns that loss into an availability mechanism:

1. the dead node's container records are *forgotten* (registry row,
   DHCP lease, DNS record, fabric address) so their names and addresses
   can be reused;
2. each lost container is queued (bounded) for respawn through the
   normal placement policy -- so rack anti-affinity and group spreading
   hold for the replacement too;
3. respawns that fail are retried up to a per-container budget with
   linear backoff, then degrade gracefully to a logged *unschedulable*
   record instead of looping forever against a full cloud.

Every action is traced under the ``mgmt.evacuate`` span, itself parented
on the ``health.node-dead`` transition -- so the causal chain
fault -> detection -> evacuation -> respawn is assertable from an
exported trace.
"""

from __future__ import annotations

import logging
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, Dict, List, Optional

from repro import trace
from repro.mgmt.health import NodeHealth
from repro.sim.process import Timeout

if TYPE_CHECKING:  # pragma: no cover
    from repro.mgmt.pimaster import ContainerRecord, PiMaster

log = logging.getLogger("repro.recovery")

DEFAULT_QUEUE_LIMIT = 64
DEFAULT_RETRY_BUDGET = 2
DEFAULT_RETRY_BACKOFF_S = 5.0


@dataclass
class UnschedulableContainer:
    """A container the recovery plane gave up on (capacity exhausted)."""

    name: str
    image: str
    group: Optional[str]
    lost_from: str
    reason: str
    at: float


@dataclass
class _EvacuationItem:
    record: "ContainerRecord"
    lost_from: str
    span: object
    attempts: int = 0


@dataclass
class _Evacuation:
    """Book-keeping for one node's evacuation span."""

    span: object
    pending: int = 0
    failed: int = 0
    respawned: List[str] = field(default_factory=list)


class RecoveryManager:
    """Respawn containers lost to dead nodes via the placement policy."""

    def __init__(
        self,
        pimaster: "PiMaster",
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        retry_budget: int = DEFAULT_RETRY_BUDGET,
        retry_backoff_s: float = DEFAULT_RETRY_BACKOFF_S,
    ) -> None:
        if queue_limit < 1:
            raise ValueError("recovery queue_limit must be >= 1")
        if retry_budget < 0:
            raise ValueError("recovery retry_budget must be >= 0")
        self.pimaster = pimaster
        self.sim = pimaster.sim
        self.queue_limit = queue_limit
        self.retry_budget = retry_budget
        self.retry_backoff_s = retry_backoff_s
        self._queue: Deque[_EvacuationItem] = deque()
        self._worker = None
        self._evacuations: Dict[int, _Evacuation] = {}
        self._evac_seq = 0
        self.evacuations = 0
        self.containers_evacuated = 0
        self.containers_respawned = 0
        self.respawn_retries = 0
        self.unschedulable: List[UnschedulableContainer] = []

    # -- entry points -----------------------------------------------------

    def on_transition(self, node_id: str, old: NodeHealth, new: NodeHealth,
                      context) -> None:
        """FailureDetector listener: death triggers evacuation.

        Deliberately *only* DEAD: an UNREACHABLE node (gen-2 detector)
        may be alive behind a partition with its containers still
        serving, so evacuating it would start the split-brain double-run.
        Evacuation waits until the grace period expires and no witness
        can reach the node either -- i.e. the UNREACHABLE -> DEAD
        transition.
        """
        if new is NodeHealth.DEAD:
            self.evacuate(node_id, parent=context)

    def evacuate(self, node_id: str, parent=None) -> int:
        """Queue every container recorded on ``node_id`` for respawn.

        Returns the number of containers queued.  ``parent`` (normally
        the ``health.node-dead`` transition context) roots the evacuation
        trace.
        """
        records = [
            record for record in self.pimaster.container_records()
            if record.node_id == node_id
        ]
        span = trace.start_span(
            self.sim, "mgmt.evacuate", parent=parent, kind="mgmt",
            attributes={"node": node_id, "containers": len(records)},
        )
        self.evacuations += 1
        if not records:
            span.end("ok", "nothing to evacuate")
            return 0
        self._evac_seq += 1
        evacuation = _Evacuation(span=span)
        self._evacuations[self._evac_seq] = evacuation
        queued = 0
        for record in records:
            self.pimaster.forget_container(record.name)
            self.containers_evacuated += 1
            if len(self._queue) >= self.queue_limit:
                self._mark_unschedulable(
                    record, node_id, "recovery queue full", span,
                )
                evacuation.failed += 1
                continue
            item = _EvacuationItem(record=record, lost_from=node_id, span=span)
            item.evac_key = self._evac_seq  # type: ignore[attr-defined]
            evacuation.pending += 1
            self._queue.append(item)
            queued += 1
        log.info("evacuating %d container(s) from dead node %s (%d queued)",
                 len(records), node_id, queued)
        if evacuation.pending == 0:
            self._finish(self._evac_seq)
        elif self._worker is None:
            self._worker = self.sim.process(self._drain(), name="recovery.drain")
        return queued

    def retry_unschedulable(self) -> int:
        """Re-queue every unschedulable container (capacity came back)."""
        from repro.mgmt.pimaster import ContainerRecord

        retried, remaining = self.unschedulable, []
        requeued = 0
        for entry in retried:
            if len(self._queue) >= self.queue_limit:
                remaining.append(entry)
                continue
            record = ContainerRecord(
                name=entry.name, node_id=entry.lost_from, image=entry.image,
                ip="", fqdn="", group=entry.group,
            )
            self._evac_seq += 1
            self._evacuations[self._evac_seq] = _Evacuation(
                span=trace.start_span(
                    self.sim, "mgmt.evacuate", kind="mgmt",
                    attributes={"node": entry.lost_from, "containers": 1,
                                "retry": True},
                ),
                pending=1,
            )
            item = _EvacuationItem(record=record, lost_from=entry.lost_from,
                                   span=self._evacuations[self._evac_seq].span)
            item.evac_key = self._evac_seq  # type: ignore[attr-defined]
            self._queue.append(item)
            requeued += 1
        self.unschedulable = remaining
        if requeued and self._worker is None:
            self._worker = self.sim.process(self._drain(), name="recovery.drain")
        return requeued

    # -- the recovery worker ----------------------------------------------

    def _drain(self):
        while self._queue:
            item = self._queue.popleft()
            yield from self._recover_one(item)
        self._worker = None

    def _recover_one(self, item: _EvacuationItem):
        record = item.record
        evac_key = getattr(item, "evac_key", None)
        evacuation = self._evacuations.get(evac_key)
        while True:
            signal = self.pimaster.spawn_container(
                record.image, name=record.name, group=record.group,
                parent=item.span,
            )
            try:
                yield signal
            except Exception as exc:  # noqa: BLE001 - placement/transport
                if item.attempts >= self.retry_budget:
                    self._mark_unschedulable(record, item.lost_from,
                                             str(exc), item.span)
                    if evacuation is not None:
                        evacuation.failed += 1
                        evacuation.pending -= 1
                        if evacuation.pending == 0:
                            self._finish(evac_key)
                    return
                item.attempts += 1
                self.respawn_retries += 1
                yield Timeout(self.sim, self.retry_backoff_s * item.attempts)
                continue
            self.containers_respawned += 1
            if evacuation is not None:
                evacuation.respawned.append(record.name)
                evacuation.pending -= 1
                if evacuation.pending == 0:
                    self._finish(evac_key)
            return

    def _finish(self, evac_key) -> None:
        evacuation = self._evacuations.pop(evac_key, None)
        if evacuation is None:
            return
        if evacuation.failed:
            evacuation.span.end(
                "error", f"{evacuation.failed} container(s) unschedulable"
            )
        else:
            evacuation.span.end("ok")

    def _mark_unschedulable(self, record: "ContainerRecord", lost_from: str,
                            reason: str, parent) -> None:
        entry = UnschedulableContainer(
            name=record.name, image=record.image, group=record.group,
            lost_from=lost_from, reason=reason, at=self.sim.now,
        )
        self.unschedulable.append(entry)
        trace.instant(
            self.sim, "recovery.unschedulable", parent=parent, kind="mgmt",
            attributes={"container": record.name, "reason": reason},
            status="error",
        )
        log.warning("container %s from dead node %s is unschedulable: %s",
                    record.name, lost_from, reason)
