"""A monitoring-driven autoscaler: elastic replica counts for a service.

The CCRM framing of the paper is *resource management*: provisioning
virtualised resources against incoming demand (§I).  The autoscaler
closes that loop on the PiCloud: it watches the CPU load of the hosts
running a replica group (via the pimaster's monitoring cache -- real
polled data, not privileged peeking) and adds or removes replicas within
``[min_replicas, max_replicas]``.

Scale-out spawns with the group's anti-affinity tag so replicas spread;
scale-in removes the newest replica first.  A cooldown prevents flapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.mgmt.pimaster import PiMaster
from repro.sim.process import Timeout


@dataclass(frozen=True)
class ScaleEvent:
    time: float
    action: str          # "out" | "in"
    replica: str
    observed_load: float


@dataclass
class AutoscalerConfig:
    image: str
    group: str
    min_replicas: int = 1
    max_replicas: int = 4
    high_watermark: float = 0.8   # mean host CPU load to scale out
    low_watermark: float = 0.2    # mean host CPU load to scale in
    interval_s: float = 10.0
    cooldown_s: float = 30.0

    def __post_init__(self) -> None:
        if not (1 <= self.min_replicas <= self.max_replicas):
            raise ConfigurationError("need 1 <= min_replicas <= max_replicas")
        if not (0.0 <= self.low_watermark < self.high_watermark <= 1.0):
            raise ConfigurationError("need 0 <= low < high <= 1")
        if self.interval_s <= 0 or self.cooldown_s < 0:
            raise ConfigurationError("bad interval/cooldown")


class Autoscaler:
    """The control loop.  Start with :meth:`start`, stop with :meth:`stop`."""

    def __init__(self, pimaster: PiMaster, config: AutoscalerConfig) -> None:
        self.pimaster = pimaster
        self.sim = pimaster.sim
        self.config = config
        self.events: List[ScaleEvent] = []
        self._replica_seq = 0
        self._last_action_at = -1e18
        self._stopped = False
        self._process = None

    # -- replica bookkeeping -------------------------------------------------

    def replicas(self) -> list:
        return [
            record for record in self.pimaster.container_records()
            if record.group == self.config.group
        ]

    def observed_load(self) -> Optional[float]:
        """Mean last-polled CPU load across hosts running replicas."""
        replicas = self.replicas()
        if not replicas:
            return None
        loads = []
        for record in replicas:
            metrics = self.pimaster.monitoring.latest.get(record.node_id)
            if metrics is not None:
                loads.append(metrics["cpu_load"])
        if not loads:
            return None
        return sum(loads) / len(loads)

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> None:
        if self._process is None:
            self._process = self.sim.process(self._loop(), name="autoscaler")

    def stop(self) -> None:
        self._stopped = True
        if self._process is not None:
            self._process.interrupt("autoscaler stopped")

    def _loop(self):
        config = self.config
        # Ensure the floor before regulating.
        while len(self.replicas()) < config.min_replicas and not self._stopped:
            yield from self._scale_out(observed=0.0)
        while not self._stopped:
            yield Timeout(self.sim, config.interval_s)
            if self.sim.now - self._last_action_at < config.cooldown_s:
                continue
            load = self.observed_load()
            if load is None:
                continue
            count = len(self.replicas())
            if load >= config.high_watermark and count < config.max_replicas:
                yield from self._scale_out(load)
            elif load <= config.low_watermark and count > config.min_replicas:
                yield from self._scale_in(load)

    def _scale_out(self, observed: float):
        self._replica_seq += 1
        name = f"{self.config.group}-r{self._replica_seq}"
        try:
            yield self.pimaster.spawn_container(
                self.config.image, name=name, group=self.config.group,
            )
        except Exception:
            return  # e.g. cloud full; try again next tick
        self._last_action_at = self.sim.now
        self.events.append(ScaleEvent(self.sim.now, "out", name, observed))

    def _scale_in(self, observed: float):
        replicas = self.replicas()
        victim = replicas[-1].name  # newest first (records sorted by name)
        try:
            yield self.pimaster.destroy_container(victim)
        except Exception:
            return
        self._last_action_at = self.sim.now
        self.events.append(ScaleEvent(self.sim.now, "in", victim, observed))
