"""Peer-to-peer cloud management: the §III "radical departure".

"The flexibility of owning our own testbed allows us to consider radical
departures to the norm, such as a peer-to-peer Cloud management system."
This module is that departure: no pimaster.  Every Pi runs a
:class:`P2pAgent` that

* maintains **membership** by anti-entropy gossip (heartbeat counters,
  periodic exchange with ``fanout`` random peers, suspicion after
  ``suspect_timeout_s`` without heartbeat progress);
* serves **decentralised placement**: a spawn request submitted to *any*
  agent is routed by consistent hashing of the container name over the
  live membership ring -- the owner (or its successors, walking the ring
  on lack of capacity) creates and starts the container locally from its
  own image cache and its own local address block.

There is no single point of failure: killing any node merely shrinks the
ring, and names re-hash to live owners -- the property the experiment
suite contrasts with the pimaster architecture.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import RestError
from repro.hostos.kernelhost import HostKernel
from repro.mgmt.rest import RestClient, RestRequest, RestServer
from repro.netsim.addresses import Ipv4Pool
from repro.sim.process import Timeout
from repro.virt.image import ContainerImage
from repro.virt.lxc import LxcRuntime

P2P_PORT = 8700


def ring_hash(key: str) -> int:
    """Stable 64-bit position on the ring."""
    return int.from_bytes(hashlib.sha256(key.encode()).digest()[:8], "big")


@dataclass
class MemberInfo:
    """What an agent believes about one peer."""

    node_id: str
    ip: str
    heartbeat: int
    updated_at: float  # local time the heartbeat last advanced

    @property
    def digest(self) -> Tuple[str, int]:
        return (self.ip, self.heartbeat)


class P2pAgent:
    """One node's membership + placement agent."""

    def __init__(
        self,
        kernel: HostKernel,
        runtime: LxcRuntime,
        container_subnet: str,
        seeds: Optional[List[Tuple[str, str]]] = None,
        gossip_interval_s: float = 2.0,
        fanout: int = 2,
        suspect_timeout_s: float = 10.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.kernel = kernel
        self.sim = kernel.sim
        self.runtime = runtime
        self.node_id = kernel.node_id
        self.ip = kernel.netstack.primary_ip
        self.gossip_interval_s = gossip_interval_s
        self.fanout = fanout
        self.suspect_timeout_s = suspect_timeout_s
        self.rng = rng or random.Random(ring_hash(self.node_id) & 0xFFFF)
        self.pool = Ipv4Pool(container_subnet)
        self._images: Dict[str, ContainerImage] = {}
        self._heartbeat = 0
        self.members: Dict[str, MemberInfo] = {
            self.node_id: MemberInfo(self.node_id, self.ip, 0, self.sim.now)
        }
        for node_id, ip in seeds or []:
            if node_id != self.node_id:
                self.members[node_id] = MemberInfo(node_id, ip, 0, self.sim.now)
        self.client = RestClient(kernel.netstack, timeout_s=60.0)
        self.server = RestServer(kernel, P2P_PORT, name=f"p2p:{self.node_id}")
        self.server.add_route("POST", "/p2p/gossip", self._handle_gossip)
        self.server.add_route("POST", "/p2p/spawn", self._handle_spawn)
        self.server.add_route("GET", "/p2p/members", self._handle_members)
        self.gossip_rounds = 0
        self.spawns_handled = 0
        self.spawns_forwarded = 0
        self._stopped = False
        self._process = self.sim.process(self._gossip_loop(), name=f"p2p:{self.node_id}")

    # -- image seeding (out-of-band for the P2P study) -------------------------

    def seed_image(self, image: ContainerImage) -> None:
        """Install an image into the local cache (metadata only)."""
        if not self.kernel.filesystem.exists(self._cache_path(image)):
            self.kernel.filesystem.create(self._cache_path(image), image.rootfs_bytes)
        self._images[image.qualified_name] = image

    @staticmethod
    def _cache_path(image: ContainerImage) -> str:
        return f"/var/cache/picloud/images/{image.name}-v{image.version}.rootfs"

    # -- membership -----------------------------------------------------------------

    def alive_members(self) -> List[MemberInfo]:
        """Members whose heartbeat advanced within the suspicion window."""
        now = self.sim.now
        return sorted(
            (
                m for m in self.members.values()
                if m.node_id == self.node_id
                or now - m.updated_at <= self.suspect_timeout_s
            ),
            key=lambda m: m.node_id,
        )

    def _digest_table(self) -> Dict[str, Tuple[str, int]]:
        return {node_id: info.digest for node_id, info in self.members.items()}

    def _merge(self, table: Dict[str, Tuple[str, int]]) -> None:
        for node_id, (ip, heartbeat) in table.items():
            if node_id == self.node_id:
                continue
            known = self.members.get(node_id)
            if known is None or heartbeat > known.heartbeat:
                self.members[node_id] = MemberInfo(node_id, ip, heartbeat, self.sim.now)

    def stop(self) -> None:
        self._stopped = True
        self.server.stop()
        self._process.interrupt("agent stopped")

    def _gossip_loop(self):
        while not self._stopped:
            yield Timeout(self.sim, self.gossip_interval_s)
            self._heartbeat += 1
            me = self.members[self.node_id]
            me.heartbeat = self._heartbeat
            me.updated_at = self.sim.now
            peers = [m for m in self.members.values() if m.node_id != self.node_id]
            self.rng.shuffle(peers)
            for peer in peers[: self.fanout]:
                try:
                    response = yield self.client.post(
                        peer.ip, P2P_PORT, "/p2p/gossip",
                        body={"from": self.node_id, "table": {
                            k: list(v) for k, v in self._digest_table().items()
                        }},
                    )
                except Exception:  # noqa: BLE001 - peer down; gossip survives
                    continue
                if response.ok:
                    self._merge({
                        k: tuple(v) for k, v in response.body["table"].items()
                    })
            self.gossip_rounds += 1

    def _handle_gossip(self, request: RestRequest):
        body = request.body or {}
        self._merge({k: tuple(v) for k, v in body.get("table", {}).items()})
        return 200, {"table": {k: list(v) for k, v in self._digest_table().items()}}

    def _handle_members(self, request: RestRequest):
        return 200, [
            {"node": m.node_id, "ip": m.ip, "heartbeat": m.heartbeat}
            for m in self.alive_members()
        ]

    # -- decentralised placement ----------------------------------------------------

    def owners_for(self, name: str) -> List[MemberInfo]:
        """The ring walk order for a container name: owner then successors."""
        alive = self.alive_members()
        if not alive:
            return []
        positions = sorted(alive, key=lambda m: ring_hash(m.node_id))
        key = ring_hash(name)
        start = next(
            (i for i, m in enumerate(positions) if ring_hash(m.node_id) >= key),
            0,
        )
        return positions[start:] + positions[:start]

    def _handle_spawn(self, request: RestRequest):
        body = request.body or {}
        for field in ("name", "image"):
            if field not in body:
                raise RestError(400, f"missing field {field!r}")
        name = body["name"]
        hops = body.get("hops", 0)
        owners = self.owners_for(name)
        if not owners:
            raise RestError(503, "no live members")
        owner = owners[0]
        if owner.node_id != self.node_id:
            if hops >= 2:
                raise RestError(508, "spawn forwarding loop")
            # Forward to the ring owner (one hop).
            self.spawns_forwarded += 1
            response = yield self.client.post(
                owner.ip, P2P_PORT, "/p2p/spawn",
                body={**body, "hops": hops + 1},
            )
            return response.status, response.body
        # We own the name: place locally.
        image = self._images.get(body["image"])
        if image is None:
            raise RestError(409, f"image {body['image']!r} not seeded on {self.node_id}")
        try:
            container = yield self.runtime.lxc_create(name, image)
            ip = self.pool.allocate()
            yield self.runtime.lxc_start(container, ip=ip)
        except Exception as exc:
            raise RestError(507, f"local spawn failed: {exc}") from exc
        self.spawns_handled += 1
        return 201, {"name": name, "node": self.node_id, "ip": ip}
