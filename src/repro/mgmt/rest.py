"""A RESTful RPC framework over the simulated message sockets.

Requests and responses are JSON-shaped dicts; message sizes on the wire
are estimated from the JSON encoding plus protocol overhead, so chatty
management traffic has a real (if small) footprint on the fabric.

Handlers are registered per ``(method, path-pattern)``; patterns may
contain ``{param}`` segments.  A handler can be:

* a plain function ``handler(request, **params) -> (status, body)``; or
* a generator (simulation process) yielding waitables and returning
  ``(status, body)`` -- for handlers that do timed work (CPU, disk, ...).

The server charges ``request_cpu_cycles`` to its host per request,
modelling REST parsing/serialisation cost on a 700 MHz ARM.
"""

from __future__ import annotations

import inspect
import json
import re
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Callable, Dict, Optional, Tuple

from repro import trace
from repro.errors import RestError
from repro.hostos.kernelhost import HostKernel
from repro.hostos.netstack import Message, NetStack
from repro.sim.process import AnyOf, Signal, Timeout
from repro.trace.span import SpanContext
from repro.units import mcycles

PROTOCOL_OVERHEAD_BYTES = 256  # headers, framing
DEFAULT_REQUEST_CPU_CYCLES = mcycles(2)  # ~3 ms on a 700 MHz ARM11


def body_size(body: Any) -> int:
    """Wire size of a JSON body (deterministic, encoding-based)."""
    if body is None:
        return PROTOCOL_OVERHEAD_BYTES
    return PROTOCOL_OVERHEAD_BYTES + len(json.dumps(body, sort_keys=True))


@dataclass
class RestRequest:
    method: str
    path: str
    body: Any = None
    # Filled by the server from the path pattern:
    params: Dict[str, str] = field(default_factory=dict)
    # Override: pretend the body is this many bytes on the wire (used for
    # image pushes, where the body *represents* a rootfs blob).
    wire_size: Optional[int] = None
    # Causal trace propagation (repro.trace).  ``trace`` is the caller's
    # span context, set by RestClient; ``server_trace`` is the serving
    # span's context, set by RestServer before the handler runs so
    # handler-side work can parent its own spans correctly.
    trace: Optional[SpanContext] = None
    server_trace: Optional[SpanContext] = None

    @property
    def size(self) -> int:
        return self.wire_size if self.wire_size is not None else body_size(
            {"m": self.method, "p": self.path, "b": self.body}
        )


@dataclass
class RestResponse:
    status: int
    body: Any = None

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def size(self) -> int:
        return body_size({"s": self.status, "b": self.body})

    def raise_for_status(self) -> "RestResponse":
        if not self.ok:
            raise RestError(self.status, str(self.body))
        return self


_PARAM_RE = re.compile(r"\{(\w+)\}")


@lru_cache(maxsize=None)
def _compile(pattern: str) -> re.Pattern:
    # Every node daemon registers the same route table, so compile each
    # pattern once per process instead of once per daemon at boot.
    regex = _PARAM_RE.sub(r"(?P<\1>[^/]+)", pattern.rstrip("/") or "/")
    return re.compile(f"^{regex}$")


class RestServer:
    """Serves REST requests arriving on one (ip, port)."""

    def __init__(
        self,
        kernel: HostKernel,
        port: int,
        name: str = "",
        request_cpu_cycles: float = DEFAULT_REQUEST_CPU_CYCLES,
        ip: Optional[str] = None,
    ) -> None:
        self.kernel = kernel
        self.sim = kernel.sim
        self.port = port
        self.name = name or f"{kernel.node_id}:{port}"
        self.request_cpu_cycles = request_cpu_cycles
        self._routes: list[Tuple[str, re.Pattern, Callable]] = []
        self.requests_served = 0
        self.requests_failed = 0
        self._inbox = kernel.netstack.listen(port, ip=ip)
        self._stopped = False
        self._process = self.sim.process(self._serve(), name=f"rest:{self.name}")

    # -- route registration ---------------------------------------------------

    def route(self, method: str, pattern: str) -> Callable:
        """Decorator: ``@server.route("GET", "/containers/{name}")``."""

        def register(handler: Callable) -> Callable:
            self._routes.append((method.upper(), _compile(pattern), handler))
            return handler

        return register

    def add_route(self, method: str, pattern: str, handler: Callable) -> None:
        self._routes.append((method.upper(), _compile(pattern), handler))

    def _match(self, method: str, path: str) -> Optional[Tuple[Callable, Dict[str, str]]]:
        method = method.upper()
        target = path.rstrip("/") or "/"
        for route_method, regex, handler in self._routes:
            if route_method != method:
                continue
            match = regex.match(target)
            if match is not None:
                return handler, match.groupdict()
        return None

    # -- the serving loop ----------------------------------------------------------

    def stop(self) -> None:
        self._stopped = True
        self.kernel.netstack.close(self.port)
        self._process.interrupt("server stopped")

    def _serve(self):
        while not self._stopped:
            message: Message = yield self._inbox.get()
            # Each request is handled in its own process so a slow handler
            # does not head-of-line block the daemon.
            self.sim.process(
                self._handle(message), name=f"rest:{self.name}:req"
            )

    def _handle(self, message: Message):
        request: RestRequest = message.payload
        span = trace.start_span(
            self.sim, f"rest.server {request.method} {request.path}",
            parent=request.trace, kind="rest.server",
            attributes={"server": self.name},
        )
        request.server_trace = span.context
        if self.request_cpu_cycles > 0:
            yield self.kernel.run_cycles(
                self.request_cpu_cycles, name=f"rest:{self.name}"
            )
        matched = self._match(request.method, request.path)
        if matched is None:
            response = RestResponse(404, {"error": f"no route {request.method} {request.path}"})
        else:
            handler, params = matched
            request.params = params
            try:
                result = handler(request, **params)
                if inspect.isgenerator(result):
                    result = yield self.sim.process(result, name=f"rest:{self.name}:h")
                status, body = result
                response = RestResponse(status, body)
            except RestError as exc:
                response = RestResponse(exc.status, {"error": exc.message, **exc.extra})
            except Exception as exc:  # noqa: BLE001 - 500 like a real server
                response = RestResponse(500, {"error": f"{type(exc).__name__}: {exc}"})
        if not response.ok:
            self.requests_failed += 1
        self.requests_served += 1
        span.set_attribute("status", response.status)
        span.end("ok" if response.ok else "error")
        yield self.kernel.netstack.reply(message, response, size=response.size,
                                         parent=span)


class RestClient:
    """Issues REST requests from one host; blocks the calling process."""

    def __init__(self, netstack: NetStack, timeout_s: float = 30.0) -> None:
        self.netstack = netstack
        self.sim = netstack.sim
        self.timeout_s = timeout_s
        self.requests_sent = 0

    def request(
        self,
        method: str,
        dst_ip: str,
        dst_port: int,
        path: str,
        body: Any = None,
        wire_size: Optional[int] = None,
        src_ip: Optional[str] = None,
        parent=None,
    ) -> Signal:
        """Send a request; the Signal succeeds with a :class:`RestResponse`.

        Fails with :class:`~repro.errors.RestError` (status 0) on timeout
        or network errors (connection refused, no route).  ``parent`` (a
        span or span context) threads causal tracing through the call:
        the request carries this client span's context so the serving
        side's spans nest under it.
        """
        done = Signal(self.sim, name=f"rest-call:{method}:{path}")
        span = trace.start_span(
            self.sim, f"rest.client {method.upper()} {path}",
            parent=parent, kind="rest.client",
            attributes={"dst": f"{dst_ip}:{dst_port}"},
        )
        request = RestRequest(method=method.upper(), path=path, body=body,
                              wire_size=wire_size, trace=span.context)
        self.requests_sent += 1

        def run():
            reply_ip = src_ip or self.netstack.primary_ip
            reply_port = self.netstack.ephemeral_port()
            inbox = self.netstack.listen(reply_port, ip=reply_ip)
            try:
                try:
                    yield self.netstack.send(
                        dst_ip, dst_port, request, size=request.size,
                        src_ip=reply_ip, src_port=reply_port, parent=span,
                    )
                except Exception as exc:  # network-level failure
                    span.end("error", f"send failed: {exc}")
                    done.fail(RestError(0, f"send failed: {exc}"))
                    return
                guard = Timeout(self.sim, self.timeout_s)
                winner, value = yield AnyOf(self.sim, [inbox.get(), guard])
                if winner == 1:
                    span.end("error", f"timeout after {self.timeout_s}s")
                    done.fail(RestError(0, f"timeout after {self.timeout_s}s"))
                    return
                guard.cancel()
                span.set_attribute("status", value.payload.status)
                span.end("ok")
                done.succeed(value.payload)
            finally:
                self.netstack.close(reply_port, ip=reply_ip)

        self.sim.process(run(), name=f"rest-call:{method}:{path}")
        return done

    def get(self, dst_ip: str, dst_port: int, path: str, parent=None) -> Signal:
        return self.request("GET", dst_ip, dst_port, path, parent=parent)

    def post(self, dst_ip: str, dst_port: int, path: str, body: Any = None,
             wire_size: Optional[int] = None, parent=None) -> Signal:
        return self.request("POST", dst_ip, dst_port, path, body, wire_size,
                            parent=parent)

    def delete(self, dst_ip: str, dst_port: int, path: str, body: Any = None,
               parent=None) -> Signal:
        return self.request("DELETE", dst_ip, dst_port, path, body,
                            parent=parent)
