"""Management plane: pimaster, node daemons, DHCP/DNS, images, dashboard.

The paper (§II-A/C) describes "an API daemon on each Pi providing a
RESTful management interface ... interacting with a head node (the
pimaster)", with DHCP and DNS services, image management tools and an
outward-facing web control panel.  This package is that plane, running
over the simulated fabric so management traffic contends with workloads:

* :mod:`~repro.mgmt.rest` -- a REST framework over the message sockets.
* :mod:`~repro.mgmt.dhcp` / :mod:`~repro.mgmt.dns` -- address and naming
  policy services on the pimaster.
* :mod:`~repro.mgmt.images` -- the image store: publish, patch, and push
  images to nodes (real bytes over the fabric onto real SD cards).
* :mod:`~repro.mgmt.node_daemon` -- the per-Pi REST agent wrapping LXC.
* :mod:`~repro.mgmt.monitoring` -- the pimaster's polling loop feeding
* :mod:`~repro.mgmt.dashboard` -- the Fig. 4 web control panel, rendered
  as text.
* :mod:`~repro.mgmt.health` -- heartbeat failure detection and per-node
  circuit breakers (the self-healing plane's sensors).
* :mod:`~repro.mgmt.recovery` -- container evacuation off dead nodes.
* :mod:`~repro.mgmt.pimaster` -- the head node tying it all together.
"""

from repro.mgmt.autoscaler import Autoscaler, AutoscalerConfig
from repro.mgmt.dashboard import Dashboard
from repro.mgmt.dhcp import DhcpServer, Lease
from repro.mgmt.dns import DnsServer
from repro.mgmt.health import (
    BreakerState,
    CircuitBreaker,
    FailureDetector,
    NodeHealth,
)
from repro.mgmt.images import ImageService
from repro.mgmt.monitoring import MonitoringService
from repro.mgmt.node_daemon import NODE_DAEMON_PORT, NodeDaemon
from repro.mgmt.p2p import P2P_PORT, P2pAgent
from repro.mgmt.pimaster import PiMaster
from repro.mgmt.recovery import RecoveryManager, UnschedulableContainer
from repro.mgmt.rest import RestClient, RestRequest, RestResponse, RestServer
from repro.mgmt.rolling import RollingUpgrade, UpgradeReport

__all__ = [
    "Autoscaler",
    "AutoscalerConfig",
    "BreakerState",
    "CircuitBreaker",
    "Dashboard",
    "DhcpServer",
    "DnsServer",
    "FailureDetector",
    "ImageService",
    "Lease",
    "MonitoringService",
    "NODE_DAEMON_PORT",
    "NodeDaemon",
    "NodeHealth",
    "P2P_PORT",
    "P2pAgent",
    "PiMaster",
    "RecoveryManager",
    "RestClient",
    "RestRequest",
    "RestResponse",
    "RestServer",
    "RollingUpgrade",
    "UnschedulableContainer",
    "UpgradeReport",
]
