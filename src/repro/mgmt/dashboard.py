"""The web control panel (paper Fig. 4), rendered as text.

"An outward-facing webserver on pimaster provides a web-based control
panel to users and administrators."  The :class:`Dashboard` renders the
same information the screenshot shows -- per-node CPU load with bars,
memory, container counts, the VM table with its soft limits, and cloud
totals -- from a single consistent snapshot.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.telemetry.stats import format_table
from repro.units import fmt_bytes

if TYPE_CHECKING:  # pragma: no cover
    from repro.mgmt.pimaster import PiMaster

BAR_WIDTH = 20


def load_bar(fraction: float, width: int = BAR_WIDTH) -> str:
    """An ASCII load bar: ``[######--------------] 30%``."""
    fraction = min(1.0, max(0.0, fraction))
    filled = round(fraction * width)
    return f"[{'#' * filled}{'-' * (width - filled)}] {fraction * 100:3.0f}%"


class Dashboard:
    """A point-in-time snapshot of the whole PiCloud, renderable as text."""

    def __init__(self, pimaster: "PiMaster") -> None:
        self.pimaster = pimaster
        self.taken_at = pimaster.sim.now
        self.node_rows = []
        self.vm_rows = []
        for node_id in pimaster.node_ids():
            daemon = pimaster.daemon(node_id)
            machine = daemon.kernel.machine
            self.node_rows.append(
                {
                    "node": node_id,
                    "rack": machine.rack or "-",
                    "state": machine.state.value,
                    "health": pimaster.health.state(node_id).value,
                    "cpu": machine.cpu.utilization.value,
                    "mem_used": machine.memory.used,
                    "mem_capacity": machine.memory.capacity,
                    "containers": daemon.runtime.running_count(),
                    "watts": machine.power.current_watts,
                }
            )
            for container in daemon.runtime.containers():
                self.vm_rows.append(container.describe())
        self.total_watts = sum(row["watts"] for row in self.node_rows)
        self.total_containers = sum(row["containers"] for row in self.node_rows)
        self.nodes_on = sum(1 for row in self.node_rows if row["state"] == "on")

    def render(self) -> str:
        """The full control panel as a text page."""
        lines = [
            f"PiCloud control panel @ t={self.taken_at:.1f}s "
            f"({self.pimaster.dns.zone})",
            "=" * 72,
            f"nodes: {self.nodes_on}/{len(self.node_rows)} on | "
            f"containers running: {self.total_containers} | "
            f"total draw: {self.total_watts:.1f} W",
            "",
            "Node status",
            "-----------",
        ]
        node_table = format_table(
            ["node", "rack", "state", "health", "cpu load", "memory", "VMs",
             "watts"],
            [
                [
                    row["node"],
                    row["rack"],
                    row["state"],
                    row["health"],
                    load_bar(row["cpu"]),
                    f"{fmt_bytes(row['mem_used'])}/{fmt_bytes(row['mem_capacity'])}",
                    row["containers"],
                    f"{row['watts']:.1f}",
                ]
                for row in self.node_rows
            ],
        )
        lines.append(node_table)
        lines += ["", "Virtual hosts", "-------------"]
        if self.vm_rows:
            vm_table = format_table(
                ["name", "image", "state", "host", "ip", "rss",
                 "cpu shares", "cpu quota"],
                [
                    [
                        vm["name"],
                        vm["image"],
                        vm["state"],
                        vm["host"],
                        vm["ip"] or "-",
                        fmt_bytes(vm["memory"]),
                        vm["cpu_shares"],
                        vm["cpu_quota"] if vm["cpu_quota"] is not None else "-",
                    ]
                    for vm in self.vm_rows
                ],
            )
            lines.append(vm_table)
        else:
            lines.append("(no virtual hosts)")
        return "\n".join(lines)

    def summary(self) -> dict[str, float]:
        """Machine-readable totals (used by benches)."""
        return {
            "nodes": len(self.node_rows),
            "nodes_on": self.nodes_on,
            "containers_running": self.total_containers,
            "total_watts": self.total_watts,
        }
