"""DHCP: the pimaster's IP-assignment policy service.

"A system administrator can implement customised IP and naming policies
through DHCP and DNS services running on the pimaster" (§II-A).  Leases
have lifetimes; each grant schedules its own expiry event, so addresses
of clients that did not renew are reclaimed -- and the event queue stays
finite (the simulation terminates when real work does).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import LeaseError
from repro.netsim.addresses import Ipv4Pool
from repro.sim.kernel import Simulator

DEFAULT_LEASE_TTL_S = 3600.0


@dataclass
class Lease:
    """One DHCP lease."""

    client_id: str
    ip: str
    hostname: str
    granted_at: float
    expires_at: float

    def active(self, now: float) -> bool:
        return now < self.expires_at


class DhcpServer:
    """Lease management over an :class:`~repro.netsim.addresses.Ipv4Pool`."""

    def __init__(
        self,
        sim: Simulator,
        pool: Ipv4Pool,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
    ) -> None:
        if lease_ttl_s <= 0:
            raise LeaseError("lease TTL must be positive")
        self.sim = sim
        self.pool = pool
        self.lease_ttl_s = lease_ttl_s
        self._by_client: Dict[str, Lease] = {}
        self.leases_granted = 0
        self.leases_expired = 0

    # -- protocol operations ----------------------------------------------------

    def request_lease(self, client_id: str, hostname: str = "",
                      ttl_s: Optional[float] = None) -> Lease:
        """DISCOVER/REQUEST: grant (or renew) a lease for ``client_id``.

        ``ttl_s`` overrides the server default; ``float('inf')`` makes an
        effectively-static assignment (used for infrastructure nodes).
        """
        existing = self._by_client.get(client_id)
        if existing is not None and existing.active(self.sim.now):
            return self.renew(client_id)
        if existing is not None:
            self._reclaim(existing)
        ip = self.pool.allocate()  # raises AddressError when exhausted
        ttl = ttl_s if ttl_s is not None else self.lease_ttl_s
        lease = Lease(
            client_id=client_id,
            ip=ip,
            hostname=hostname or client_id,
            granted_at=self.sim.now,
            expires_at=self.sim.now + ttl,
        )
        self._by_client[client_id] = lease
        self.leases_granted += 1
        self._schedule_expiry(lease)
        return lease

    def renew(self, client_id: str) -> Lease:
        lease = self._by_client.get(client_id)
        if lease is None or not lease.active(self.sim.now):
            raise LeaseError(f"no active lease for client {client_id!r}")
        lease.expires_at = self.sim.now + self.lease_ttl_s
        # The previously-scheduled expiry check will see the new deadline
        # and re-arm itself; no extra bookkeeping needed.
        return lease

    def release(self, client_id: str) -> None:
        lease = self._by_client.pop(client_id, None)
        if lease is None:
            raise LeaseError(f"no lease for client {client_id!r}")
        self.pool.release(lease.ip)

    def lookup(self, client_id: str) -> Optional[Lease]:
        lease = self._by_client.get(client_id)
        if lease is not None and lease.active(self.sim.now):
            return lease
        return None

    def active_leases(self) -> list[Lease]:
        now = self.sim.now
        return sorted(
            (l for l in self._by_client.values() if l.active(now)),
            key=lambda l: l.ip,
        )

    # -- expiry ---------------------------------------------------------------------

    def _schedule_expiry(self, lease: Lease) -> None:
        if math.isinf(lease.expires_at):
            return  # static assignment; never expires
        self.sim.schedule_at(lease.expires_at, self._check_expiry, lease)

    def _check_expiry(self, lease: Lease) -> None:
        current = self._by_client.get(lease.client_id)
        if current is not lease:
            return  # released or replaced meanwhile
        if lease.active(self.sim.now):
            # Renewed since this check was scheduled: re-arm for the new
            # deadline.
            self._schedule_expiry(lease)
            return
        self._reclaim(lease)

    def _reclaim(self, lease: Lease) -> None:
        self._by_client.pop(lease.client_id, None)
        self.pool.release(lease.ip)
        self.leases_expired += 1
