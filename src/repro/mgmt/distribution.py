"""Peer-assisted image distribution: §III "file management ... techniques".

"By operating an actual infrastructure, we can empirically evaluate
improvements to file management and migration techniques."  The baseline
file-management technique is pimaster unicasting every image to every
node -- N full-size transfers out of one uplink.  The improvement this
module provides is swarm-style distribution:

1. pimaster seeds the image to one node per rack (in parallel);
2. every remaining node pulls from an already-seeded *peer*, preferring
   a rack-local one (so most traffic never leaves the ToR), with a bounded
   number of concurrent uploads per seeder.

Nodes receive pushes through their ordinary ``POST /images`` endpoint in
both schemes -- the techniques differ only in who sends the bytes, which
is exactly the file-management question the paper poses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ImageError
from repro.mgmt.node_daemon import NODE_DAEMON_PORT
from repro.mgmt.pimaster import PiMaster
from repro.mgmt.rest import RestClient
from repro.sim.process import AllOf, Signal
from repro.virt.image import ContainerImage


@dataclass
class DistributionReport:
    """How one fleet-wide image distribution went."""

    image: str
    scheme: str
    nodes: int = 0
    succeeded: List[str] = field(default_factory=list)
    failed: List[str] = field(default_factory=list)
    started_at: float = 0.0
    finished_at: float = 0.0
    pimaster_bytes_sent: float = 0.0
    peer_bytes_sent: float = 0.0

    @property
    def duration_s(self) -> float:
        return self.finished_at - self.started_at


class ImageDistributor:
    """Fleet-wide image distribution with selectable scheme."""

    def __init__(self, pimaster: PiMaster,
                 uploads_per_seeder: int = 2) -> None:
        if uploads_per_seeder < 1:
            raise ValueError("uploads_per_seeder must be >= 1")
        self.pimaster = pimaster
        self.sim = pimaster.sim
        self.uploads_per_seeder = uploads_per_seeder

    # -- shared plumbing ------------------------------------------------------

    def _push(self, client: RestClient, node_id: str,
              image: ContainerImage) -> Signal:
        """One image push over REST (used by both schemes)."""
        ip = self.pimaster.node_ip(node_id)
        done = Signal(self.sim, name=f"dist-push:{node_id}")

        def run():
            try:
                response = yield client.post(
                    ip, NODE_DAEMON_PORT, "/images",
                    body={
                        "name": image.name,
                        "version": image.version,
                        "size": image.rootfs_bytes,
                        "idle_memory": image.idle_memory_bytes,
                        "app_class": image.app_class,
                    },
                    wire_size=image.rootfs_bytes,
                )
                response.raise_for_status()
            except Exception as exc:  # noqa: BLE001
                done.fail(ImageError(f"push to {node_id} failed: {exc}"))
                return
            self.pimaster.images.mark_cached(node_id, image)
            done.succeed(node_id)

        self.sim.process(run(), name=f"dist-push:{node_id}")
        return done

    def _rack_of(self, node_id: str) -> Optional[str]:
        return self.pimaster.daemon(node_id).kernel.machine.rack

    # -- scheme 1: unicast from pimaster -----------------------------------------

    def distribute_unicast(self, image_name: str,
                           nodes: Optional[List[str]] = None) -> Signal:
        """Baseline: pimaster sends the full image to every node in parallel."""
        image = self.pimaster.images.get(image_name)
        targets = nodes or self.pimaster.node_ids()
        report = DistributionReport(
            image=image.qualified_name, scheme="unicast",
            nodes=len(targets), started_at=self.sim.now,
        )
        done = Signal(self.sim, name="dist:unicast")

        def run():
            pushes = [
                (node, self._push(self.pimaster.client, node, image))
                for node in targets
                if not self.pimaster.images.node_has(node, image)
            ]
            already = [n for n in targets
                       if self.pimaster.images.node_has(n, image)]
            report.succeeded.extend(already)
            for node, push in pushes:
                try:
                    yield push
                except ImageError:
                    report.failed.append(node)
                    continue
                report.succeeded.append(node)
                report.pimaster_bytes_sent += image.rootfs_bytes
            report.finished_at = self.sim.now
            done.succeed(report)

        self.sim.process(run(), name="dist:unicast")
        return done

    # -- scheme 2: peer-assisted swarm ----------------------------------------------

    def distribute_peer_assisted(self, image_name: str,
                                 nodes: Optional[List[str]] = None) -> Signal:
        """Seed one node per rack, then fan out from peers, rack-local first."""
        image = self.pimaster.images.get(image_name)
        targets = list(nodes or self.pimaster.node_ids())
        report = DistributionReport(
            image=image.qualified_name, scheme="peer-assisted",
            nodes=len(targets), started_at=self.sim.now,
        )
        done = Signal(self.sim, name="dist:peer")

        by_rack: Dict[Optional[str], List[str]] = {}
        for node in targets:
            by_rack.setdefault(self._rack_of(node), []).append(node)

        def run():
            seeded: List[str] = [
                n for n in targets if self.pimaster.images.node_has(n, image)
            ]
            report.succeeded.extend(seeded)
            # Phase 1: pimaster seeds the first node of each rack (parallel).
            seeds = []
            for rack_nodes in by_rack.values():
                candidate = next(
                    (n for n in rack_nodes if n not in seeded), None
                )
                if candidate is not None:
                    seeds.append((candidate,
                                  self._push(self.pimaster.client, candidate, image)))
            for node, push in seeds:
                try:
                    yield push
                except ImageError:
                    report.failed.append(node)
                    continue
                seeded.append(node)
                report.succeeded.append(node)
                report.pimaster_bytes_sent += image.rootfs_bytes

            # Phase 2: waves of peer pulls until everyone has the image.
            remaining = [n for n in targets
                         if n not in seeded and n not in report.failed]
            while remaining:
                wave: List[Tuple[str, Signal]] = []
                upload_slots = {seeder: self.uploads_per_seeder
                                for seeder in seeded}
                for node in list(remaining):
                    seeder = self._pick_seeder(node, seeded, upload_slots)
                    if seeder is None:
                        continue  # every seeder busy this wave
                    upload_slots[seeder] -= 1
                    client = RestClient(
                        self.pimaster.daemon(seeder).kernel.netstack,
                        timeout_s=1800.0,
                    )
                    wave.append((node, self._push(client, node, image)))
                    remaining.remove(node)
                    report.peer_bytes_sent += image.rootfs_bytes
                if not wave:
                    # No seeders at all (everything failed): give up.
                    report.failed.extend(remaining)
                    break
                for node, push in wave:
                    try:
                        yield push
                    except ImageError:
                        report.failed.append(node)
                        report.peer_bytes_sent -= image.rootfs_bytes
                        continue
                    seeded.append(node)
                    report.succeeded.append(node)
            report.finished_at = self.sim.now
            done.succeed(report)

        self.sim.process(run(), name="dist:peer")
        return done

    def _pick_seeder(self, node: str, seeded: List[str],
                     slots: Dict[str, int]) -> Optional[str]:
        """Prefer a rack-local seeder with a free upload slot."""
        rack = self._rack_of(node)
        local = [s for s in seeded if self._rack_of(s) == rack and slots.get(s, 0) > 0]
        if local:
            return local[0]
        remote = [s for s in seeded if slots.get(s, 0) > 0]
        return remote[0] if remote else None
