"""Fat-tree partitioning for the sharded kernel.

A k-ary fat-tree decomposes cleanly along pod boundaries: every link
belongs to exactly one pod (host--edge and edge--agg links are intra-pod;
each agg--core link hangs off exactly one pod's aggregation switch, and
core switches have no core--core links).  That makes "one shard per pod
group, core switches replicated everywhere" a partition in the strict
sense -- no link's capacity is shared between two shards -- and the core
layer the natural *boundary*: a cross-pod path touches exactly one core
switch, so cutting it there yields an uphill segment solved by the source
shard and a downhill segment solved by the destination shard
(see :mod:`repro.netsim.sharded` for how the two halves are coupled).

Shard ids: shard 0 is the control-plane shard (pimaster, placement,
metric collection -- it owns no fabric); shards ``1..n`` are pod shards,
pods assigned round-robin so host counts stay balanced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import NetworkError
from repro.netsim.topology import CORE, Topology

CONTROL_SHARD = 0


@dataclass(frozen=True)
class PartitionMap:
    """Node -> shard assignment for one fat-tree.

    ``shards`` counts *pod* shards; with the control shard the run has
    ``shards + 1`` kernels.  ``pod_shard[p]`` is the shard owning pod
    ``p``; ``node_shard`` covers every non-core node; core switches are
    replicated into every pod shard (they appear in every
    :meth:`sub_topology` but in no ``node_shard`` entry).
    """

    k: int
    shards: int
    topology: Topology
    pod_shard: Dict[int, int] = field(default_factory=dict)
    node_shard: Dict[str, int] = field(default_factory=dict)
    node_pod: Dict[str, int] = field(default_factory=dict)

    def shard_of(self, node: str) -> Optional[int]:
        """The pod shard owning ``node`` (None for replicated cores)."""
        return self.node_shard.get(node)

    def pods_of(self, shard_id: int) -> List[int]:
        """The pods assigned to one pod shard, ascending."""
        return sorted(p for p, s in self.pod_shard.items() if s == shard_id)

    def shard_ids(self) -> List[int]:
        """All pod shard ids (control shard 0 excluded), ascending."""
        return list(range(1, self.shards + 1))

    def sub_topology(self, shard_id: int) -> Topology:
        """The shard's local fabric: its pods plus every core switch.

        Each agg switch stripes into ``k/2`` distinct cores, so the pods
        of any one shard plus the full core layer stay connected and the
        sub-topology validates.  Every link of the parent topology lands
        in exactly one sub-topology.
        """
        pods = set(self.pods_of(shard_id))
        if not pods:
            raise NetworkError(f"shard {shard_id} owns no pods")
        graph = self.topology.graph
        sub = Topology(name=f"{self.topology.name}-shard{shard_id}")
        for node in sorted(graph.nodes):
            data = graph.nodes[node]
            local = self.node_pod.get(node) in pods
            if not local and data["kind"] != CORE:
                continue
            if data["kind"] == "host":
                sub.add_host(node, rack=data.get("rack"))
            else:
                sub.add_switch(node, data["kind"], rack=data.get("rack"),
                               openflow=bool(data.get("openflow")))
        for a, b in sorted(graph.edges):
            if self.node_pod.get(a) in pods or self.node_pod.get(b) in pods:
                spec = graph.edges[a, b]["spec"]
                sub.connect(a, b, spec.bandwidth, spec.latency)
        sub.validate()
        return sub

    def boundary_links(self) -> List[Tuple[str, str]]:
        """The agg--core links, i.e. every cable a cross-pod flow crosses."""
        out = []
        graph = self.topology.graph
        for a, b in sorted(graph.edges):
            kinds = {graph.nodes[a]["kind"], graph.nodes[b]["kind"]}
            if CORE in kinds:
                out.append((a, b))
        return out

    def split_path(self, path: List[str]) -> List[Tuple[int, List[str]]]:
        """Cut a path at the core switch into per-shard segments.

        Returns ``[(shard, segment)]``: one entry for an intra-pod path,
        two (uphill ending at the core, downhill starting at it -- the
        core node appears in both) for a cross-pod path.
        """
        shards = [self.node_shard.get(node) for node in path]
        owners = sorted({s for s in shards if s is not None})
        if len(owners) == 1:
            return [(owners[0], list(path))]
        if len(owners) != 2:
            raise NetworkError(f"path {path} spans {len(owners)} shards")
        cores = [i for i, node in enumerate(path)
                 if self.topology.kind(node) == CORE]
        if len(cores) != 1:
            raise NetworkError(
                f"cross-pod path {path} crosses {len(cores)} core switches"
            )
        cut = cores[0]
        src_shard = shards[0]
        dst_shard = shards[-1]
        if src_shard is None or dst_shard is None:
            raise NetworkError(f"path {path} does not start/end in a pod")
        return [(src_shard, list(path[: cut + 1])),
                (dst_shard, list(path[cut:]))]


def partition_fat_tree(topology: Topology, shards: int,
                       k: Optional[int] = None) -> PartitionMap:
    """Assign a fat-tree's pods round-robin to ``shards`` pod shards.

    ``topology`` must come from :func:`repro.netsim.topology.fat_tree`
    (pods are the ``pod<p>`` racks).  ``shards`` may not exceed the pod
    count -- every shard needs at least one pod or its sub-topology
    would be empty.
    """
    node_pod: Dict[str, int] = {}
    pods: set[int] = set()
    graph = topology.graph
    for node in graph.nodes:
        rack = graph.nodes[node].get("rack")
        if rack is None:
            if graph.nodes[node]["kind"] != CORE:
                raise NetworkError(
                    f"non-core node {node!r} has no pod rack; "
                    "partition_fat_tree needs a fat_tree() topology"
                )
            continue
        if not rack.startswith("pod"):
            raise NetworkError(
                f"rack {rack!r} is not a fat-tree pod; "
                "partition_fat_tree needs a fat_tree() topology"
            )
        pod = int(rack[3:])
        node_pod[node] = pod
        pods.add(pod)
    if not pods:
        raise NetworkError("topology has no pods to partition")
    if k is None:
        k = len(pods)
    if shards < 1:
        raise NetworkError(f"need at least one shard, got {shards}")
    if shards > len(pods):
        raise NetworkError(
            f"{shards} shards but only {len(pods)} pods; "
            "every shard needs at least one pod"
        )
    pod_shard = {pod: 1 + (pod % shards) for pod in sorted(pods)}
    node_shard = {node: pod_shard[pod] for node, pod in node_pod.items()}
    return PartitionMap(
        k=k,
        shards=shards,
        topology=topology,
        pod_shard=pod_shard,
        node_shard=node_shard,
        node_pod=node_pod,
    )
