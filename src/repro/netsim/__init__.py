"""Network substrate: the PiCloud's data-centre fabric.

Models the paper's Fig. 2 network at flow level:

* :mod:`~repro.netsim.link` -- full-duplex links with bandwidth and latency.
* :mod:`~repro.netsim.fairness` -- max-min fair bandwidth allocation
  (progressive filling), the standard fluid model for DC congestion studies.
* :mod:`~repro.netsim.cc` -- pluggable rate models: the max-min default
  plus per-flow congestion control (Reno / DCTCP / delay-based) with
  per-direction queue occupancy and ECN marking.
* :mod:`~repro.netsim.fabric` -- the live network: active flows, rate
  recomputation, per-link utilisation gauges and congestion accounting.
* :mod:`~repro.netsim.topology` -- builders for the paper's canonical
  multi-root tree, the fat-tree it can be re-cabled into, and test shapes.
* :mod:`~repro.netsim.routing` -- static shortest-path and ECMP path
  services; the OpenFlow/SDN control plane lives in :mod:`repro.netsim.sdn`.
"""

from repro.netsim.addresses import Ipv4Pool, MacAllocator
from repro.netsim.cc import CcFlowState, CcRateModel, MaxMinRateModel, RateModel
from repro.netsim.fabric import FlowTransfer, Network
from repro.netsim.fairness import max_min_rates
from repro.netsim.link import Link, LinkDirection, QueueState
from repro.netsim.routing import EcmpRouting, PathService, ShortestPathRouting
from repro.netsim.topology import (
    Topology,
    fat_tree,
    multi_root_tree,
    single_switch,
)

__all__ = [
    "CcFlowState",
    "CcRateModel",
    "EcmpRouting",
    "FlowTransfer",
    "Ipv4Pool",
    "Link",
    "LinkDirection",
    "MacAllocator",
    "MaxMinRateModel",
    "Network",
    "PathService",
    "QueueState",
    "RateModel",
    "ShortestPathRouting",
    "Topology",
    "fat_tree",
    "max_min_rates",
    "multi_root_tree",
    "single_switch",
]
