"""Pluggable rate models: max-min fair share vs per-flow congestion control.

The fabric's :class:`~repro.netsim.fabric.Network` delegates rate
assignment to a :class:`RateModel` strategy:

* :class:`MaxMinRateModel` (the default) reproduces the historic
  instantaneous max-min fair share -- stateless, event-driven, and
  byte-identical to the pre-strategy fabric.
* :class:`CcRateModel` runs a per-flow congestion-control loop on top of
  the same solver: each flow keeps a congestion window, each link
  direction a fluid FIFO queue (:class:`~repro.netsim.link.QueueState`),
  and an epoch ticker converts windows to demand rates
  (``cwnd / rtt``), feeds queueing delay / ECN marks / drops back into
  the windows, and re-allocates.  Three update rules are provided:
  Reno-style AIMD, DCTCP with an ECN-fraction EWMA, and a delay-based
  variant (smoothed-RTT backoff).

Allocation under ``cc`` is *demand-capped max-min*: every flow's demand
``min(cwnd / rtt, rate_cap)`` is handed to
:func:`~repro.netsim.fairness.max_min_rates` as its cap, so flows still
share each direction's capacity max-min fairly *below* their windows --
the shared-capacity accounting lives in one place for both models.

Determinism: the cc loop contains no randomness; flows are always
iterated in ``flow_id`` order and per-direction demand sums are
accumulated in that same order, so same-seed runs are bit-identical
regardless of hash seeds.

Fidelity notes (the model is fluid, not packet-level):

* One queue per direction, single-bottleneck approximation: a flow
  offers its full demand to every hop on its path (see
  :class:`~repro.netsim.link.QueueState`).
* Signals are sampled per epoch, not per packet: the ECN fraction is
  the share of the epoch the queue spent above the marking threshold,
  loss means the queue overflowed at some point during the epoch.
* Multiplicative decreases are gated to once per RTT, matching the
  once-per-window reaction of real TCP.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

from repro.errors import RateModelError
from repro.netsim.fairness import max_min_rates

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.netsim.fabric import FlowTransfer, Network
    from repro.netsim.link import LinkDirection

RATE_MODELS = ("maxmin", "cc")
CC_PROTOCOLS = ("reno", "dctcp", "delay")

# Default knobs, mirrored (and validated) by
# repro.core.config.RateModelConfig -- tests/test_cc.py pins the two in
# sync.  Tuned for the paper's fabric: 100 Mb/s links, shallow switch
# buffers (200 x 1500 B packets), DCTCP-style ECN threshold at 15% of
# the buffer.
DEFAULT_EPOCH_S = 0.001
DEFAULT_QUEUE_LIMIT_BYTES = 300_000.0
DEFAULT_ECN_THRESHOLD_FRAC = 0.15
DEFAULT_INIT_CWND_BYTES = 15_000.0
DEFAULT_MIN_CWND_BYTES = 1_500.0
DEFAULT_MSS_BYTES = 1_500.0
DEFAULT_AI_MSS_PER_RTT = 1.0
DEFAULT_MD_FACTOR = 0.5
DEFAULT_DCTCP_G = 0.0625
DEFAULT_DELAY_THRESHOLD = 1.25
DEFAULT_DELAY_SMOOTHING = 0.1


class RateModel:
    """Strategy interface: how the fabric assigns rates to active flows.

    Lifecycle: the :class:`~repro.netsim.fabric.Network` calls
    :meth:`attach` once at construction, :meth:`on_activate` /
    :meth:`on_detach` as flows join and leave, and :meth:`allocate`
    from every solve.  ``allocate`` receives the flows of a closed
    bottleneck component (sorted by flow id) and must return a rate for
    each; ``dirty_dirs`` is the set of directions the triggering churn
    touched (``None`` for a full solve) so stateful models can refresh
    per-direction bookkeeping for directions that lost their last flow.
    """

    name = "abstract"

    def __init__(self) -> None:
        self.network: Optional["Network"] = None

    def attach(self, network: "Network") -> None:
        if self.network is not None and self.network is not network:
            raise RateModelError(
                f"rate model {self.name!r} is already attached to a fabric"
            )
        self.network = network

    def on_activate(self, flow: "FlowTransfer") -> None:
        """A flow became ACTIVE on its resolved path."""

    def on_detach(self, flow: "FlowTransfer") -> None:
        """A flow left the fabric (completed, failed, or was killed)."""

    def allocate(
        self,
        flows: List["FlowTransfer"],
        dirty_dirs: Optional[set],
    ) -> Dict["FlowTransfer", float]:
        raise NotImplementedError

    def describe(self) -> dict:
        """Introspection row for reports and the CLI."""
        return {"model": self.name}


class MaxMinRateModel(RateModel):
    """Instantaneous max-min fair share (the historic default).

    Stateless: every allocation is a pure function of the component's
    paths, capacities and rate caps, computed with the same arithmetic
    (and the same iteration order) as the pre-strategy fabric, so the
    default path stays byte-identical.
    """

    name = "maxmin"

    def allocate(
        self,
        flows: List["FlowTransfer"],
        dirty_dirs: Optional[set],
    ) -> Dict["FlowTransfer", float]:
        network = self.network
        flow_paths = {flow: flow.directions for flow in flows}
        capacities: Dict["LinkDirection", float] = {}
        for flow in flows:
            for direction in flow.directions:
                capacities[direction] = direction.capacity
        # validate=False: paths/capacities come straight from fabric
        # state; re-walking them every solve is pure overhead.
        return max_min_rates(flow_paths, capacities, network._rate_caps,
                             validate=False)


class CcFlowState:
    """Per-flow congestion-control state: the window and its update rule.

    Usable standalone (unit tests drive :meth:`update` with hand-built
    signal sequences); the :class:`CcRateModel` owns one per active flow.
    """

    __slots__ = (
        "protocol", "cwnd", "min_cwnd", "mss", "ai_mss_per_rtt", "md_factor",
        "dctcp_g", "delay_threshold", "delay_smoothing",
        "rtt_base", "alpha", "srtt", "last_decrease_at",
        "ecn_signals", "loss_signals", "decreases",
    )

    def __init__(
        self,
        protocol: str,
        *,
        rtt_base_s: float,
        init_cwnd_bytes: float = DEFAULT_INIT_CWND_BYTES,
        min_cwnd_bytes: float = DEFAULT_MIN_CWND_BYTES,
        mss_bytes: float = DEFAULT_MSS_BYTES,
        ai_mss_per_rtt: float = DEFAULT_AI_MSS_PER_RTT,
        md_factor: float = DEFAULT_MD_FACTOR,
        dctcp_g: float = DEFAULT_DCTCP_G,
        delay_threshold: float = DEFAULT_DELAY_THRESHOLD,
        delay_smoothing: float = DEFAULT_DELAY_SMOOTHING,
    ) -> None:
        if protocol not in CC_PROTOCOLS:
            raise RateModelError(
                f"unknown cc protocol {protocol!r}; choose from {CC_PROTOCOLS}"
            )
        if rtt_base_s <= 0:
            raise RateModelError(f"rtt_base_s must be positive, got {rtt_base_s}")
        self.protocol = protocol
        self.cwnd = float(init_cwnd_bytes)
        self.min_cwnd = float(min_cwnd_bytes)
        self.mss = float(mss_bytes)
        self.ai_mss_per_rtt = float(ai_mss_per_rtt)
        self.md_factor = float(md_factor)
        self.dctcp_g = float(dctcp_g)
        self.delay_threshold = float(delay_threshold)
        self.delay_smoothing = float(delay_smoothing)
        self.rtt_base = float(rtt_base_s)
        self.alpha = 0.0           # DCTCP ECN-fraction EWMA
        self.srtt: Optional[float] = None  # delay-variant smoothed RTT
        self.last_decrease_at = -math.inf
        self.ecn_signals = 0
        self.loss_signals = 0
        self.decreases = 0

    def demand_rate(self, queue_delay_s: float) -> float:
        """Window -> offered rate: cwnd over the (queue-inclusive) RTT."""
        return self.cwnd / (self.rtt_base + queue_delay_s)

    def update(self, now: float, dt: float, rtt_s: float,
               ecn_frac: float, loss: bool) -> None:
        """One epoch step: apply the protocol's rule to the window.

        ``rtt_s`` is the current queue-inclusive RTT, ``ecn_frac`` the
        fraction of the epoch the path's worst queue spent above the ECN
        threshold, ``loss`` whether any queue on the path overflowed.
        """
        if ecn_frac > 0.0:
            self.ecn_signals += 1
        if loss:
            self.loss_signals += 1
        grow = self.ai_mss_per_rtt * self.mss * (dt / rtt_s)
        if self.protocol == "reno":
            # Classic AIMD, loss-only: Reno is ECN-blind, fills the
            # buffer until it overflows, then halves.
            if loss:
                self._decrease(now, rtt_s, self.md_factor)
            else:
                self.cwnd += grow
        elif self.protocol == "dctcp":
            self.alpha = ((1.0 - self.dctcp_g) * self.alpha
                          + self.dctcp_g * ecn_frac)
            if loss:
                self._decrease(now, rtt_s, self.md_factor)
            elif ecn_frac > 0.0:
                # Proportional backoff: gentle when marks are rare.
                self._decrease(now, rtt_s, 1.0 - self.alpha / 2.0)
            else:
                self.cwnd += grow
        else:  # delay
            if self.srtt is None:
                self.srtt = rtt_s
            else:
                w = self.delay_smoothing
                self.srtt = (1.0 - w) * self.srtt + w * rtt_s
            if loss:
                self._decrease(now, rtt_s, self.md_factor)
            elif self.srtt > self.delay_threshold * self.rtt_base:
                self._decrease(now, rtt_s, self.md_factor)
            else:
                self.cwnd += grow

    def _decrease(self, now: float, rtt_s: float, factor: float) -> None:
        """Multiplicative decrease, gated to once per RTT."""
        if now - self.last_decrease_at < rtt_s:
            return
        self.cwnd = max(self.cwnd * factor, self.min_cwnd)
        self.last_decrease_at = now
        self.decreases += 1


class CcRateModel(RateModel):
    """Per-flow congestion control stepped on a fixed epoch.

    The loop per epoch: settle queues -> read per-direction signals
    (ECN-mark fraction, overflow) -> update every flow's window ->
    re-allocate demand-capped max-min rates -> refresh per-direction
    offered demand so the queues evolve toward the new operating point.
    Churn between epochs (flows starting/finishing) reallocates with the
    current windows through the fabric's normal deferred solve; windows
    only move on epoch boundaries.
    """

    name = "cc"

    def __init__(
        self,
        *,
        protocol: str = "reno",
        epoch_s: float = DEFAULT_EPOCH_S,
        queue_limit_bytes: float = DEFAULT_QUEUE_LIMIT_BYTES,
        ecn_threshold_frac: float = DEFAULT_ECN_THRESHOLD_FRAC,
        init_cwnd_bytes: float = DEFAULT_INIT_CWND_BYTES,
        min_cwnd_bytes: float = DEFAULT_MIN_CWND_BYTES,
        mss_bytes: float = DEFAULT_MSS_BYTES,
        ai_mss_per_rtt: float = DEFAULT_AI_MSS_PER_RTT,
        md_factor: float = DEFAULT_MD_FACTOR,
        dctcp_g: float = DEFAULT_DCTCP_G,
        delay_threshold: float = DEFAULT_DELAY_THRESHOLD,
        delay_smoothing: float = DEFAULT_DELAY_SMOOTHING,
    ) -> None:
        super().__init__()
        if protocol not in CC_PROTOCOLS:
            raise RateModelError(
                f"unknown cc protocol {protocol!r}; choose from {CC_PROTOCOLS}"
            )
        if epoch_s <= 0:
            raise RateModelError(f"epoch_s must be positive, got {epoch_s}")
        if queue_limit_bytes <= 0:
            raise RateModelError(
                f"queue_limit_bytes must be positive, got {queue_limit_bytes}"
            )
        if not 0.0 < ecn_threshold_frac <= 1.0:
            raise RateModelError(
                f"ecn_threshold_frac must be in (0, 1], got {ecn_threshold_frac}"
            )
        if min_cwnd_bytes <= 0 or init_cwnd_bytes < min_cwnd_bytes:
            raise RateModelError(
                "need 0 < min_cwnd_bytes <= init_cwnd_bytes, got "
                f"min={min_cwnd_bytes} init={init_cwnd_bytes}"
            )
        if mss_bytes <= 0:
            raise RateModelError(f"mss_bytes must be positive, got {mss_bytes}")
        if ai_mss_per_rtt <= 0:
            raise RateModelError(
                f"ai_mss_per_rtt must be positive, got {ai_mss_per_rtt}"
            )
        if not 0.0 < md_factor < 1.0:
            raise RateModelError(
                f"md_factor must be in (0, 1), got {md_factor}"
            )
        if not 0.0 < dctcp_g <= 1.0:
            raise RateModelError(f"dctcp_g must be in (0, 1], got {dctcp_g}")
        if delay_threshold <= 1.0:
            raise RateModelError(
                f"delay_threshold must exceed 1.0, got {delay_threshold}"
            )
        if not 0.0 < delay_smoothing <= 1.0:
            raise RateModelError(
                f"delay_smoothing must be in (0, 1], got {delay_smoothing}"
            )
        self.protocol = protocol
        self.epoch_s = float(epoch_s)
        self.queue_limit_bytes = float(queue_limit_bytes)
        self.ecn_threshold_frac = float(ecn_threshold_frac)
        self.init_cwnd_bytes = float(init_cwnd_bytes)
        self.min_cwnd_bytes = float(min_cwnd_bytes)
        self.mss_bytes = float(mss_bytes)
        self.ai_mss_per_rtt = float(ai_mss_per_rtt)
        self.md_factor = float(md_factor)
        self.dctcp_g = float(dctcp_g)
        self.delay_threshold = float(delay_threshold)
        self.delay_smoothing = float(delay_smoothing)
        self._states: Dict["FlowTransfer", CcFlowState] = {}
        self._tick_event = None
        self._last_tick = 0.0

    # -- lifecycle -----------------------------------------------------------

    def attach(self, network: "Network") -> None:
        super().attach(network)
        threshold = self.queue_limit_bytes * self.ecn_threshold_frac
        for link in network.links():
            link.forward.enable_queue(self.queue_limit_bytes, threshold)
            link.reverse.enable_queue(self.queue_limit_bytes, threshold)

    def on_activate(self, flow: "FlowTransfer") -> None:
        rtt_base = 2.0 * sum(d.latency for d in flow.directions)
        if rtt_base <= 0.0:
            # Zero-latency path (loopback-ish): fall back to one epoch so
            # the demand stays finite.
            rtt_base = self.epoch_s
        state = CcFlowState(
            self.protocol,
            rtt_base_s=rtt_base,
            init_cwnd_bytes=self.init_cwnd_bytes,
            min_cwnd_bytes=self.min_cwnd_bytes,
            mss_bytes=self.mss_bytes,
            ai_mss_per_rtt=self.ai_mss_per_rtt,
            md_factor=self.md_factor,
            dctcp_g=self.dctcp_g,
            delay_threshold=self.delay_threshold,
            delay_smoothing=self.delay_smoothing,
        )
        self._states[flow] = state
        # Completion-boundary signal plumbing: observers (and the load
        # engine) read the flow's cc state after it finishes.
        flow.cc = state
        if self._tick_event is None:
            self._last_tick = self.network.sim.now
            self._tick_event = self.network.sim.schedule(
                self.epoch_s, self._tick
            )

    def on_detach(self, flow: "FlowTransfer") -> None:
        self._states.pop(flow, None)

    # -- allocation ----------------------------------------------------------

    def _path_queue_delay(self, flow: "FlowTransfer") -> float:
        total = 0.0
        for direction in flow.directions:
            queue = direction.queue
            if queue is not None:
                total += queue.delay_s()
        return total

    def allocate(
        self,
        flows: List["FlowTransfer"],
        dirty_dirs: Optional[set],
    ) -> Dict["FlowTransfer", float]:
        network = self.network
        now = network.sim.now
        rate_caps = network._rate_caps
        # Demand per flow: window over queue-inclusive RTT, clamped by
        # any explicit rate_cap.  ``flows`` arrives sorted by flow_id.
        demands: Dict["FlowTransfer", float] = {}
        for flow in flows:
            state = self._states.get(flow)
            if state is None:
                demand = math.inf  # e.g. flow activated before attach
            else:
                demand = state.demand_rate(self._path_queue_delay(flow))
            cap = rate_caps.get(flow)
            if cap is not None and cap < demand:
                demand = cap
            demands[flow] = demand
        flow_paths = {flow: flow.directions for flow in flows}
        capacities: Dict["LinkDirection", float] = {}
        for flow in flows:
            for direction in flow.directions:
                capacities[direction] = direction.capacity
        rates = max_min_rates(flow_paths, capacities, demands,
                              validate=False)
        # Refresh queue inflows: settle each touched queue with the old
        # offered demand up to now, then set the new aggregate demand.
        # Accumulation follows flow_id order, so the float sums are
        # deterministic.
        offered: Dict["LinkDirection", float] = {}
        for flow in flows:
            demand = demands[flow]
            if not math.isfinite(demand):
                continue
            for direction in flow.directions:
                offered[direction] = offered.get(direction, 0.0) + demand
        touched: set = set(offered)
        if dirty_dirs:
            touched |= dirty_dirs
        for direction in sorted(touched, key=lambda d: d.name):
            queue = direction.queue
            if queue is None:
                continue
            queue.advance(now)
            queue.offered = offered.get(direction, 0.0)
        return rates

    # -- the epoch ticker ----------------------------------------------------

    def _tick(self) -> None:
        network = self.network
        self._tick_event = None
        # Fold any same-instant churn solve in first so the active set
        # and queue inflows are current before windows move.
        network._flush_solve()
        if not self._states:
            return  # every cc flow finished; the ticker re-arms on activate
        sim = network.sim
        now = sim.now
        dt = now - self._last_tick
        self._last_tick = now
        flows = sorted(self._states, key=lambda f: f.flow_id)
        # Close the epoch on every queue along any active path, then pull
        # the per-direction interval signals once.
        signals: Dict["LinkDirection", tuple] = {}
        directions: set = set()
        for flow in flows:
            directions.update(flow.directions)
        for direction in sorted(directions, key=lambda d: d.name):
            queue = direction.queue
            if queue is None:
                continue
            queue.advance(now)
            signals[direction] = queue.collect()
        # Window updates from the path-worst signals.
        if dt > 0.0:
            for flow in flows:
                state = self._states[flow]
                ecn_frac = 0.0
                loss = False
                queue_delay = 0.0
                for direction in flow.directions:
                    entry = signals.get(direction)
                    if entry is None:
                        continue
                    marked_s, observed_s, dropped = entry
                    if observed_s > 0.0:
                        frac = marked_s / observed_s
                        if frac > ecn_frac:
                            ecn_frac = frac
                    loss = loss or dropped
                    queue_delay += direction.queue.delay_s()
                state.update(now, dt, state.rtt_base + queue_delay,
                             ecn_frac, loss)
        # Re-allocate the whole active set under the new windows.
        network._epoch_reallocate(flows)
        self._tick_event = sim.schedule(self.epoch_s, self._tick)

    def describe(self) -> dict:
        return {
            "model": self.name,
            "protocol": self.protocol,
            "epoch_s": self.epoch_s,
            "queue_limit_bytes": self.queue_limit_bytes,
            "ecn_threshold_frac": self.ecn_threshold_frac,
        }


def queue_metrics(directions: Iterable["LinkDirection"]) -> dict:
    """Queue/ECN rollup over ``directions``, anchored on the worst queue.

    ``queue_depth_p99`` and ``ecn_mark_frac`` are the *worst direction's*
    time-weighted p99 occupancy and mark fraction -- the bottleneck story
    (the ToR in an incast), not a fleet average diluted by idle links.
    Drops are summed.  Directions without a queue model contribute
    nothing; with none at all every metric is 0 -- so under the default
    max-min model this reports exact zeros.
    """
    p99 = 0.0
    mark_frac = 0.0
    dropped_bytes = 0.0
    drop_events = 0
    peak = 0.0
    for direction in directions:
        queue = direction.queue
        if queue is None:
            continue
        if queue.depth_hist.total > 0:
            depth = queue.depth_hist.quantile(0.99)
            if depth > p99:
                p99 = depth
        frac = queue.mark_fraction()
        if frac > mark_frac:
            mark_frac = frac
        dropped_bytes += queue.dropped_bytes
        drop_events += queue.drop_events
        if queue.peak_bytes > peak:
            peak = queue.peak_bytes
    return {
        "queue_depth_p99": p99,
        "queue_depth_peak": peak,
        "ecn_mark_frac": mark_frac,
        "dropped_bytes": dropped_bytes,
        "drop_events": drop_events,
    }
