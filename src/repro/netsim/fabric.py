"""The live network: flows, fair-share rates, congestion accounting.

:class:`Network` instantiates a :class:`~repro.netsim.link.Link` per
topology edge and runs the fluid flow model: whenever a flow starts,
finishes, or is rerouted, fair-share rates are recomputed with
:func:`~repro.netsim.fairness.max_min_rates` and completion events are
rescheduled.  Per-direction utilisation gauges and congestion counters
feed the cross-layer experiments (C2/C3) directly.

The recompute is *incremental* by default: each churn event (activate,
complete, fail, reroute) marks the link directions and flows it touched
dirty, and the next solve only covers the affected bottleneck component
-- the flows transitively sharing a link with the dirty set -- instead of
the whole fabric.  Because the solver fills each component independently
(see :mod:`repro.netsim.fairness`), the component-local answer is
bit-identical to the corresponding slice of a full solve; rates, bytes
and congestion accounting cannot drift.  Pass ``incremental=False`` for
the exact-fallback path that re-solves everything on every event (the
pre-optimisation behaviour, kept for cross-checking and benchmarks).

Solves are additionally *coalesced within a simulated instant*: churn
marks state dirty and arms one low-priority kernel event at the current
timestamp; the actual solve runs once, after every same-instant churn
event has been dispatched.  Because simulated time does not advance
between the churn and the solve, no byte accounting can be missed --
``_settle`` over a zero-length window moves nothing -- so rates at every
clock *boundary* are identical to solving eagerly.  What the coalescing
removes is the O(burst) re-solve per event when e.g. a monitoring sweep
starts hundreds of flows at the same instant, which used to make fleet
boot quadratic in burst size.  Readers that want rates mid-instant
(reports, placement) go through :meth:`Network.sync` /
:meth:`Network.congestion_report`, which flush any pending solve first.

Rate assignment itself is pluggable: every solve settles byte accounting,
then delegates the actual rate vector to a
:class:`~repro.netsim.cc.RateModel` strategy.  The default
:class:`~repro.netsim.cc.MaxMinRateModel` reproduces the historic
instantaneous fair share byte-for-byte; :class:`~repro.netsim.cc.CcRateModel`
adds per-flow congestion windows, per-direction queue occupancy and an
epoch-stepped update loop that re-enters the fabric through
:meth:`Network._epoch_reallocate`.
"""

from __future__ import annotations

import enum
import math
from typing import Dict, Hashable, Iterable, List, Optional

from repro import trace
from repro.errors import ConnectionResetError, NetworkError, NoRouteError
from repro.netsim.cc import MaxMinRateModel, RateModel, queue_metrics
from repro.netsim.link import Link, LinkDirection
from repro.netsim.routing import PathService, ShortestPathRouting, path_links
from repro.netsim.topology import Topology
from repro.sim.kernel import Event, Simulator
from repro.sim.process import Signal, Timeout
from repro.telemetry.series import Counter, TimeSeries
from repro.trace.span import NULL_SPAN

_EPSILON_BYTES = 1e-6


class FlowState(enum.Enum):
    PENDING = "pending"    # waiting for route resolution / propagation
    ACTIVE = "active"      # transferring data
    DONE = "done"
    FAILED = "failed"


class FlowTransfer:
    """One data transfer (think: a TCP flow) through the fabric.

    The ``done`` Signal succeeds with the flow when the last byte arrives,
    or fails with a :class:`~repro.errors.NetworkError`.
    """

    _next_id = 0

    def __init__(
        self,
        network: "Network",
        src: str,
        dst: str,
        size: float,
        flow_key: Hashable,
        rate_cap: Optional[float],
        tag: str,
    ) -> None:
        FlowTransfer._next_id += 1
        self.flow_id = FlowTransfer._next_id
        self.network = network
        self.src = src
        self.dst = dst
        self.size = float(size)
        self.flow_key = flow_key if flow_key is not None else self.flow_id
        self.rate_cap = rate_cap
        self.tag = tag
        self.state = FlowState.PENDING
        self.done = Signal(network.sim, name=f"flow{self.flow_id}.done")
        # Causal trace span covering request -> last byte (repro.trace).
        self.span = NULL_SPAN

        self.path: List[str] = []
        self.preset_path: Optional[List[str]] = None
        self.directions: List[LinkDirection] = []
        self.remaining = self.size
        self.rate = 0.0
        self.requested_at = network.sim.now
        self.started_at: Optional[float] = None
        self.completed_at: Optional[float] = None
        self._last_update = network.sim.now
        self._completion_event: Optional[Event] = None
        # Congestion-control state (a repro.netsim.cc.CcFlowState) when a
        # cc rate model governs this flow; None under max-min.  Survives
        # completion so flow observers can read loss/ECN signal counts at
        # the completion boundary.
        self.cc = None

    @property
    def duration(self) -> Optional[float]:
        """Transfer time from request to completion (None until done)."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.requested_at

    @property
    def throughput(self) -> Optional[float]:
        """Achieved mean throughput in bytes/s (None until done)."""
        duration = self.duration
        if duration is None or duration <= 0:
            return None
        return self.size / duration

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Flow {self.flow_id} {self.src}->{self.dst} "
            f"{self.state.value} {self.remaining:.0f}/{self.size:.0f}B>"
        )


class Network:
    """The fabric: links + active flows + the fair-share rate solver."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        path_service: Optional[PathService] = None,
        congestion_threshold: float = 0.9,
        incremental: bool = True,
        rate_model: Optional[RateModel] = None,
    ) -> None:
        topology.validate()
        self.sim = sim
        self.topology = topology
        self.path_service: PathService = path_service or ShortestPathRouting(sim, topology)
        self.congestion_threshold = congestion_threshold
        self.incremental = incremental

        self._links: Dict[frozenset, Link] = {}
        for a, b, spec in topology.edges():
            self._links[frozenset((a, b))] = Link(sim, a, b, spec.bandwidth, spec.latency)

        self._active: set[FlowTransfer] = set()
        # Rate caps of active flows, maintained incrementally alongside
        # the dirty-flow tracking (activate adds, detach removes) so a
        # solve never rebuilds it from the flow set; the solver reads it
        # per-flow via .get and never iterates it.
        self._rate_caps: Dict[FlowTransfer, float] = {}
        # The rate-assignment strategy (see repro.netsim.cc).
        self.rate_model: RateModel = rate_model if rate_model is not None \
            else MaxMinRateModel()
        self.rate_model.attach(self)
        # Active partition: node name -> group index (None = no partition).
        # Nodes absent from the map form one implicit "rest" group.
        self._partition: Optional[Dict[str, int]] = None
        # Incremental solver state: link directions whose flow membership
        # changed and flows whose constraints changed since the last solve.
        self._dirty_directions: set[LinkDirection] = set()
        self._dirty_flows: set[FlowTransfer] = set()
        # The one deferred solve armed for the current instant (None when
        # no churn is pending).  See the module docstring on coalescing.
        self._solve_event: Optional[Event] = None
        # Cumulative solver effort counters (benchmark/diagnostic aid):
        # how many flow-rate assignments each recompute performed.
        self.recomputes = 0
        self.flows_solved = 0
        self.flows_started = Counter(sim, "net.flows.started")
        self.flows_completed = Counter(sim, "net.flows.completed")
        self.flows_failed = Counter(sim, "net.flows.failed")
        self.bytes_delivered = Counter(sim, "net.bytes.delivered")
        self.flow_durations = TimeSeries("net.flow.durations")
        # Observers called with each flow as it completes or fails
        # (trace recorders, TE telemetry, ...).
        self.flow_observers: list = []

    # -- link access ---------------------------------------------------------

    def link(self, a: str, b: str) -> Link:
        try:
            return self._links[frozenset((a, b))]
        except KeyError:
            raise NetworkError(f"no link between {a!r} and {b!r}") from None

    def links(self) -> Iterable[Link]:
        return self._links.values()

    def direction(self, src: str, dst: str) -> LinkDirection:
        return self.link(src, dst).direction(src, dst)

    # -- link failure ----------------------------------------------------------

    def fail_link(self, a: str, b: str) -> None:
        """Cut a cable: active flows over it fail; routing recomputes."""
        link = self.link(a, b)
        if not link.up:
            return
        link.up = False
        if hasattr(self.path_service, "mark_link"):
            self.path_service.mark_link(a, b, up=False)
        else:
            self.path_service.invalidate()
        victims = [
            flow
            for flow in self._active
            if any(d.link is link for d in flow.directions)
        ]
        for flow in victims:
            self._fail_flow(
                flow, ConnectionResetError(f"link {a}<->{b} failed mid-transfer")
            )
        self._request_solve()

    def repair_link(self, a: str, b: str) -> None:
        link = self.link(a, b)
        if link.up:
            return
        link.up = True
        if hasattr(self.path_service, "mark_link"):
            self.path_service.mark_link(a, b, up=True)
        else:
            self.path_service.invalidate()

    # -- gray failures ---------------------------------------------------------

    def degrade_link(self, a: str, b: str, bandwidth_frac: float = 1.0,
                     extra_latency: float = 0.0, loss: float = 0.0) -> None:
        """Gray-fail a cable: less capacity / more latency / packet loss.

        Unlike :meth:`fail_link` the binary link state stays *up*:
        routing keeps using the link, no flow is killed, nothing is
        rerouted -- active flows simply get squeezed by the fair-share
        solver onto the reduced capacity.  ``loss`` is bookkeeping for
        higher layers (the load engine's retransmission model); the
        fluid byte accounting itself is lossless.
        """
        link = self.link(a, b)
        link.degrade(bandwidth_frac=bandwidth_frac,
                     extra_latency=extra_latency, loss=loss)
        self._dirty_directions.add(link.forward)
        self._dirty_directions.add(link.reverse)
        self._request_solve()

    def restore_link(self, a: str, b: str) -> None:
        """Clear a link's gray-failure state (capacity back to spec)."""
        link = self.link(a, b)
        if not link.degraded:
            return
        link.restore()
        self._dirty_directions.add(link.forward)
        self._dirty_directions.add(link.reverse)
        self._request_solve()

    # -- partitions -----------------------------------------------------------

    def set_partition(self, groups: Iterable[Iterable[str]]) -> None:
        """Cut cross-group reachability without failing any link.

        ``groups`` is a list of node-name groups; nodes not named fall
        into one implicit "rest" group.  Flows whose path would cross a
        group boundary fail to establish (``NoRouteError``), and active
        flows already crossing one are reset -- both control and data
        plane, since every REST call and heartbeat is a fabric flow.
        Links stay *up* and routing state is untouched: this models a
        reachability cut (mis-pushed ACL, spanning-tree meltdown), not
        cable damage, so :meth:`clear_partition` heals instantly.
        """
        partition: Dict[str, int] = {}
        for index, group in enumerate(groups):
            for node in group:
                if node not in self.topology.graph:
                    raise NetworkError(f"unknown partition member {node!r}")
                partition[node] = index
        self._partition = partition
        victims = sorted(
            (flow for flow in self._active
             if self._partition_blocks(flow.path)),
            key=lambda flow: flow.flow_id,
        )
        for flow in victims:
            self._fail_flow(
                flow, ConnectionResetError(
                    f"network partition cut the {flow.src}->{flow.dst} path"
                )
            )

    def clear_partition(self) -> None:
        """Heal the partition: cross-group traffic flows again."""
        self._partition = None

    @property
    def partitioned(self) -> bool:
        return self._partition is not None

    def _partition_blocks(self, path: List[str]) -> bool:
        """Does ``path`` cross a partition group boundary?"""
        partition = self._partition
        if partition is None or not path:
            return False
        group = partition.get(path[0], -1)
        for node in path[1:]:
            if partition.get(node, -1) != group:
                return True
        return False

    # -- transfers ---------------------------------------------------------------

    def transfer(
        self,
        src: str,
        dst: str,
        nbytes: float,
        flow_key: Hashable = None,
        rate_cap: Optional[float] = None,
        tag: str = "",
        parent=None,
        path: Optional[List[str]] = None,
    ) -> FlowTransfer:
        """Start a transfer of ``nbytes`` from ``src`` to ``dst``.

        Returns immediately with a :class:`FlowTransfer`; wait on its
        ``done`` signal for completion.  A zero-byte transfer still pays
        the path's propagation latency (it models a control message).
        ``parent`` (a span or span context) attributes the flow to its
        causal trace.  ``path`` pre-resolves routing: the flow takes
        exactly these hops instead of asking the path service -- the
        sharded kernel uses this to run one segment of a cross-shard
        flow whose end-to-end route was resolved elsewhere, so the
        endpoints may be switches.
        """
        if nbytes < 0:
            raise NetworkError(f"cannot transfer {nbytes} bytes")
        for node in (src, dst):
            if node not in self.topology.graph:
                raise NetworkError(f"unknown endpoint {node!r}")
        if path is not None and (not path or path[0] != src or path[-1] != dst):
            raise NetworkError(
                f"explicit path must join {src!r} to {dst!r}, got {path}"
            )
        flow = FlowTransfer(self, src, dst, nbytes, flow_key, rate_cap, tag)
        flow.preset_path = list(path) if path is not None else None
        flow.span = trace.start_span(
            self.sim, "net.flow", parent=parent, kind="net",
            attributes={"src": src, "dst": dst, "bytes": nbytes, "tag": tag},
        )
        self.sim.process(self._run_flow(flow), name=f"flow{flow.flow_id}")
        return flow

    def _run_flow(self, flow: FlowTransfer):
        if flow.preset_path is not None:
            path = flow.preset_path
        else:
            try:
                path = yield self.path_service.resolve(
                    flow.src, flow.dst, flow.flow_key)
            except NoRouteError as exc:
                self._fail_flow(flow, exc)
                return
        if self._partition is not None and self._partition_blocks(path):
            self._fail_flow(flow, NoRouteError(
                f"network partition blocks {flow.src}->{flow.dst}"
            ))
            return
        try:
            directions = self._directions_for(path)
        except NetworkError as exc:
            self._fail_flow(flow, exc)
            return
        flow.path = list(path)
        flow.directions = directions
        # Propagation: the first byte takes the path's total latency.
        total_latency = sum(d.latency for d in directions)
        if total_latency > 0:
            yield Timeout(self.sim, total_latency)
        if flow.state is not FlowState.PENDING:
            return  # failed while propagating
        # A link may have died -- or a partition landed -- during the
        # propagation window.
        dead = [d for d in directions if not d.link.up]
        if dead:
            self._fail_flow(flow, NoRouteError(
                f"link {dead[0].link.a}<->{dead[0].link.b} failed "
                "while the flow was being established"
            ))
            return
        if self._partition is not None and self._partition_blocks(flow.path):
            self._fail_flow(flow, NoRouteError(
                f"network partition blocks {flow.src}->{flow.dst}"
            ))
            return
        self._activate(flow)

    def _directions_for(self, path: List[str]) -> List[LinkDirection]:
        directions = []
        for a, b in path_links(path):
            link = self.link(a, b)
            if not link.up:
                raise NoRouteError(f"path uses failed link {a}<->{b}")
            directions.append(link.direction(a, b))
        return directions

    def _activate(self, flow: FlowTransfer) -> None:
        flow.state = FlowState.ACTIVE
        flow.started_at = self.sim.now
        flow._last_update = self.sim.now
        self.flows_started.add()
        if flow.remaining <= _EPSILON_BYTES:
            self._complete(flow)
            return
        self._active.add(flow)
        self._dirty_flows.add(flow)
        if flow.rate_cap is not None:
            self._rate_caps[flow] = flow.rate_cap
        for direction in flow.directions:
            direction.flows.add(flow)
            self._dirty_directions.add(direction)
        self.rate_model.on_activate(flow)
        self._request_solve()

    def reroute(self, flow: FlowTransfer, new_path: List[str]) -> None:
        """Move an active flow onto a different path (SDN TE hook)."""
        if flow.state is not FlowState.ACTIVE:
            raise NetworkError(f"cannot reroute flow in state {flow.state.value}")
        if new_path[0] != flow.src or new_path[-1] != flow.dst:
            raise NetworkError(
                f"reroute path must join {flow.src!r} to {flow.dst!r}"
            )
        directions = self._directions_for(new_path)
        self._settle(flow)
        for direction in flow.directions:
            direction.flows.discard(flow)
            self._dirty_directions.add(direction)
        flow.path = list(new_path)
        flow.directions = directions
        self._dirty_flows.add(flow)
        for direction in directions:
            direction.flows.add(flow)
            self._dirty_directions.add(direction)
        self._request_solve()

    # -- the fluid model ----------------------------------------------------------

    def _request_solve(self) -> None:
        """Arm the one deferred solve for the current instant.

        Churn handlers call this instead of solving inline; the solve
        runs as a priority-1 kernel event at ``sim.now``, after every
        same-instant priority-0 event (including churn the first piece
        triggered transitively) has been dispatched.  An armed event is
        always at the current instant -- the kernel fires it before the
        clock can advance -- so one pending event covers all callers.
        """
        if self._solve_event is None:
            self._solve_event = self.sim.schedule(0.0, self._run_solve, priority=1)

    def _run_solve(self) -> None:
        self._solve_event = None
        self._recompute()

    def _flush_solve(self) -> None:
        """Run any pending deferred solve now (same instant, so exact)."""
        event = self._solve_event
        if event is None:
            return
        event.cancel()
        self._solve_event = None
        self._recompute()

    def _settle(self, flow: FlowTransfer) -> None:
        """Bring a flow's remaining-bytes up to date with the clock."""
        if math.isinf(flow.rate):
            # Unconstrained flow (e.g. loopback): drains instantly.
            flow.remaining = 0.0
            flow._last_update = self.sim.now
            return
        elapsed = self.sim.now - flow._last_update
        if elapsed > 0 and flow.rate > 0:
            moved = min(flow.remaining, flow.rate * elapsed)
            flow.remaining -= moved
            for direction in flow.directions:
                direction.bytes_carried.add(moved)
        flow._last_update = self.sim.now

    def _affected(self) -> tuple[list[FlowTransfer], set[LinkDirection]]:
        """Expand the dirty set into whole bottleneck components.

        Returns every active flow transitively sharing a direction with a
        dirty flow/direction (sorted by flow id for determinism) plus all
        directions reached -- a closed subproblem for the solver.
        """
        seen_flows = {f for f in self._dirty_flows if f in self._active}
        seen_dirs = set(self._dirty_directions)
        frontier = list(seen_flows)
        for direction in self._dirty_directions:
            for flow in direction.flows:
                if flow not in seen_flows:
                    seen_flows.add(flow)
                    frontier.append(flow)
        while frontier:
            flow = frontier.pop()
            for direction in flow.directions:
                if direction not in seen_dirs:
                    seen_dirs.add(direction)
                    for other in direction.flows:
                        if other not in seen_flows:
                            seen_flows.add(other)
                            frontier.append(other)
        return sorted(seen_flows, key=lambda f: f.flow_id), seen_dirs

    def _recompute(self) -> None:
        """Re-solve rates and reschedule completions (churn entry point).

        Incremental mode solves only the dirty bottleneck component(s);
        the fallback treats everything as dirty and re-solves the whole
        fabric (the pre-optimisation behaviour).  Both paths run the same
        per-component arithmetic, so they assign identical rates.  The
        rate vector itself comes from the pluggable rate model; under the
        default max-min strategy this is byte-identical to the historic
        inline solve.
        """
        if self.incremental:
            flows, dirty_dirs = self._affected()
        else:
            flows = sorted(self._active, key=lambda f: f.flow_id)
            dirty_dirs = None  # refresh every direction below
        self._dirty_flows.clear()
        self._dirty_directions.clear()
        if not flows and dirty_dirs is not None and not dirty_dirs:
            return
        self.recomputes += 1
        self.flows_solved += len(flows)

        for flow in flows:
            self._settle(flow)

        rates = self.rate_model.allocate(flows, dirty_dirs)
        self._apply_rates(flows, rates)
        self._refresh_loads(flows, dirty_dirs)

    def _epoch_reallocate(self, flows: List[FlowTransfer]) -> None:
        """Cc epoch entry point: re-rate ``flows`` under updated windows.

        Called by :class:`~repro.netsim.cc.CcRateModel` on its epoch tick
        with the *whole* active cc flow set (sorted by flow id).  Same
        settle -> allocate -> apply -> refresh sequence as a churn solve,
        but without touching the dirty sets: windows moving changes no
        link membership.  Only directions on active paths can see their
        aggregate rate move, so only those loads are refreshed.
        """
        if not flows:
            return
        self.recomputes += 1
        self.flows_solved += len(flows)
        for flow in flows:
            self._settle(flow)
        rates = self.rate_model.allocate(flows, None)
        self._apply_rates(flows, rates)
        touched: set[LinkDirection] = set()
        for flow in flows:
            touched.update(flow.directions)
        self._refresh_loads(flows, touched)

    def _apply_rates(self, flows: List[FlowTransfer],
                     rates: Dict[FlowTransfer, float]) -> None:
        """Install new rates and (re)schedule completion events."""
        now = self.sim.now
        for flow in flows:
            new_rate = rates[flow]
            event = flow._completion_event
            if new_rate == flow.rate and event is not None and not event.cancelled:
                # Unchanged rate: the pending completion event was
                # computed from the same rate history, so its firing
                # time is still valid -- skip the cancel/reschedule.
                continue
            flow.rate = new_rate
            if new_rate > 0 and math.isfinite(new_rate):
                due = now + flow.remaining / new_rate
            elif math.isinf(new_rate):
                due = now
            else:
                due = math.inf  # stalled: next capacity-freeing solve re-arms
            if event is not None and not event.cancelled and event.time <= due:
                # The pending event fires at or before the new completion
                # time.  An early wakeup is harmless -- _complete settles
                # the flow and re-arms for the residue -- so only a rate
                # *increase* (completion moving earlier) forces a
                # reschedule.  Slowdowns, the common case in a churn
                # burst, keep their event and leave no heap tombstone.
                continue
            if event is not None:
                event.cancel()
                flow._completion_event = None
            if math.isfinite(due):
                flow._completion_event = self.sim.schedule_at(
                    due, self._complete, flow
                )

    def _refresh_loads(self, flows: List[FlowTransfer],
                       dirty_dirs: Optional[set]) -> None:
        """Refresh loads and congestion accounting on touched directions
        only: an untouched direction's aggregate rate cannot have moved.
        ``dirty_dirs=None`` refreshes every direction (full solve)."""
        loads: Dict[LinkDirection, float] = {}
        for flow in flows:
            if not math.isfinite(flow.rate):
                continue
            for direction in flow.directions:
                loads[direction] = loads.get(direction, 0.0) + flow.rate
        if dirty_dirs is None:
            for link in self._links.values():
                for direction in (link.forward, link.reverse):
                    direction.set_load(
                        loads.get(direction, 0.0), self.congestion_threshold
                    )
        else:
            for direction in sorted(dirty_dirs, key=lambda d: d.name):
                direction.set_load(
                    loads.get(direction, 0.0), self.congestion_threshold
                )

    def _complete(self, flow: FlowTransfer) -> None:
        if flow.state is not FlowState.ACTIVE:
            return
        self._settle(flow)
        if flow.remaining > _EPSILON_BYTES and flow.remaining > flow.size * 1e-9:
            # Either a stale wakeup (a reroute slowed the flow down after
            # this event was scheduled) or floating-point rounding left a
            # hair of residue.  Re-arm completion for whatever remains so
            # the flow always makes progress; a zero rate waits for the
            # next recompute instead.
            if flow.rate > 0 and math.isfinite(flow.rate):
                eta = flow.remaining / flow.rate
                if self.sim.now + eta > self.sim.now:
                    flow._completion_event = self.sim.schedule(
                        eta, self._complete, flow
                    )
                    return
                # The residue drains in less than one representable clock
                # tick at the current timestamp: the rescheduled event
                # would fire at the *same* instant, _settle would move
                # zero bytes, and the flow would re-arm itself forever.
                # Deliver the sub-resolution residue now instead.
            else:
                # Stalled flow: drop the reference to this (already fired)
                # event so the next solve doesn't mistake it for a pending
                # completion, and wait for capacity to free up.
                flow._completion_event = None
                return
        flow.remaining = 0.0
        flow.state = FlowState.DONE
        flow.completed_at = self.sim.now
        self._detach(flow)
        self.flows_completed.add()
        self.bytes_delivered.add(flow.size)
        self.flow_durations.record(self.sim.now, flow.duration or 0.0)
        # The freed capacity is handed out by the deferred solve at this
        # same instant; waiters that need post-completion loads mid-instant
        # read them through sync()/congestion_report(), which flush it.
        self._request_solve()
        flow.span.end("ok")
        for observer in self.flow_observers:
            observer(flow)
        flow.done.succeed(flow)

    def _fail_flow(self, flow: FlowTransfer, exc: NetworkError) -> None:
        if flow.state in (FlowState.DONE, FlowState.FAILED):
            return
        was_active = flow.state is FlowState.ACTIVE
        flow.state = FlowState.FAILED
        self._detach(flow)
        self.flows_failed.add()
        flow.span.end("error", str(exc))
        for observer in self.flow_observers:
            observer(flow)
        flow.done.fail(exc)
        if was_active:
            self._request_solve()

    def _detach(self, flow: FlowTransfer) -> None:
        self._active.discard(flow)
        self._dirty_flows.discard(flow)
        self._rate_caps.pop(flow, None)
        for direction in flow.directions:
            direction.flows.discard(flow)
            self._dirty_directions.add(direction)
        self.rate_model.on_detach(flow)
        if flow._completion_event is not None:
            flow._completion_event.cancel()
            flow._completion_event = None

    # -- reporting ------------------------------------------------------------------

    @property
    def active_flow_count(self) -> int:
        return len(self._active)

    def active_flows(self) -> list[FlowTransfer]:
        return sorted(self._active, key=lambda f: f.flow_id)

    def sync(self) -> None:
        """Bring every active flow's byte accounting up to the clock.

        The incremental solver settles only the flows a churn event
        touched; call this before reading byte counters mid-run so
        long-lived untouched flows are accounted up to ``sim.now`` too.
        Also flushes any solve deferred from churn at the current
        instant, so rates and link loads read afterwards are current.
        """
        self._flush_solve()
        for flow in sorted(self._active, key=lambda f: f.flow_id):
            self._settle(flow)

    def congestion_report(self) -> list[dict[str, object]]:
        """Per-direction congestion summary, worst first (experiment C2)."""
        self.sync()
        rows = []
        for link in self._links.values():
            for direction in (link.forward, link.reverse):
                direction.finalize_congestion()
                rows.append(
                    {
                        "direction": direction.name,
                        "mean_util": direction.mean_utilization(),
                        "congested_s": direction.congested_seconds,
                        "episodes": direction.congestion_episodes,
                        "bytes": direction.bytes_carried.total,
                    }
                )
        rows.sort(key=lambda r: (-r["congested_s"], -r["mean_util"]))
        return rows

    def path_queue_delay(self, directions: Iterable[LinkDirection]) -> float:
        """Current queueing delay summed along ``directions``.

        Exactly 0.0 when no queue model is attached (the default max-min
        rate model), so latency models adding this term stay bit-identical
        on the default path.
        """
        total = 0.0
        for direction in directions:
            queue = direction.queue
            if queue is not None:
                total += queue.delay_s()
        return total

    def queue_metrics(self) -> dict:
        """Fabric-wide queue/ECN rollup (all zeros under max-min).

        See :func:`repro.netsim.cc.queue_metrics`: worst-direction p99
        occupancy and ECN-mark fraction, summed drops.
        """
        directions = []
        for link in self._links.values():
            directions.append(link.forward)
            directions.append(link.reverse)
        return queue_metrics(directions)

    def queue_report(self) -> list[dict[str, object]]:
        """Per-direction queue summary, deepest p99 first (cc runs only)."""
        self.sync()
        rows = []
        for link in self._links.values():
            for direction in (link.forward, link.reverse):
                queue = direction.queue
                if queue is None or queue.observed_seconds <= 0:
                    continue
                rows.append({
                    "direction": direction.name,
                    "queue_p99": (queue.depth_hist.quantile(0.99)
                                  if queue.depth_hist.total > 0 else 0.0),
                    "queue_peak": queue.peak_bytes,
                    "ecn_mark_frac": queue.mark_fraction(),
                    "dropped_bytes": queue.dropped_bytes,
                    "drop_events": queue.drop_events,
                })
        rows.sort(key=lambda r: (-r["queue_p99"], r["direction"]))
        return rows
