"""The SDN controller and the reactive OpenFlow path service.

``OpenFlowPathService`` is a :class:`~repro.netsim.routing.PathService`
the fabric can use directly.  Flow setup follows the OpenFlow reactive
pattern:

1. A new flow's first packet reaches the first OpenFlow switch on its
   way; the switch has no matching rule -> **PacketIn** to the controller
   (control-channel latency).
2. The controller's routing app computes a path; the controller sends
   **FlowMod** installs to every OpenFlow switch on it (one control RTT,
   installs in parallel).
3. The flow proceeds; subsequent flows between the same endpoints hit the
   cached rules and start with *no* controller involvement -- until the
   rules idle out.

The control channel is modelled as out-of-band with constant per-message
latency (the common deployment; the paper's switches hang off the same
gateway but control traffic is negligible at flow granularity).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Protocol

import networkx as nx

from repro.errors import NoRouteError
from repro.netsim.routing import PathCache, path_links
from repro.netsim.sdn.openflow import OpenFlowSwitch
from repro.netsim.topology import Topology
from repro.sim.kernel import Simulator
from repro.sim.process import Signal, Timeout
from repro.units import msec

DEFAULT_IDLE_TIMEOUT_S = 60.0
DEFAULT_CONTROL_LATENCY_S = msec(1)


class RoutingApp(Protocol):
    """A controller application choosing paths."""

    def compute_path(
        self, graph: nx.Graph, src: str, dst: str, flow_key: Hashable,
        controller: "SdnController",
    ) -> List[str]:
        """Return a node path or raise :class:`NoRouteError`."""
        ...


class SdnController:
    """Logically-centralised control: topology view + switch handles + app."""

    def __init__(
        self, sim: Simulator, topology: Topology, app: RoutingApp,
        structured: bool = True,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.app = app
        self.switches: Dict[str, OpenFlowSwitch] = {
            node: OpenFlowSwitch(sim, node)
            for node in topology.switches()
            if topology.is_openflow(node)
        }
        # The controller's topology view: structured path groups over a
        # working graph patched in place per link event.  Apps answer
        # PacketIns from these caches instead of re-searching the graph.
        self.paths = PathCache(topology, structured)
        self.network = None  # attached after Network construction
        self.packet_in_count = 0
        self.flow_mod_count = 0

    def attach_network(self, network) -> None:
        """Give the controller a stats view of the live fabric."""
        self.network = network

    # -- topology view ---------------------------------------------------------

    def mark_link(self, a: str, b: str, up: bool) -> None:
        self.paths.mark_link(a, b, up)
        if not up:
            # Purge rules that forward into the dead link.
            for node in (a, b):
                switch = self.switches.get(node)
                if switch is not None:
                    other = b if node == a else a
                    switch.table.remove_via(other)

    def working_graph(self) -> nx.Graph:
        return self.paths.graph

    # -- control-plane operations -------------------------------------------------

    def handle_packet_in(self, src: str, dst: str, flow_key: Hashable) -> List[str]:
        """Compute a path for a table-miss (PacketIn handler)."""
        self.packet_in_count += 1
        return self.app.compute_path(self.working_graph(), src, dst, flow_key, self)

    def install_path(self, path: List[str], idle_timeout: float,
                     key: Hashable = None) -> int:
        """Install FlowMods along a path; returns the number sent.

        ``key=None`` installs pair-granularity rules; a flow key installs
        per-flow (5-tuple-style) rules.
        """
        sent = 0
        for a, b in path_links(path):
            switch = self.switches.get(a)
            if switch is not None:
                switch.table.install((path[0], path[-1], key), b, idle_timeout)
                sent += 1
        self.flow_mod_count += sent
        return sent

    def openflow_nodes_on(self, path: List[str]) -> list[str]:
        return [node for node in path if node in self.switches]

    def path_still_installed(self, path: List[str], key: Hashable = None) -> bool:
        """Do all OpenFlow switches on the path still hold live rules?"""
        for a, b in path_links(path):
            switch = self.switches.get(a)
            if switch is None:
                continue
            entry = switch.table.lookup(path[0], path[-1], key)
            if entry is None or entry.next_hop != b:
                return False
        return True


class OpenFlowPathService:
    """Reactive path resolution with realistic control-plane latency.

    Implements the :class:`~repro.netsim.routing.PathService` protocol, so
    a :class:`~repro.netsim.fabric.Network` can be built directly on it.
    """

    def __init__(
        self,
        sim: Simulator,
        controller: SdnController,
        idle_timeout: float = DEFAULT_IDLE_TIMEOUT_S,
        control_latency: float = DEFAULT_CONTROL_LATENCY_S,
        match_granularity: str = "pair",
    ) -> None:
        if match_granularity not in ("pair", "flow"):
            raise ValueError("match_granularity must be 'pair' or 'flow'")
        self.sim = sim
        self.controller = controller
        self.idle_timeout = idle_timeout
        self.control_latency = control_latency
        # "pair": one rule covers all (src, dst) traffic -- cheap tables,
        # but every flow between a pair shares one path.  "flow": rules
        # are per flow key (5-tuple style) -- per-flow ECMP/TE works, at
        # the cost of a PacketIn per new flow.
        self.match_granularity = match_granularity
        # Cache of the last installed path per match; validity is
        # re-checked against the switches' live tables on every use.
        self._installed_paths: Dict[tuple, List[str]] = {}
        self.cache_hits = 0
        self.setups = 0

    def _match_key(self, src: str, dst: str, flow_key: Hashable):
        discriminator = flow_key if self.match_granularity == "flow" else None
        return (src, dst, discriminator)

    # -- PathService protocol ----------------------------------------------------

    def resolve(self, src: str, dst: str, flow_key: Hashable = None) -> Signal:
        signal = Signal(self.sim, name=f"of-route:{src}->{dst}")
        if src == dst:
            signal.succeed([src])
            return signal

        match = self._match_key(src, dst, flow_key)
        cached = self._installed_paths.get(match)
        if cached is not None and self.controller.path_still_installed(
            cached, key=match[2]
        ):
            self.cache_hits += 1
            signal.succeed(list(cached))
            return signal

        def setup():
            # PacketIn: first OpenFlow switch -> controller.
            yield Timeout(self.sim, self.control_latency)
            try:
                path = self.controller.handle_packet_in(src, dst, flow_key)
            except NoRouteError as exc:
                signal.fail(exc)
                return
            except (nx.NetworkXNoPath, nx.NodeNotFound):
                signal.fail(NoRouteError(f"no path from {src!r} to {dst!r}"))
                return
            # FlowMods: controller -> switches (parallel, one latency).
            yield Timeout(self.sim, self.control_latency)
            self.controller.install_path(path, self.idle_timeout, key=match[2])
            self._installed_paths[match] = list(path)
            self.setups += 1
            signal.succeed(list(path))

        self.sim.process(setup(), name=f"of-setup:{src}->{dst}")
        return signal

    def invalidate(self) -> None:
        self._installed_paths.clear()

    def mark_link(self, a: str, b: str, up: bool) -> None:
        """Fabric hook: propagate link state into the controller's view."""
        self.controller.mark_link(a, b, up)
        # Drop cached paths crossing the changed link.
        doomed = [
            key
            for key, path in self._installed_paths.items()
            if any({x, y} == {a, b} for x, y in path_links(path))
        ]
        for key in doomed:
            del self._installed_paths[key]
