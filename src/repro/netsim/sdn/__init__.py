"""Software-Defined Networking: the PiCloud's OpenFlow control plane.

The paper's aggregation layer is OpenFlow-enabled specifically to make the
topology "fully programmable" (§II-A) and to enable logically-centralised
resource management (§IV).  This package models that control plane at the
granularity that matters for resource-management research:

* :mod:`~repro.netsim.sdn.openflow` -- flow tables with idle timeouts on
  OpenFlow-enabled switches, plus the PacketIn / FlowMod message types.
* :mod:`~repro.netsim.sdn.controller` -- the centralised controller and
  the reactive :class:`~repro.netsim.sdn.controller.OpenFlowPathService`:
  a table miss costs a real control-plane round trip before the flow can
  start; cached entries forward at line rate.
* :mod:`~repro.netsim.sdn.apps` -- controller applications: shortest
  path, ECMP hashing, least-congested path selection, and a Hedera-style
  elephant-flow rerouter.
"""

from repro.netsim.sdn.apps import (
    EcmpHashApp,
    ElephantRerouter,
    LeastCongestedPathApp,
    ShortestPathApp,
    congestion_score,
)
from repro.netsim.sdn.controller import OpenFlowPathService, SdnController
from repro.netsim.sdn.openflow import FlowEntry, FlowTable, OpenFlowSwitch

__all__ = [
    "EcmpHashApp",
    "ElephantRerouter",
    "FlowEntry",
    "FlowTable",
    "LeastCongestedPathApp",
    "OpenFlowPathService",
    "OpenFlowSwitch",
    "SdnController",
    "ShortestPathApp",
    "congestion_score",
]
