"""OpenFlow data-plane state: flow tables on programmable switches.

Matching is at the granularity the fluid fabric works at: (src endpoint,
dst endpoint).  Entries carry an idle timeout, exactly like OpenFlow 1.0
reactive rules: a quiet pair's entries age out, and the next flow between
them pays the controller round trip again.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.sim.kernel import Simulator

# (src endpoint, dst endpoint, discriminator).  The discriminator is None
# for pair-granularity rules (one rule covers all traffic between the two
# endpoints) or a flow key for 5-tuple-style per-flow rules.
MatchKey = Tuple[str, str, object]


@dataclass
class FlowEntry:
    """One reactive rule: forward (src, dst) traffic to ``next_hop``."""

    match: MatchKey
    next_hop: str
    installed_at: float
    idle_timeout: float
    priority: int = 0
    last_used: float = field(default=0.0)
    hit_count: int = 0

    def expired(self, now: float) -> bool:
        return now - self.last_used > self.idle_timeout

    def touch(self, now: float) -> None:
        self.last_used = now
        self.hit_count += 1


class FlowTable:
    """The rule table of one switch, with lazy idle-expiry."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._entries: Dict[MatchKey, FlowEntry] = {}
        self.misses = 0
        self.hits = 0
        self.evictions = 0

    def __len__(self) -> int:
        self._expire()
        return len(self._entries)

    def _expire(self) -> None:
        now = self.sim.now
        dead = [key for key, entry in self._entries.items() if entry.expired(now)]
        for key in dead:
            del self._entries[key]
            self.evictions += 1

    def lookup(self, src: str, dst: str, key: object = None) -> Optional[FlowEntry]:
        """Match a flow; touches the entry on hit."""
        match = (src, dst, key)
        entry = self._entries.get(match)
        if entry is None or entry.expired(self.sim.now):
            if entry is not None:
                del self._entries[match]
                self.evictions += 1
            self.misses += 1
            return None
        entry.touch(self.sim.now)
        self.hits += 1
        return entry

    def install(self, match: MatchKey, next_hop: str, idle_timeout: float,
                priority: int = 0) -> FlowEntry:
        """FlowMod: add or replace a rule."""
        entry = FlowEntry(
            match=match,
            next_hop=next_hop,
            installed_at=self.sim.now,
            idle_timeout=idle_timeout,
            priority=priority,
            last_used=self.sim.now,
        )
        self._entries[match] = entry
        return entry

    def remove(self, match: MatchKey) -> bool:
        """FlowMod delete; True if a rule was removed."""
        return self._entries.pop(match, None) is not None

    def remove_via(self, next_hop: str) -> int:
        """Remove every rule forwarding towards ``next_hop`` (link failure)."""
        doomed = [k for k, e in self._entries.items() if e.next_hop == next_hop]
        for key in doomed:
            del self._entries[key]
        return len(doomed)

    def clear(self) -> None:
        self._entries.clear()

    def entries(self) -> list[FlowEntry]:
        self._expire()
        return sorted(self._entries.values(), key=lambda e: e.match)


class OpenFlowSwitch:
    """Control-plane state of one OpenFlow-enabled switch."""

    def __init__(self, sim: Simulator, node_id: str) -> None:
        self.sim = sim
        self.node_id = node_id
        self.table = FlowTable(sim)
        self.packet_ins_sent = 0

    def match(self, src: str, dst: str, key: object = None) -> Optional[str]:
        """Data-plane lookup; returns the next hop or None (table miss)."""
        entry = self.table.lookup(src, dst, key)
        return entry.next_hop if entry is not None else None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<OpenFlowSwitch {self.node_id} rules={len(self.table)}>"
