"""Controller applications: the policies centralised control enables.

The paper (§IV) argues SDN's "global view of the network will enhance
overall resource management ... with finer granularity management
policies".  These apps are those policies:

* :class:`ShortestPathApp` -- deterministic baseline.
* :class:`EcmpHashApp` -- per-flow hashing across equal-cost paths.
* :class:`LeastCongestedPathApp` -- uses the controller's live link-stats
  view to place each new flow on the least-loaded candidate path.  Only a
  centralised control plane can do this; it is the experiment-C3 winner.
* :class:`ElephantRerouter` -- a Hedera-style background process that
  periodically moves the biggest flows off congested links.
"""

from __future__ import annotations

import hashlib
from itertools import islice
from typing import Hashable, List, Optional

import networkx as nx

from repro.errors import NoRouteError
from repro.netsim.fabric import Network
from repro.netsim.routing import path_links
from repro.sim.kernel import Simulator
from repro.sim.process import Timeout


def congestion_score(direction) -> float:
    """How congested a directed link is, in [0, ~1]: the max of its
    utilisation and (under a cc rate model) its queue occupancy fraction.

    Under max-min no queue state exists and this is *exactly* the
    utilisation gauge -- the historic score, bit-for-bit.  Under cc,
    every saturated direction pins near utilisation 1.0, so the standing
    queue is what distinguishes an actually-overloaded link from one
    merely running full; folding it in lets the TE apps A/B cleanly
    across congestion-control protocols.
    """
    score = direction.utilization.value
    queue = direction.queue
    if queue is not None and queue.limit_bytes > 0:
        fraction = queue.occupancy / queue.limit_bytes
        if fraction > score:
            score = fraction
    return score


def _all_shortest(
    graph: nx.Graph, src: str, dst: str, controller=None
) -> List[List[str]]:
    """All shortest paths, sorted: from the controller's structured path
    cache when one is attached, else a direct graph search."""
    if controller is not None:
        return controller.paths.shortest_paths(src, dst)
    try:
        return sorted([list(p) for p in nx.all_shortest_paths(graph, src, dst)])
    except (nx.NetworkXNoPath, nx.NodeNotFound):
        raise NoRouteError(f"no path from {src!r} to {dst!r}") from None


class ShortestPathApp:
    """Always the lexicographically-first shortest path (static baseline)."""

    def compute_path(self, graph, src, dst, flow_key, controller):
        return _all_shortest(graph, src, dst, controller)[0]


class EcmpHashApp:
    """Hash the flow key across all equal-cost shortest paths."""

    def compute_path(self, graph, src, dst, flow_key, controller):
        paths = _all_shortest(graph, src, dst, controller)
        digest = hashlib.sha256(repr((src, dst, flow_key)).encode()).digest()
        return paths[int.from_bytes(digest[:4], "big") % len(paths)]


class LeastCongestedPathApp:
    """Global-view traffic engineering: pick the least-loaded candidate.

    Considers all equal-cost shortest paths plus up to ``extra_paths``
    longer alternatives, scores each by the maximum current utilisation of
    its directed links (read live from the fabric), and picks the minimum.
    Requires ``controller.attach_network(...)`` to have been called.
    """

    def __init__(self, extra_paths: int = 2) -> None:
        self.extra_paths = extra_paths

    def compute_path(self, graph, src, dst, flow_key, controller):
        candidates = _all_shortest(graph, src, dst, controller)
        if self.extra_paths > 0:
            try:
                longer = islice(
                    nx.shortest_simple_paths(graph, src, dst),
                    len(candidates) + self.extra_paths,
                )
                merged = {tuple(p) for p in candidates}
                for path in longer:
                    merged.add(tuple(path))
                candidates = sorted([list(p) for p in merged], key=lambda p: (len(p), p))
            except (nx.NetworkXNoPath, nx.NodeNotFound):
                raise NoRouteError(f"no path from {src!r} to {dst!r}") from None
        network: Optional[Network] = controller.network
        if network is None:
            return candidates[0]
        # Rates from churn earlier in this same instant are applied by a
        # deferred solve; flush it so the scores below read current loads.
        network.sync()

        def worst_utilization(path: List[str]) -> float:
            worst = 0.0
            for a, b in path_links(path):
                worst = max(worst, congestion_score(network.direction(a, b)))
            return worst

        return min(candidates, key=lambda p: (worst_utilization(p), len(p), p))


class ElephantRerouter:
    """Hedera-style background TE: move big flows off congested links.

    Every ``interval`` seconds, scans the fabric for directed links above
    ``congestion_threshold``; for the largest flow on each, asks the
    controller's app for a better path and reroutes if one is found.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        controller,
        interval: float = 1.0,
        congestion_threshold: float = 0.9,
        min_flow_bytes: float = 1e6,
    ) -> None:
        self.sim = sim
        self.network = network
        self.controller = controller
        self.interval = interval
        self.congestion_threshold = congestion_threshold
        self.min_flow_bytes = min_flow_bytes
        self.reroutes = 0
        self._stopped = False
        self._process = sim.process(self._run(), name="elephant-rerouter")

    def stop(self) -> None:
        self._stopped = True
        self._process.interrupt("rerouter stopped")

    def _run(self):
        while not self._stopped:
            yield Timeout(self.sim, self.interval)
            self._scan_once()

    def _scan_once(self) -> None:
        self.network.sync()
        for flow in self._elephants_on_hot_links():
            # Each reroute defers its fair-share solve to the end of the
            # instant; flush so this iteration scores *post*-reroute loads
            # instead of re-stacking flows onto a link that only looks idle.
            self.network.sync()
            try:
                candidates = self.controller.paths.shortest_paths(flow.src, flow.dst)
            except NoRouteError:
                continue

            def worst(path: List[str]) -> float:
                return max(
                    (
                        congestion_score(self.network.direction(a, b))
                        for a, b in path_links(path)
                        # A link's own contribution from this flow is
                        # unavoidable on its first/last hop; still counts.
                    ),
                    default=0.0,
                )

            best = min(candidates, key=lambda p: (worst(p), p))
            if best != flow.path and worst(best) < self._flow_worst(flow):
                self.network.reroute(flow, best)
                self.controller.install_path(best, idle_timeout=60.0)
                self.reroutes += 1

    def _flow_worst(self, flow) -> float:
        return max(
            (congestion_score(d) for d in flow.directions), default=0.0
        )

    def _elephants_on_hot_links(self):
        seen = set()
        for link in self.network.links():
            for direction in (link.forward, link.reverse):
                if congestion_score(direction) < self.congestion_threshold:
                    continue
                big = [
                    f for f in direction.flows
                    if f.size >= self.min_flow_bytes and f.flow_id not in seen
                ]
                # flow_id tie-break: direction.flows is a set, and
                # equal-sized flows (fluid load aggregates) are common.
                big.sort(key=lambda f: (-f.remaining, f.flow_id))
                for flow in big[:1]:  # one per hot link per scan
                    seen.add(flow.flow_id)
                    yield flow
