"""IPv4 and MAC address management.

The pimaster's DHCP service (:mod:`repro.mgmt.dhcp`) allocates from an
:class:`Ipv4Pool`; container veth interfaces get MACs from a
:class:`MacAllocator`.  Built on the stdlib :mod:`ipaddress` module.
"""

from __future__ import annotations

import ipaddress
from typing import Iterator, Optional, Set

from repro.errors import AddressError


class Ipv4Pool:
    """A subnet's worth of assignable host addresses.

    Network and broadcast addresses are never handed out; specific
    addresses can be reserved (the gateway, pimaster's static address).
    """

    def __init__(self, cidr: str) -> None:
        try:
            self.network = ipaddress.ip_network(cidr, strict=True)
        except ValueError as exc:
            raise AddressError(f"bad CIDR {cidr!r}: {exc}") from exc
        if self.network.version != 4:
            raise AddressError(f"only IPv4 pools are supported, got {cidr!r}")
        self._assigned: Set[ipaddress.IPv4Address] = set()
        self._cursor: Iterator[ipaddress.IPv4Address] = self.network.hosts()

    @property
    def cidr(self) -> str:
        return str(self.network)

    @property
    def assigned_count(self) -> int:
        return len(self._assigned)

    @property
    def capacity(self) -> int:
        return self.network.num_addresses - 2 if self.network.prefixlen < 31 else 2

    def reserve(self, address: str) -> str:
        """Claim a specific address (static assignment)."""
        addr = self._parse(address)
        if addr in self._assigned:
            raise AddressError(f"{address} already assigned in {self.cidr}")
        self._assigned.add(addr)
        return str(addr)

    def allocate(self) -> str:
        """Hand out the next free address in the pool."""
        for candidate in self._cursor:
            if candidate not in self._assigned:
                self._assigned.add(candidate)
                return str(candidate)
        # The cursor is exhausted; look for addresses released earlier.
        for candidate in self.network.hosts():
            if candidate not in self._assigned:
                self._assigned.add(candidate)
                return str(candidate)
        raise AddressError(f"pool {self.cidr} exhausted ({self.capacity} hosts)")

    def release(self, address: str) -> None:
        addr = self._parse(address)
        try:
            self._assigned.remove(addr)
        except KeyError:
            raise AddressError(f"{address} not assigned in {self.cidr}") from None

    def is_assigned(self, address: str) -> bool:
        return self._parse(address) in self._assigned

    def _parse(self, address: str) -> ipaddress.IPv4Address:
        try:
            addr = ipaddress.ip_address(address)
        except ValueError as exc:
            raise AddressError(f"bad address {address!r}: {exc}") from exc
        if addr not in self.network:
            raise AddressError(f"{address} not in {self.cidr}")
        if self.network.prefixlen < 31 and addr in (
            self.network.network_address,
            self.network.broadcast_address,
        ):
            raise AddressError(f"{address} is the network/broadcast address")
        return addr


class MacAllocator:
    """Sequential locally-administered MAC addresses (02:xx:...)."""

    def __init__(self, oui: str = "02:00:00") -> None:
        parts = oui.split(":")
        if len(parts) != 3 or not all(len(p) == 2 for p in parts):
            raise AddressError(f"bad OUI {oui!r}; expected three octets")
        self.oui = oui.lower()
        self._next = 1

    def allocate(self) -> str:
        if self._next > 0xFFFFFF:
            raise AddressError(f"MAC space under {self.oui} exhausted")
        value = self._next
        self._next += 1
        return (
            f"{self.oui}:{(value >> 16) & 0xFF:02x}"
            f":{(value >> 8) & 0xFF:02x}:{value & 0xFF:02x}"
        )
