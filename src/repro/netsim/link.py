"""Links: full-duplex cables between fabric nodes.

A :class:`Link` joins two nodes and owns one :class:`LinkDirection` per
direction.  Each direction has independent capacity (full duplex, as real
Ethernet), carries a set of active flows, and keeps an exact utilisation
gauge plus congestion accounting -- the raw material for the paper's
"consolidation causes congestion episodes" cross-layer experiments.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Set

from repro import trace
from repro.errors import ConfigurationError
from repro.sim.kernel import Simulator
from repro.telemetry.series import Counter, Gauge
from repro.telemetry.stats import LatencyHistogram

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.netsim.fabric import FlowTransfer


class QueueState:
    """Fluid FIFO queue on one link direction (cc rate model only).

    The congestion-control layer treats each direction as a single
    shallow buffer: inflow is the aggregate *offered* demand the active
    cc flows place on the direction (refreshed at every allocation),
    outflow is the direction's live capacity.  Between updates the
    occupancy evolves piecewise-linearly; the queue records the time
    spent above the ECN marking threshold, drops the overhang that would
    exceed the limit (bookkeeping only -- the fabric's byte accounting
    stays lossless; the drop is a *signal*, like gray-failure loss), and
    feeds a time-weighted depth histogram for ``queue_depth_p99``.

    The single-bottleneck approximation: a flow contributes its full
    demand to every direction on its path, so a flow throttled upstream
    still counts downstream.  On the PiCloud's single-oversubscription
    fabric the bottleneck is the ToR/host edge and this is exact; on
    multi-bottleneck paths it overstates downstream occupancy.
    """

    __slots__ = (
        "direction", "limit_bytes", "ecn_threshold_bytes",
        "occupancy", "offered", "_last_update",
        "marked_seconds", "observed_seconds", "dropped_bytes", "drop_events",
        "_interval_marked_s", "_interval_observed_s", "_interval_dropped",
        "peak_bytes", "depth_hist",
    )

    def __init__(self, direction: "LinkDirection", limit_bytes: float,
                 ecn_threshold_bytes: float) -> None:
        self.direction = direction
        self.limit_bytes = float(limit_bytes)
        self.ecn_threshold_bytes = float(ecn_threshold_bytes)
        self.occupancy = 0.0          # bytes queued right now
        self.offered = 0.0            # aggregate demand (bytes/s) since last allocation
        self._last_update = direction.sim.now
        # Cumulative signal accounting (whole run).
        self.marked_seconds = 0.0     # time spent above the ECN threshold
        self.observed_seconds = 0.0
        self.dropped_bytes = 0.0
        self.drop_events = 0
        # Interval accumulators, reset by collect() at each cc epoch.
        self._interval_marked_s = 0.0
        self._interval_observed_s = 0.0
        self._interval_dropped = 0.0
        self.peak_bytes = 0.0
        # Time-weighted occupancy distribution (1 byte .. 1 GB, fractional
        # counts = seconds spent at that depth); zero depths land in the
        # underflow bucket and report as ~the floor.
        self.depth_hist = LatencyHistogram(
            min_value=1.0, max_value=1e9, buckets_per_decade=10)

    def advance(self, now: float) -> None:
        """Integrate occupancy from the last update to ``now``.

        Piecewise-linear: net rate = offered - capacity.  Clamps to
        [0, limit], accounts time-above-threshold exactly for the linear
        segment, and books overflow as dropped bytes.
        """
        dt = now - self._last_update
        if dt <= 0.0:
            return
        self._last_update = now
        cap = self.direction.capacity
        net = self.offered - cap
        q0 = self.occupancy
        raw = q0 + net * dt
        q1 = min(max(raw, 0.0), self.limit_bytes)
        if raw > self.limit_bytes:
            overflow = raw - self.limit_bytes
            self.dropped_bytes += overflow
            self._interval_dropped += overflow
            self.drop_events += 1
        above = self._time_above(q0, net, dt)
        self.marked_seconds += above
        self.observed_seconds += dt
        self._interval_marked_s += above
        self._interval_observed_s += dt
        self.occupancy = q1
        if q1 > self.peak_bytes:
            self.peak_bytes = q1
        self.depth_hist.record(q1, count=dt)

    def _time_above(self, q0: float, net: float, dt: float) -> float:
        """Time within [0, dt] the (clamped) occupancy exceeds the threshold."""
        k = self.ecn_threshold_bytes
        if net == 0.0:
            return dt if q0 > k else 0.0
        if net > 0.0:
            if q0 >= k:
                return dt
            return max(0.0, dt - (k - q0) / net)
        # Draining.
        if q0 <= k:
            return 0.0
        return min(dt, (q0 - k) / -net)

    def collect(self) -> tuple[float, float, bool]:
        """Return (marked_s, observed_s, dropped?) since the last collect and reset."""
        out = (self._interval_marked_s, self._interval_observed_s,
               self._interval_dropped > 0.0)
        self._interval_marked_s = 0.0
        self._interval_observed_s = 0.0
        self._interval_dropped = 0.0
        return out

    def delay_s(self) -> float:
        """Current queueing delay: occupancy / service rate."""
        cap = self.direction.capacity
        return self.occupancy / cap if cap > 0 else 0.0

    def mark_fraction(self) -> float:
        """Run-long fraction of observed time spent above the ECN threshold."""
        if self.observed_seconds <= 0:
            return 0.0
        return self.marked_seconds / self.observed_seconds


class LinkDirection:
    """One direction of a full-duplex link: the unit the fairness solver sees."""

    def __init__(
        self,
        sim: Simulator,
        link: "Link",
        src: str,
        dst: str,
    ) -> None:
        self.sim = sim
        self.link = link
        self.src = src
        self.dst = dst
        self.flows: Set["FlowTransfer"] = set()
        # Last load applied via set_load; solves touching a direction
        # whose aggregate rate did not actually move skip the telemetry
        # and congestion-accounting work entirely.  None forces the next
        # set_load through (initial state, or capacity changed under us).
        self._last_load: Optional[float] = None
        self.utilization = Gauge(sim, name=f"{self.name}.util", initial=0.0)
        self.bytes_carried = Counter(sim, name=f"{self.name}.bytes")
        # Queue occupancy model -- None unless a cc rate model enables it,
        # so the default max-min path carries no queue state at all.
        self.queue: Optional[QueueState] = None
        # Congestion accounting: time spent above the congestion threshold.
        self._congested_since: Optional[float] = None
        self.congested_seconds = 0.0
        self.congestion_episodes = 0
        # Open span covering the current congestion episode (repro.trace).
        self._congestion_span = None

    @property
    def name(self) -> str:
        return f"{self.src}->{self.dst}"

    @property
    def capacity(self) -> float:
        return self.link.bandwidth * self.link.bandwidth_frac

    @property
    def latency(self) -> float:
        return self.link.latency + self.link.extra_latency

    def set_load(self, bytes_per_s: float, congestion_threshold: float) -> None:
        """Fabric hook: aggregate flow rate on this direction changed."""
        if bytes_per_s == self._last_load:
            # Same load at the same capacity: the fraction, the gauge
            # level and the congestion state machine's branch are all
            # identical to the last call, which already settled them.
            return
        self._last_load = bytes_per_s
        fraction = bytes_per_s / self.capacity if self.capacity > 0 else 0.0
        self.utilization.set(fraction)
        now = self.sim.now
        if fraction >= congestion_threshold:
            if self._congested_since is None:
                self._congested_since = now
                self.congestion_episodes += 1
                self._congestion_span = trace.start_span(
                    self.sim, f"congestion:{self.name}", kind="net",
                    attributes={"direction": self.name,
                                "episode": self.congestion_episodes},
                )
        else:
            if self._congested_since is not None:
                self.congested_seconds += now - self._congested_since
                self._congested_since = None
                if self._congestion_span is not None:
                    self._congestion_span.end("ok")
                    self._congestion_span = None

    def enable_queue(self, limit_bytes: float, ecn_threshold_bytes: float) -> QueueState:
        """Attach (or return the existing) queue model to this direction."""
        if self.queue is None:
            self.queue = QueueState(self, limit_bytes, ecn_threshold_bytes)
        return self.queue

    def queue_delay_s(self) -> float:
        """Current queueing delay on this direction (0.0 without a queue)."""
        return self.queue.delay_s() if self.queue is not None else 0.0

    def finalize_congestion(self) -> None:
        """Close an open congestion interval at the current clock (end of run)."""
        if self._congested_since is not None:
            self.congested_seconds += self.sim.now - self._congested_since
            self._congested_since = self.sim.now

    def mean_utilization(self, start: float | None = None, end: float | None = None) -> float:
        return self.utilization.time_weighted_mean(start, end)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<LinkDirection {self.name} {len(self.flows)} flows>"


class Link:
    """A full-duplex cable: two directions sharing bandwidth/latency specs."""

    def __init__(
        self,
        sim: Simulator,
        a: str,
        b: str,
        bandwidth: float,
        latency: float = 0.0,
    ) -> None:
        if bandwidth <= 0:
            raise ConfigurationError(f"link {a}<->{b}: bandwidth must be positive")
        if latency < 0:
            raise ConfigurationError(f"link {a}<->{b}: latency must be >= 0")
        self.sim = sim
        self.a = a
        self.b = b
        self.bandwidth = bandwidth
        self.latency = latency
        self.up = True
        # Gray-failure state: a degraded link is still *up* (the binary
        # state the routing layer sees) but delivers a fraction of its
        # bandwidth, adds serialization latency, and/or drops a fraction
        # of packets.  The defaults (1.0 / 0.0 / 0.0) are exact
        # identities under IEEE arithmetic, so an undegraded link
        # computes bit-identical capacities and latencies to the
        # pre-gray-failure model.
        self.bandwidth_frac = 1.0
        self.extra_latency = 0.0
        self.loss = 0.0
        self.forward = LinkDirection(sim, self, a, b)
        self.reverse = LinkDirection(sim, self, b, a)

    @property
    def degraded(self) -> bool:
        """True when any gray-failure knob is off its healthy default."""
        return (self.bandwidth_frac != 1.0 or self.extra_latency != 0.0
                or self.loss != 0.0)

    def degrade(self, bandwidth_frac: float = 1.0, extra_latency: float = 0.0,
                loss: float = 0.0) -> None:
        """Set the gray-failure state (validated); does not touch ``up``."""
        if not 0.0 < bandwidth_frac <= 1.0:
            raise ConfigurationError(
                f"link {self.a}<->{self.b}: bandwidth_frac must be in (0, 1], "
                f"got {bandwidth_frac}"
            )
        if extra_latency < 0:
            raise ConfigurationError(
                f"link {self.a}<->{self.b}: extra_latency must be >= 0, "
                f"got {extra_latency}"
            )
        if not 0.0 <= loss < 1.0:
            raise ConfigurationError(
                f"link {self.a}<->{self.b}: loss must be in [0, 1), got {loss}"
            )
        self.bandwidth_frac = bandwidth_frac
        self.extra_latency = extra_latency
        self.loss = loss
        # Capacity may have moved: the same byte rate now means a
        # different utilisation fraction, so force the next set_load.
        self.forward._last_load = None
        self.reverse._last_load = None

    def restore(self) -> None:
        """Clear any gray-failure state (back to the healthy identity)."""
        self.bandwidth_frac = 1.0
        self.extra_latency = 0.0
        self.loss = 0.0
        self.forward._last_load = None
        self.reverse._last_load = None

    def direction(self, src: str, dst: str) -> LinkDirection:
        """The directed half carrying traffic ``src -> dst``."""
        if (src, dst) == (self.a, self.b):
            return self.forward
        if (src, dst) == (self.b, self.a):
            return self.reverse
        raise KeyError(f"link {self.a}<->{self.b} does not join {src}->{dst}")

    @property
    def endpoints(self) -> tuple[str, str]:
        return (self.a, self.b)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "up" if self.up else "down"
        return f"<Link {self.a}<->{self.b} {state}>"
