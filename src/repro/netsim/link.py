"""Links: full-duplex cables between fabric nodes.

A :class:`Link` joins two nodes and owns one :class:`LinkDirection` per
direction.  Each direction has independent capacity (full duplex, as real
Ethernet), carries a set of active flows, and keeps an exact utilisation
gauge plus congestion accounting -- the raw material for the paper's
"consolidation causes congestion episodes" cross-layer experiments.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Set

from repro import trace
from repro.errors import ConfigurationError
from repro.sim.kernel import Simulator
from repro.telemetry.series import Counter, Gauge

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.netsim.fabric import FlowTransfer


class LinkDirection:
    """One direction of a full-duplex link: the unit the fairness solver sees."""

    def __init__(
        self,
        sim: Simulator,
        link: "Link",
        src: str,
        dst: str,
    ) -> None:
        self.sim = sim
        self.link = link
        self.src = src
        self.dst = dst
        self.flows: Set["FlowTransfer"] = set()
        self.utilization = Gauge(sim, name=f"{self.name}.util", initial=0.0)
        self.bytes_carried = Counter(sim, name=f"{self.name}.bytes")
        # Congestion accounting: time spent above the congestion threshold.
        self._congested_since: Optional[float] = None
        self.congested_seconds = 0.0
        self.congestion_episodes = 0
        # Open span covering the current congestion episode (repro.trace).
        self._congestion_span = None

    @property
    def name(self) -> str:
        return f"{self.src}->{self.dst}"

    @property
    def capacity(self) -> float:
        return self.link.bandwidth * self.link.bandwidth_frac

    @property
    def latency(self) -> float:
        return self.link.latency + self.link.extra_latency

    def set_load(self, bytes_per_s: float, congestion_threshold: float) -> None:
        """Fabric hook: aggregate flow rate on this direction changed."""
        fraction = bytes_per_s / self.capacity if self.capacity > 0 else 0.0
        self.utilization.set(fraction)
        now = self.sim.now
        if fraction >= congestion_threshold:
            if self._congested_since is None:
                self._congested_since = now
                self.congestion_episodes += 1
                self._congestion_span = trace.start_span(
                    self.sim, f"congestion:{self.name}", kind="net",
                    attributes={"direction": self.name,
                                "episode": self.congestion_episodes},
                )
        else:
            if self._congested_since is not None:
                self.congested_seconds += now - self._congested_since
                self._congested_since = None
                if self._congestion_span is not None:
                    self._congestion_span.end("ok")
                    self._congestion_span = None

    def finalize_congestion(self) -> None:
        """Close an open congestion interval at the current clock (end of run)."""
        if self._congested_since is not None:
            self.congested_seconds += self.sim.now - self._congested_since
            self._congested_since = self.sim.now

    def mean_utilization(self, start: float | None = None, end: float | None = None) -> float:
        return self.utilization.time_weighted_mean(start, end)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<LinkDirection {self.name} {len(self.flows)} flows>"


class Link:
    """A full-duplex cable: two directions sharing bandwidth/latency specs."""

    def __init__(
        self,
        sim: Simulator,
        a: str,
        b: str,
        bandwidth: float,
        latency: float = 0.0,
    ) -> None:
        if bandwidth <= 0:
            raise ConfigurationError(f"link {a}<->{b}: bandwidth must be positive")
        if latency < 0:
            raise ConfigurationError(f"link {a}<->{b}: latency must be >= 0")
        self.sim = sim
        self.a = a
        self.b = b
        self.bandwidth = bandwidth
        self.latency = latency
        self.up = True
        # Gray-failure state: a degraded link is still *up* (the binary
        # state the routing layer sees) but delivers a fraction of its
        # bandwidth, adds serialization latency, and/or drops a fraction
        # of packets.  The defaults (1.0 / 0.0 / 0.0) are exact
        # identities under IEEE arithmetic, so an undegraded link
        # computes bit-identical capacities and latencies to the
        # pre-gray-failure model.
        self.bandwidth_frac = 1.0
        self.extra_latency = 0.0
        self.loss = 0.0
        self.forward = LinkDirection(sim, self, a, b)
        self.reverse = LinkDirection(sim, self, b, a)

    @property
    def degraded(self) -> bool:
        """True when any gray-failure knob is off its healthy default."""
        return (self.bandwidth_frac != 1.0 or self.extra_latency != 0.0
                or self.loss != 0.0)

    def degrade(self, bandwidth_frac: float = 1.0, extra_latency: float = 0.0,
                loss: float = 0.0) -> None:
        """Set the gray-failure state (validated); does not touch ``up``."""
        if not 0.0 < bandwidth_frac <= 1.0:
            raise ConfigurationError(
                f"link {self.a}<->{self.b}: bandwidth_frac must be in (0, 1], "
                f"got {bandwidth_frac}"
            )
        if extra_latency < 0:
            raise ConfigurationError(
                f"link {self.a}<->{self.b}: extra_latency must be >= 0, "
                f"got {extra_latency}"
            )
        if not 0.0 <= loss < 1.0:
            raise ConfigurationError(
                f"link {self.a}<->{self.b}: loss must be in [0, 1), got {loss}"
            )
        self.bandwidth_frac = bandwidth_frac
        self.extra_latency = extra_latency
        self.loss = loss

    def restore(self) -> None:
        """Clear any gray-failure state (back to the healthy identity)."""
        self.bandwidth_frac = 1.0
        self.extra_latency = 0.0
        self.loss = 0.0

    def direction(self, src: str, dst: str) -> LinkDirection:
        """The directed half carrying traffic ``src -> dst``."""
        if (src, dst) == (self.a, self.b):
            return self.forward
        if (src, dst) == (self.b, self.a):
            return self.reverse
        raise KeyError(f"link {self.a}<->{self.b} does not join {src}->{dst}")

    @property
    def endpoints(self) -> tuple[str, str]:
        return (self.a, self.b)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "up" if self.up else "down"
        return f"<Link {self.a}<->{self.b} {state}>"
