"""The sharded fat-tree fabric: per-pod kernels with boundary flows.

This is the concrete model the sharded kernel (:mod:`repro.sim.shard`)
runs for fat-tree scale benchmarks.  Each pod shard owns a
:class:`~repro.netsim.fabric.Network` over its pods plus the (replicated)
core layer; the control shard (shard 0) owns no fabric -- it is the
pimaster, issuing start/metrics RPCs over :mod:`repro.mgmt.shard_rpc`.

Cross-pod traffic becomes a *boundary flow*: the end-to-end ECMP path is
resolved against the full topology (in the parent, before workers fork),
cut at its single core switch by the partitioner, and run as two
concurrent half-flows -- the uphill segment (host..core) in the source
shard and the downhill segment (core..host) in the destination shard,
started one boundary delay later by a ``flow_open`` channel message.
Each half is an ordinary fabric flow solved inside its shard's local
bottleneck components; since every link belongs to exactly one pod, the
two halves share no resources and the end-to-end completion time is the
later of the two halves' -- the fluid-model behaviour of a flow
bottlenecked at the slower segment.  The destination posts ``flow_done``
back so the source shard owns end-to-end accounting.

Model error vs the unsharded kernel (documented in
``docs/performance.md``): cross-pod effects propagate with the boundary
delay rather than the physical core-link latency, and each half-flow
drains at its local fair share rather than the global end-to-end rate.
``shards=1`` therefore bypasses this module entirely -- the unsharded
path stays byte-identical to every previous release.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.apps.traffic import OnOffTrafficSource
from repro.core.config import ShardConfig
from repro.errors import NetworkError
from repro.mgmt.shard_rpc import ShardRpcRouter
from repro.netsim.fabric import FlowState, Network
from repro.netsim.partition import CONTROL_SHARD, PartitionMap, \
    partition_fat_tree
from repro.netsim.routing import EcmpRouting, PathCache
from repro.netsim.topology import fat_tree
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.shard import ShardCoordinator, ShardContext, ShardProgram
from repro.trace.tracer import Tracer, iter_span_dicts
from repro.units import kib


def ecmp_path(cache: PathCache, src: str, dst: str, flow_key) -> List[str]:
    """The ECMP path choice, synchronously.

    Bit-identical to :meth:`repro.netsim.routing.EcmpRouting.resolve`
    (same digest over the same key), so a boundary flow takes exactly
    the hops the unsharded fabric would have picked for the same pair.
    """
    group, prefix, suffix = cache.path_group(src, dst)
    digest = hashlib.sha256(repr((src, dst, flow_key)).encode()).digest()
    index = int.from_bytes(digest[:4], "big") % len(group)
    return prefix + list(group[index]) + suffix


@dataclass(frozen=True)
class ShardedWorkload:
    """The ON/OFF pair workload a sharded benchmark run drives."""

    message_bytes: int = int(kib(64))
    rate_per_s: float = 20.0
    on_mean_s: float = 2.0
    off_mean_s: float = 0.5
    warmup_s: float = 30.0
    measure_s: float = 90.0
    poll_interval_s: float = 10.0

    @property
    def duration_s(self) -> float:
        return self.warmup_s + self.measure_s


@dataclass(frozen=True)
class _PairPlan:
    """One traffic pair, with routing pre-resolved and pre-split."""

    index: int
    src: str
    dst: str
    src_shard: int
    dst_shard: int
    uphill: Tuple[str, ...]             # src segment (intra-pod: full path)
    downhill: Tuple[str, ...] = ()      # dst segment (empty for intra-pod)

    @property
    def cross(self) -> bool:
        return bool(self.downhill)


def plan_pairs(
    partition: PartitionMap,
    pairs: List[Tuple[str, str]],
    structured: bool = True,
) -> List[_PairPlan]:
    """Resolve and split every pair's ECMP path against the full tree."""
    cache = PathCache(partition.topology, structured)
    plans: List[_PairPlan] = []
    for index, (src, dst) in enumerate(pairs):
        path = ecmp_path(cache, src, dst, f"pair{index}")
        segments = partition.split_path(path)
        if len(segments) == 1:
            shard, segment = segments[0]
            plans.append(_PairPlan(index, src, dst, shard, shard,
                                   tuple(segment)))
        else:
            (src_shard, uphill), (dst_shard, downhill) = segments
            plans.append(_PairPlan(index, src, dst, src_shard, dst_shard,
                                   tuple(uphill), tuple(downhill)))
    return plans


class PodShardProgram(ShardProgram):
    """One pod shard: local fabric, local traffic, boundary half-flows."""

    def __init__(self, shard_id: int, partition: PartitionMap,
                 plans: List[_PairPlan], workload: ShardedWorkload,
                 trace: bool = False) -> None:
        self.shard_id = shard_id
        self.partition = partition
        self.sources = [p for p in plans if p.src_shard == shard_id]
        self.sinks = {p.index: p for p in plans
                      if p.cross and p.dst_shard == shard_id}
        self.workload = workload
        self.trace = trace

    def build(self, ctx: ShardContext) -> None:
        self.ctx = ctx
        self.sim = Simulator()
        self.tracer = Tracer(self.sim) if self.trace else None
        topo = self.partition.sub_topology(self.shard_id)
        self.net = Network(
            self.sim, topo, path_service=EcmpRouting(self.sim, topo)
        )
        self.rng = RngRegistry(ctx.seed).fork(f"shard{self.shard_id}")
        self.completed_e2e = 0
        self.open_uphill: Dict[int, int] = {}   # pair index -> open count
        self._traffic: List[OnOffTrafficSource] = []
        self.rpc = ShardRpcRouter(ctx, handlers={
            "start_traffic": self._rpc_start_traffic,
            "metrics": self._rpc_metrics,
        })
        self.net.flow_observers.append(self._on_flow_event)

    # -- RPC handlers (called by the control shard) -----------------------

    def _rpc_start_traffic(self, params: dict) -> dict:
        until = float(params["until"])
        for plan in self.sources:
            self._traffic.append(OnOffTrafficSource(
                self.sim,
                self.rng.stream(f"pair{plan.index}"),
                self._sender(plan),
                on_mean_s=self.workload.on_mean_s,
                off_mean_s=self.workload.off_mean_s,
                rate_per_s=self.workload.rate_per_s,
                duration_s=max(0.0, until - self.sim.now),
            ))
        return {"sources": len(self._traffic)}

    def _rpc_metrics(self, params: dict) -> dict:
        return self.metrics()

    # -- traffic ----------------------------------------------------------

    def _sender(self, plan: _PairPlan):
        nbytes = float(self.workload.message_bytes)

        def send() -> None:
            key = f"pair{plan.index}"
            if not plan.cross:
                self.net.transfer(plan.src, plan.dst, nbytes, flow_key=key,
                                  tag="intra", path=list(plan.uphill))
                return
            self.net.transfer(plan.src, plan.uphill[-1], nbytes,
                              flow_key=key, tag="up",
                              path=list(plan.uphill))
            self.open_uphill[plan.index] = \
                self.open_uphill.get(plan.index, 0) + 1
            self.ctx.post(plan.dst_shard, {
                "kind": "flow_open",
                "pair": plan.index,
                "bytes": nbytes,
            })

        return send

    def _on_flow_event(self, flow) -> None:
        if flow.state is not FlowState.DONE:
            return
        if flow.tag == "intra":
            self.completed_e2e += 1
        elif flow.tag == "down":
            plan = self.sinks[flow.down_pair]
            self.ctx.post(plan.src_shard, {
                "kind": "flow_done",
                "pair": plan.index,
            })

    # -- channel messages --------------------------------------------------

    def on_message(self, payload: Any) -> None:
        if self.rpc.dispatch(payload):
            return
        kind = payload.get("kind") if isinstance(payload, dict) else None
        if kind == "flow_open":
            plan = self.sinks[payload["pair"]]
            flow = self.net.transfer(
                plan.downhill[0], plan.dst, float(payload["bytes"]),
                flow_key=f"pair{plan.index}", tag="down",
                path=list(plan.downhill),
            )
            flow.down_pair = plan.index
        elif kind == "flow_done":
            count = self.open_uphill.get(payload["pair"], 0)
            if count <= 0:
                raise NetworkError(
                    f"shard {self.shard_id}: flow_done for pair "
                    f"{payload['pair']} with no open uphill flow"
                )
            self.open_uphill[payload["pair"]] = count - 1
            self.completed_e2e += 1
        else:
            raise NetworkError(
                f"shard {self.shard_id}: unknown message {payload!r}"
            )

    # -- results ----------------------------------------------------------

    def metrics(self) -> Dict[str, Any]:
        return {
            "events": self.sim.events_executed,
            "now": self.sim.now,
            "flows_started": self.net.flows_started.total,
            "flows_completed": self.net.flows_completed.total,
            "completed_e2e": self.completed_e2e,
            "bytes_delivered": self.net.bytes_delivered.total,
            "recomputes": self.net.recomputes,
            "flows_solved": self.net.flows_solved,
            "rpcs_served": self.rpc.calls_served,
        }

    def finalize(self) -> Dict[str, Any]:
        self.net.sync()
        return self.metrics()

    def span_dicts(self) -> List[Dict[str, Any]]:
        if self.tracer is None:
            return []
        return list(iter_span_dicts(self.tracer.spans))


class ControlShardProgram(ShardProgram):
    """Shard 0: the pimaster.  Owns no fabric; drives pods over RPC."""

    def __init__(self, partition: PartitionMap,
                 workload: ShardedWorkload) -> None:
        self.partition = partition
        self.workload = workload

    def build(self, ctx: ShardContext) -> None:
        self.ctx = ctx
        self.sim = Simulator()
        self.rpc = ShardRpcRouter(ctx)
        self.started: Dict[int, int] = {}
        self.poll_samples: List[Dict[str, Any]] = []
        self._outstanding = 0
        self.sim.schedule(0.0, self._start_all)
        interval = self.workload.poll_interval_s
        t = interval
        while t < self.workload.duration_s:
            self.sim.schedule(t, self._poll_all)
            t += interval

    def _start_all(self) -> None:
        until = self.workload.duration_s
        for shard_id in self.partition.shard_ids():
            self.rpc.call(shard_id, "start_traffic", {"until": until},
                          on_reply=self._on_started(shard_id))

    def _on_started(self, shard_id: int):
        def reply(result: dict) -> None:
            self.started[shard_id] = result["sources"]
        return reply

    def _poll_all(self) -> None:
        sample: Dict[str, Any] = {"t": self.sim.now, "shards": {}}
        self.poll_samples.append(sample)

        def on_reply(shard_id: int):
            def reply(result: dict) -> None:
                sample["shards"][shard_id] = result
            return reply

        for shard_id in self.partition.shard_ids():
            self.rpc.call(shard_id, "metrics", {}, on_reply(shard_id))

    def on_message(self, payload: Any) -> None:
        if not self.rpc.dispatch(payload):
            raise NetworkError(f"control shard: unknown message {payload!r}")

    def finalize(self) -> Dict[str, Any]:
        complete = [s for s in self.poll_samples if s["shards"]]
        return {
            "events": self.sim.events_executed,
            "now": self.sim.now,
            "sources_started": dict(self.started),
            "polls": len(complete),
            "rpcs_sent": self.rpc.calls_sent,
        }


def run_sharded_fat_tree(
    *,
    k: int,
    hosts: int,
    shards: int,
    pairs: int,
    seed: int = 0,
    workload: Optional[ShardedWorkload] = None,
    shard_config: Optional[ShardConfig] = None,
    trace: bool = False,
    budget=None,
    profile_dir: Optional[str] = None,
) -> Dict[str, Any]:
    """Build, partition, and run one sharded fat-tree benchmark.

    Returns merged metrics: per-shard counters summed, plus the
    coordinator's sync-round statistics.  Deterministic for a given
    ``(k, hosts, shards, pairs, seed, workload, shard_config)`` under
    any ``PYTHONHASHSEED`` and any process scheduling.
    """
    if workload is None:
        workload = ShardedWorkload()
    if shard_config is None:
        shard_config = ShardConfig(shards=shards)
    elif shard_config.shards != shards:
        raise NetworkError(
            f"shard_config.shards={shard_config.shards} != shards={shards}"
        )
    host_names = [f"h{i}" for i in range(hosts)]
    topo = fat_tree(k, hosts=host_names)
    partition = partition_fat_tree(topo, shards, k=k)

    rng = random.Random(seed)
    chosen: List[Tuple[str, str]] = []
    for _ in range(pairs):
        src, dst = rng.sample(host_names, 2)
        chosen.append((src, dst))
    plans = plan_pairs(partition, chosen)

    factories: Dict[int, Any] = {
        CONTROL_SHARD: lambda sid: ControlShardProgram(partition, workload),
    }
    for shard_id in partition.shard_ids():
        factories[shard_id] = (
            lambda sid, _sid=shard_id: PodShardProgram(
                _sid, partition, plans, workload, trace=trace)
        )

    coordinator = ShardCoordinator(factories, shard_config, budget=budget,
                                   profile_dir=profile_dir)
    result = coordinator.run(workload.duration_s, seed=seed)

    pod_metrics = {sid: m for sid, m in result.metrics.items()
                   if sid != CONTROL_SHARD}
    merged: Dict[str, Any] = {
        "nodes": hosts,
        "fat_tree_k": k,
        "shards": shards,
        "pairs": pairs,
        "sim_time_s": result.now,
        "rounds": result.rounds,
        "events": result.events_total,
        "wall_s": result.wall_s,
        "events_per_s": (
            int(result.events_total / result.wall_s)
            if result.wall_s > 0 else 0
        ),
        "cross_pairs": sum(1 for p in plans if p.cross),
        "flows_started": sum(m["flows_started"] for m in pod_metrics.values()),
        "flows_completed": sum(
            m["flows_completed"] for m in pod_metrics.values()),
        "completed_e2e": sum(m["completed_e2e"] for m in pod_metrics.values()),
        "bytes_delivered": sum(
            m["bytes_delivered"] for m in pod_metrics.values()),
        "recomputes": sum(m["recomputes"] for m in pod_metrics.values()),
        "flows_solved": sum(m["flows_solved"] for m in pod_metrics.values()),
        "control": result.metrics.get(CONTROL_SHARD, {}),
        "per_shard": {str(sid): m for sid, m in result.metrics.items()},
    }
    if trace:
        merged["spans"] = result.spans
    if profile_dir is not None:
        merged["profile_paths"] = coordinator.shard_profile_paths()
    return merged
