"""Topology: the wiring diagram of the PiCloud fabric.

A :class:`Topology` is a :mod:`networkx` graph with typed nodes (hosts,
ToR / aggregation / core switches, the gateway) and capacitated edges.
Builders construct the paper's shapes:

* :func:`multi_root_tree` -- the canonical topology of Fig. 2: hosts in
  racks under ToR switches, ToRs connected to every (OpenFlow-enabled)
  aggregation root, roots connected to the university-gateway border
  router.
* :func:`fat_tree` -- the k-ary fat-tree the paper says the clusters "can
  easily be re-cabled to form".
* :func:`single_switch` -- a star, for unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence

import networkx as nx

from repro.errors import NetworkError
from repro.units import gbit_per_s, mbit_per_s, usec

HOST = "host"
TOR = "tor"
AGGREGATION = "aggregation"
CORE = "core"
GATEWAY = "gateway"

SWITCH_KINDS = (TOR, AGGREGATION, CORE, GATEWAY)


@dataclass(frozen=True)
class EdgeSpec:
    """Bandwidth/latency attributes of one cable."""

    bandwidth: float
    latency: float


class Topology:
    """A typed, capacitated wiring graph."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.graph = nx.Graph()

    # -- construction -------------------------------------------------------

    def add_host(self, node_id: str, rack: Optional[str] = None) -> None:
        self._add_node(node_id, HOST, rack)

    def add_switch(self, node_id: str, kind: str, rack: Optional[str] = None,
                   openflow: bool = False) -> None:
        if kind not in SWITCH_KINDS:
            raise NetworkError(f"unknown switch kind {kind!r}; use one of {SWITCH_KINDS}")
        self._add_node(node_id, kind, rack, openflow=openflow)

    def _add_node(self, node_id: str, kind: str, rack: Optional[str],
                  openflow: bool = False) -> None:
        if node_id in self.graph:
            raise NetworkError(f"duplicate node {node_id!r}")
        self.graph.add_node(node_id, kind=kind, rack=rack, openflow=openflow)

    def connect(self, a: str, b: str, bandwidth: float, latency: float = usec(50)) -> None:
        """Cable two nodes together."""
        for node in (a, b):
            if node not in self.graph:
                raise NetworkError(f"cannot cable unknown node {node!r}")
        if a == b:
            raise NetworkError(f"cannot cable {a!r} to itself")
        if self.graph.has_edge(a, b):
            raise NetworkError(f"{a!r} and {b!r} are already cabled")
        if bandwidth <= 0 or latency < 0:
            raise NetworkError(f"bad edge spec for {a!r}<->{b!r}")
        self.graph.add_edge(a, b, spec=EdgeSpec(bandwidth, latency))

    # -- queries --------------------------------------------------------------

    def kind(self, node_id: str) -> str:
        return self.graph.nodes[node_id]["kind"]

    def rack_of(self, node_id: str) -> Optional[str]:
        return self.graph.nodes[node_id].get("rack")

    def is_openflow(self, node_id: str) -> bool:
        return bool(self.graph.nodes[node_id].get("openflow"))

    def hosts(self) -> list[str]:
        return sorted(n for n, d in self.graph.nodes(data=True) if d["kind"] == HOST)

    def switches(self, kind: Optional[str] = None) -> list[str]:
        return sorted(
            n
            for n, d in self.graph.nodes(data=True)
            if d["kind"] != HOST and (kind is None or d["kind"] == kind)
        )

    def racks(self) -> dict[str, list[str]]:
        """Rack name -> sorted member hosts."""
        out: dict[str, list[str]] = {}
        for node in self.hosts():
            rack = self.rack_of(node)
            if rack is not None:
                out.setdefault(rack, []).append(node)
        return {rack: sorted(members) for rack, members in out.items()}

    def edges(self) -> Iterator[tuple[str, str, EdgeSpec]]:
        for a, b, data in self.graph.edges(data=True):
            yield a, b, data["spec"]

    def edge_spec(self, a: str, b: str) -> EdgeSpec:
        try:
            return self.graph.edges[a, b]["spec"]
        except KeyError:
            raise NetworkError(f"no cable between {a!r} and {b!r}") from None

    def degree(self, node_id: str) -> int:
        return self.graph.degree[node_id]

    def validate(self) -> None:
        """Check the wiring is usable: non-empty and fully connected."""
        if self.graph.number_of_nodes() == 0:
            raise NetworkError(f"topology {self.name!r} is empty")
        if not nx.is_connected(self.graph):
            components = list(nx.connected_components(self.graph))
            raise NetworkError(
                f"topology {self.name!r} is partitioned into {len(components)} components"
            )

    def describe(self) -> dict[str, int]:
        """Shape summary used by the Fig. 2 reproduction bench."""
        counts = {kind: 0 for kind in (HOST,) + SWITCH_KINDS}
        for _, data in self.graph.nodes(data=True):
            counts[data["kind"]] += 1
        counts["links"] = self.graph.number_of_edges()
        counts["openflow_switches"] = sum(
            1 for _, d in self.graph.nodes(data=True) if d.get("openflow")
        )
        return counts


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------


def single_switch(
    hosts: Sequence[str],
    bandwidth: float = mbit_per_s(100),
    latency: float = usec(50),
) -> Topology:
    """A star: every host on one switch.  The minimal test fabric."""
    topo = Topology(name="single-switch")
    topo.add_switch("sw0", TOR)
    for host in hosts:
        topo.add_host(host)
        topo.connect(host, "sw0", bandwidth, latency)
    topo.validate()
    return topo


def multi_root_tree(
    rack_hosts: Sequence[Sequence[str]],
    num_roots: int = 2,
    host_bandwidth: float = mbit_per_s(100),
    uplink_bandwidth: float = gbit_per_s(1),
    gateway_bandwidth: float = gbit_per_s(1),
    latency: float = usec(50),
    include_gateway: bool = True,
) -> Topology:
    """The paper's canonical densely-interconnected multi-root tree (Fig. 2).

    ``rack_hosts[i]`` lists the hosts in rack ``i``; each rack gets a ToR
    switch connected to every aggregation root (the OpenFlow layer), and
    the roots connect to the university-gateway border router.
    """
    if not rack_hosts or any(len(rack) == 0 for rack in rack_hosts):
        raise NetworkError("multi_root_tree requires at least one non-empty rack")
    if num_roots < 1:
        raise NetworkError("multi_root_tree requires at least one root")
    topo = Topology(name="multi-root-tree")
    roots = [f"agg{r}" for r in range(num_roots)]
    for root in roots:
        topo.add_switch(root, AGGREGATION, openflow=True)
    if include_gateway:
        topo.add_switch("gateway", GATEWAY)
        for root in roots:
            topo.connect(root, "gateway", gateway_bandwidth, latency)
    for rack_index, members in enumerate(rack_hosts):
        rack_name = f"rack{rack_index}"
        tor = f"tor{rack_index}"
        topo.add_switch(tor, TOR, rack=rack_name)
        for root in roots:
            topo.connect(tor, root, uplink_bandwidth, latency)
        for host in members:
            topo.add_host(host, rack=rack_name)
            topo.connect(host, tor, host_bandwidth, latency)
    topo.validate()
    return topo


def fat_tree(
    k: int,
    hosts: Optional[Sequence[str]] = None,
    host_bandwidth: float = mbit_per_s(100),
    fabric_bandwidth: float = mbit_per_s(100),
    latency: float = usec(50),
) -> Topology:
    """A k-ary fat-tree (Al-Fares et al.): the re-cabled PiCloud (§II-A, §VI).

    ``k`` must be even.  Capacity is ``k^3/4`` hosts; if ``hosts`` is given
    they fill edge switches in order (racks are pods), otherwise synthetic
    host names are generated for full occupancy.
    """
    if k < 2 or k % 2 != 0:
        raise NetworkError(f"fat-tree arity must be even and >= 2, got {k}")
    capacity = k ** 3 // 4
    if hosts is None:
        hosts = [f"h{i}" for i in range(capacity)]
    if len(hosts) > capacity:
        raise NetworkError(
            f"fat-tree(k={k}) holds {capacity} hosts, got {len(hosts)}"
        )
    topo = Topology(name=f"fat-tree-k{k}")
    half = k // 2
    core_switches = []
    for i in range(half * half):
        name = f"core{i}"
        topo.add_switch(name, CORE, openflow=True)
        core_switches.append(name)
    host_iter = iter(hosts)
    for pod in range(k):
        rack_name = f"pod{pod}"
        aggs = []
        for a in range(half):
            name = f"p{pod}-agg{a}"
            topo.add_switch(name, AGGREGATION, rack=rack_name, openflow=True)
            aggs.append(name)
            # Each agg switch connects to a distinct stripe of core switches.
            for c in range(half):
                topo.connect(name, core_switches[a * half + c], fabric_bandwidth, latency)
        for e in range(half):
            edge = f"p{pod}-edge{e}"
            topo.add_switch(edge, TOR, rack=rack_name, openflow=True)
            for agg in aggs:
                topo.connect(edge, agg, fabric_bandwidth, latency)
            for _ in range(half):
                host = next(host_iter, None)
                if host is None:
                    break
                topo.add_host(host, rack=rack_name)
                topo.connect(host, edge, host_bandwidth, latency)
    topo.validate()
    return topo


def rack_host_names(num_racks: int, hosts_per_rack: int, prefix: str = "pi") -> list[list[str]]:
    """Generate the PiCloud's host naming: ``pi-r<rack>-n<slot>``."""
    return [
        [f"{prefix}-r{r}-n{s}" for s in range(hosts_per_rack)]
        for r in range(num_racks)
    ]
