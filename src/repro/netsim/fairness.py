"""Max-min fair bandwidth allocation by progressive filling.

Given a set of flows, each traversing a list of capacitated resources
(directed link halves) and optionally rate-capped (e.g. by the sender's
NIC), compute the max-min fair rate vector: rates rise together until a
resource saturates; flows through a saturated resource freeze at their
current rate; the rest keep rising.

This is the textbook fluid model for TCP-dominated data-centre traffic
and the fidelity level at which the paper's congestion arguments operate.

The solver decomposes the instance into *bottleneck components* --
connected components of the flow/resource sharing graph -- and fills each
component independently.  The max-min allocation of disjoint components
is exactly the union of the per-component allocations (every flow's
bottleneck resource is inside its own component), so decomposition
changes nothing about the answer while making the incremental fabric
solver (:mod:`repro.netsim.fabric`) possible: re-solving one component
with this function is bit-identical to the slice of a full solve.

Determinism: all iteration happens in the insertion order of
``flow_paths`` (and path order within each flow), never over sets, so the
same instance always performs the same arithmetic in the same order.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, List, Mapping, Sequence

from repro.errors import ConfigurationError

FlowId = Hashable
ResourceId = Hashable

_EPSILON = 1e-9


def connected_components(
    flow_paths: Mapping[FlowId, Sequence[ResourceId]],
) -> List[List[FlowId]]:
    """Group flows into components that share resources (transitively).

    Flows with empty paths form singleton components.  Component order and
    the flow order within each component follow ``flow_paths`` insertion
    order, so the decomposition is deterministic.
    """
    resource_owner: Dict[ResourceId, int] = {}   # resource -> component idx
    parent: List[int] = []                        # union-find over components

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    flow_component: List[int] = []
    for flow, path in flow_paths.items():
        idx = len(parent)
        parent.append(idx)
        flow_component.append(idx)
        for resource in path:
            owner = resource_owner.get(resource)
            if owner is None:
                resource_owner[resource] = idx
            else:
                a, b = find(idx), find(owner)
                if a != b:
                    # Union toward the *older* root so component identity
                    # (and thus output order) is stable.
                    if a < b:
                        parent[b] = a
                    else:
                        parent[a] = b

    groups: Dict[int, List[FlowId]] = {}
    for (flow, _), idx in zip(flow_paths.items(), flow_component):
        groups.setdefault(find(idx), []).append(flow)
    # Roots are visited in first-flow order because dict preserves insertion.
    return list(groups.values())


def _fill_component(
    flows: List[FlowId],
    flow_paths: Mapping[FlowId, Sequence[ResourceId]],
    capacities: Mapping[ResourceId, float],
    rate_caps: Mapping[FlowId, float],
    rates: Dict[FlowId, float],
) -> None:
    """Progressive filling over one component; writes into ``rates``."""
    active: List[FlowId] = [
        flow for flow in flows if rate_caps.get(flow, math.inf) > _EPSILON
    ]
    remaining: Dict[ResourceId, float] = {}
    crossing: Dict[ResourceId, int] = {}
    for flow in active:
        for res in flow_paths[flow]:
            if res not in remaining:
                remaining[res] = float(capacities[res])
                crossing[res] = 0
            crossing[res] += 1

    while active:
        # The next rate increment is the smallest of: each loaded
        # resource's equal share of its remaining capacity, and each
        # active flow's distance to its cap.
        increment = math.inf
        for res, count in crossing.items():
            if count > 0:
                increment = min(increment, remaining[res] / count)
        for flow in active:
            cap = rate_caps.get(flow)
            if cap is not None:
                increment = min(increment, cap - rates[flow])
        if not math.isfinite(increment):
            # Active flows with no constrained resources and no cap:
            # unbounded in the model; give them "infinite" rate.
            for flow in active:
                rates[flow] = math.inf
            break

        increment = max(increment, 0.0)
        for flow in active:
            rates[flow] += increment
            for res in flow_paths[flow]:
                remaining[res] -= increment

        # Freeze flows that hit a saturated resource or their own cap.
        survivors: List[FlowId] = []
        frozen: List[FlowId] = []
        for flow in active:
            cap = rate_caps.get(flow)
            if cap is not None and rates[flow] >= cap - _EPSILON:
                frozen.append(flow)
                continue
            if any(remaining[res] <= _EPSILON for res in flow_paths[flow]):
                frozen.append(flow)
            else:
                survivors.append(flow)
        if not frozen:
            # Numerical safety: freeze everything rather than loop forever.
            frozen, survivors = survivors, []
        for flow in frozen:
            for res in flow_paths[flow]:
                crossing[res] -= 1
        active = survivors


def max_min_rates(
    flow_paths: Mapping[FlowId, Sequence[ResourceId]],
    capacities: Mapping[ResourceId, float],
    rate_caps: Mapping[FlowId, float] | None = None,
) -> Dict[FlowId, float]:
    """Compute max-min fair rates.

    ``flow_paths`` maps each flow to the resources it traverses (a flow
    with an empty path is only limited by its rate cap, or unbounded).
    ``capacities`` gives each resource's capacity; ``rate_caps`` optionally
    caps individual flows.  Returns the rate for every flow.

    Raises :class:`~repro.errors.ConfigurationError` (a ``ValueError``) on
    a flow referencing an unknown resource or on non-positive capacities.

    ``rate_caps`` is consulted read-only (``.get`` per flow, never
    iterated), so callers may pass a live superset -- the fabric hands
    in its incrementally-maintained cap dict covering *all* active flows,
    and the cc rate model hands in per-flow window demands -- without
    paying a defensive copy per solve.  Entries for flows outside
    ``flow_paths`` are never consulted, so the answer only depends on the
    caps of the flows being solved.
    """
    if rate_caps is None:
        rate_caps = {}
    for resource, capacity in capacities.items():
        if capacity <= 0:
            raise ConfigurationError(
                f"resource {resource!r} capacity must be positive"
            )
    for flow, path in flow_paths.items():
        for resource in path:
            if resource not in capacities:
                raise ConfigurationError(
                    f"flow {flow!r} uses unknown resource {resource!r}"
                )
        cap = rate_caps.get(flow)
        if cap is not None and cap < 0:
            raise ConfigurationError(f"flow {flow!r} has negative rate cap")

    rates: Dict[FlowId, float] = {flow: 0.0 for flow in flow_paths}
    for component in connected_components(flow_paths):
        _fill_component(component, flow_paths, capacities, rate_caps, rates)
    return rates


def solve_subset(
    flows: Iterable[FlowId],
    flow_paths: Mapping[FlowId, Sequence[ResourceId]],
    capacities: Mapping[ResourceId, float],
    rate_caps: Mapping[FlowId, float] | None = None,
) -> Dict[FlowId, float]:
    """Solve max-min rates for a subset of flows known to be closed.

    ``flows`` must be a union of whole components (every flow sharing a
    resource with a member is itself a member); the fabric's dirty-set
    tracker guarantees this.  Equivalent to slicing a full
    :func:`max_min_rates` solve down to ``flows`` -- bit-for-bit, since
    the full solve fills each component independently anyway.
    """
    subset = {flow: flow_paths[flow] for flow in flows}
    return max_min_rates(subset, capacities, rate_caps)
