"""Max-min fair bandwidth allocation by progressive filling.

Given a set of flows, each traversing a list of capacitated resources
(directed link halves) and optionally rate-capped (e.g. by the sender's
NIC), compute the max-min fair rate vector: rates rise together until a
resource saturates; flows through a saturated resource freeze at their
current rate; the rest keep rising.

This is the textbook fluid model for TCP-dominated data-centre traffic
and the fidelity level at which the paper's congestion arguments operate.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Mapping, Sequence

FlowId = Hashable
ResourceId = Hashable

_EPSILON = 1e-9


def max_min_rates(
    flow_paths: Mapping[FlowId, Sequence[ResourceId]],
    capacities: Mapping[ResourceId, float],
    rate_caps: Mapping[FlowId, float] | None = None,
) -> Dict[FlowId, float]:
    """Compute max-min fair rates.

    ``flow_paths`` maps each flow to the resources it traverses (a flow
    with an empty path is only limited by its rate cap, or unbounded).
    ``capacities`` gives each resource's capacity; ``rate_caps`` optionally
    caps individual flows.  Returns the rate for every flow.

    Raises ``ValueError`` on a flow referencing an unknown resource or on
    non-positive capacities.
    """
    rate_caps = dict(rate_caps or {})
    for resource, capacity in capacities.items():
        if capacity <= 0:
            raise ValueError(f"resource {resource!r} capacity must be positive")
    for flow, path in flow_paths.items():
        for resource in path:
            if resource not in capacities:
                raise ValueError(f"flow {flow!r} uses unknown resource {resource!r}")
        cap = rate_caps.get(flow)
        if cap is not None and cap < 0:
            raise ValueError(f"flow {flow!r} has negative rate cap")

    rates: Dict[FlowId, float] = {flow: 0.0 for flow in flow_paths}
    active = {
        flow
        for flow in flow_paths
        if rate_caps.get(flow, math.inf) > _EPSILON
    }
    remaining = {res: float(cap) for res, cap in capacities.items()}
    # How many *active* flows cross each resource.
    crossing: Dict[ResourceId, int] = {res: 0 for res in capacities}
    for flow in active:
        for res in flow_paths[flow]:
            crossing[res] += 1

    while active:
        # The next rate increment is the smallest of: each loaded
        # resource's equal share of its remaining capacity, and each
        # active flow's distance to its cap.
        increment = math.inf
        for res, count in crossing.items():
            if count > 0:
                increment = min(increment, remaining[res] / count)
        for flow in active:
            cap = rate_caps.get(flow)
            if cap is not None:
                increment = min(increment, cap - rates[flow])
        if not math.isfinite(increment):
            # Active flows with no constrained resources and no cap:
            # unbounded in the model; give them "infinite" rate.
            for flow in active:
                rates[flow] = math.inf
            break

        increment = max(increment, 0.0)
        for flow in active:
            rates[flow] += increment
            for res in flow_paths[flow]:
                remaining[res] -= increment

        # Freeze flows that hit a saturated resource or their own cap.
        frozen = set()
        for flow in active:
            cap = rate_caps.get(flow)
            if cap is not None and rates[flow] >= cap - _EPSILON:
                frozen.add(flow)
                continue
            if any(remaining[res] <= _EPSILON for res in flow_paths[flow]):
                frozen.add(flow)
        if not frozen:
            # Numerical safety: freeze everything rather than loop forever.
            frozen = set(active)
        for flow in frozen:
            active.discard(flow)
            for res in flow_paths[flow]:
                crossing[res] -= 1

    return rates
