"""Max-min fair bandwidth allocation by progressive filling.

Given a set of flows, each traversing a list of capacitated resources
(directed link halves) and optionally rate-capped (e.g. by the sender's
NIC), compute the max-min fair rate vector: rates rise together until a
resource saturates; flows through a saturated resource freeze at their
current rate; the rest keep rising.

This is the textbook fluid model for TCP-dominated data-centre traffic
and the fidelity level at which the paper's congestion arguments operate.

The solver decomposes the instance into *bottleneck components* --
connected components of the flow/resource sharing graph -- and fills each
component independently.  The max-min allocation of disjoint components
is exactly the union of the per-component allocations (every flow's
bottleneck resource is inside its own component), so decomposition
changes nothing about the answer while making the incremental fabric
solver (:mod:`repro.netsim.fabric`) possible: re-solving one component
with this function is bit-identical to the slice of a full solve.

Determinism: all iteration happens in the insertion order of
``flow_paths`` (and path order within each flow), never over sets, so the
same instance always performs the same arithmetic in the same order.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, List, Mapping, Sequence

from repro.errors import ConfigurationError

try:  # numpy accelerates big components; the solver works without it.
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

FlowId = Hashable
ResourceId = Hashable

_EPSILON = 1e-9

# Components below this many flows fill with the scalar loop: the numpy
# path's array setup costs more than it saves on typical churn-sized
# components (profiles show the mean component is ~10 flows), and only
# wide incasts/elephant pile-ups clear this bar.  Both paths perform the
# identical IEEE arithmetic, so crossing the threshold never changes a
# rate (pinned by tests/test_fairness_vectorized.py).
VECTORIZE_MIN_FLOWS = 64


def connected_components(
    flow_paths: Mapping[FlowId, Sequence[ResourceId]],
) -> List[List[FlowId]]:
    """Group flows into components that share resources (transitively).

    Flows with empty paths form singleton components.  Component order and
    the flow order within each component follow ``flow_paths`` insertion
    order, so the decomposition is deterministic.
    """
    resource_owner: Dict[ResourceId, int] = {}   # resource -> component idx
    parent: List[int] = []                        # union-find over components

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    flow_component: List[int] = []
    for flow, path in flow_paths.items():
        idx = len(parent)
        parent.append(idx)
        flow_component.append(idx)
        for resource in path:
            owner = resource_owner.get(resource)
            if owner is None:
                resource_owner[resource] = idx
            else:
                a, b = find(idx), find(owner)
                if a != b:
                    # Union toward the *older* root so component identity
                    # (and thus output order) is stable.
                    if a < b:
                        parent[b] = a
                    else:
                        parent[a] = b

    groups: Dict[int, List[FlowId]] = {}
    for (flow, _), idx in zip(flow_paths.items(), flow_component):
        groups.setdefault(find(idx), []).append(flow)
    # Roots are visited in first-flow order because dict preserves insertion.
    return list(groups.values())


def _fill_component(
    flows: List[FlowId],
    flow_paths: Mapping[FlowId, Sequence[ResourceId]],
    capacities: Mapping[ResourceId, float],
    rate_caps: Mapping[FlowId, float],
    rates: Dict[FlowId, float],
) -> None:
    """Progressive filling over one component; writes into ``rates``."""
    active: List[FlowId] = [
        flow for flow in flows if rate_caps.get(flow, math.inf) > _EPSILON
    ]
    remaining: Dict[ResourceId, float] = {}
    crossing: Dict[ResourceId, int] = {}
    for flow in active:
        for res in flow_paths[flow]:
            if res not in remaining:
                remaining[res] = float(capacities[res])
                crossing[res] = 0
            crossing[res] += 1

    if _np is not None and len(active) >= VECTORIZE_MIN_FLOWS:
        _fill_component_vectorized(active, flow_paths, remaining, crossing,
                                   rate_caps, rates)
        return

    while active:
        # The next rate increment is the smallest of: each loaded
        # resource's equal share of its remaining capacity, and each
        # active flow's distance to its cap.
        increment = math.inf
        for res, count in crossing.items():
            if count > 0:
                increment = min(increment, remaining[res] / count)
        for flow in active:
            cap = rate_caps.get(flow)
            if cap is not None:
                increment = min(increment, cap - rates[flow])
        if not math.isfinite(increment):
            # Active flows with no constrained resources and no cap:
            # unbounded in the model; give them "infinite" rate.
            for flow in active:
                rates[flow] = math.inf
            break

        increment = max(increment, 0.0)
        for flow in active:
            rates[flow] += increment
            for res in flow_paths[flow]:
                remaining[res] -= increment

        # Freeze flows that hit a saturated resource or their own cap.
        survivors: List[FlowId] = []
        frozen: List[FlowId] = []
        for flow in active:
            cap = rate_caps.get(flow)
            if cap is not None and rates[flow] >= cap - _EPSILON:
                frozen.append(flow)
                continue
            if any(remaining[res] <= _EPSILON for res in flow_paths[flow]):
                frozen.append(flow)
            else:
                survivors.append(flow)
        if not frozen:
            # Numerical safety: freeze everything rather than loop forever.
            frozen, survivors = survivors, []
        for flow in frozen:
            for res in flow_paths[flow]:
                crossing[res] -= 1
        active = survivors


def _fill_component_vectorized(
    active: List[FlowId],
    flow_paths: Mapping[FlowId, Sequence[ResourceId]],
    remaining: Mapping[ResourceId, float],
    crossing: Mapping[ResourceId, int],
    rate_caps: Mapping[FlowId, float],
    rates: Dict[FlowId, float],
) -> None:
    """Numpy water-fill: byte-identical to the scalar loop, faster wide.

    Every operation maps 1:1 onto the scalar path's IEEE arithmetic:

    * the increment is an (exact, order-independent) ``min`` over the
      same per-resource divisions and per-flow cap distances;
    * rate bumps are the same single addition per flow per round;
    * ``np.subtract.at`` performs the same *sequence* of subtractions on
      each resource slot (repeated subtraction of one increment value is
      a chain on that slot alone, so interleaving cannot change it).

    Hence rates out of this path equal the scalar path's bit-for-bit --
    the gate at :data:`VECTORIZE_MIN_FLOWS` is purely a speed decision.
    """
    res_index = {res: i for i, res in enumerate(remaining)}
    rem = _np.array([remaining[res] for res in remaining], dtype=_np.float64)
    cross = _np.array([crossing[res] for res in crossing], dtype=_np.float64)
    paths = [
        _np.array([res_index[res] for res in flow_paths[flow]],
                  dtype=_np.intp)
        for flow in active
    ]
    caps = _np.array(
        [rate_caps.get(flow, _np.inf) for flow in active], dtype=_np.float64
    )
    flow_rates = _np.zeros(len(active), dtype=_np.float64)
    alive = _np.ones(len(active), dtype=bool)
    # CSR-ish layout over ALL initially-active flows for the per-flow
    # "crosses a saturated resource?" reduction each round.
    all_idx = _np.concatenate(paths) if paths else _np.empty(0, _np.intp)
    ptr = _np.zeros(len(active) + 1, dtype=_np.intp)
    _np.cumsum([len(p) for p in paths], out=ptr[1:])

    while alive.any():
        loaded = cross > 0
        increment = _np.inf
        if loaded.any():
            increment = (rem[loaded] / cross[loaded]).min()
        cap_gap = caps[alive] - flow_rates[alive]
        if cap_gap.size:
            increment = min(increment, cap_gap.min())
        if not math.isfinite(increment):
            for i in _np.nonzero(alive)[0]:
                rates[active[i]] = math.inf
            return
        increment = max(float(increment), 0.0)

        flow_rates[alive] += increment
        alive_idx = _np.nonzero(alive)[0]
        touched = _np.concatenate([paths[i] for i in alive_idx]) \
            if alive_idx.size else _np.empty(0, _np.intp)
        _np.subtract.at(rem, touched, increment)

        saturated = rem <= _EPSILON
        hits = _np.zeros(len(active), dtype=_np.float64)
        if all_idx.size:
            # reduceat mishandles zero-length segments (an empty-path
            # flow), so substitute index 0 there and mask afterwards.
            lengths = _np.diff(ptr)
            seg_starts = _np.where(lengths > 0, ptr[:-1], 0)
            per_flow = _np.add.reduceat(
                saturated[all_idx].astype(_np.float64), seg_starts)
            hits = _np.where(lengths > 0, per_flow, 0.0)
        at_cap = _np.isfinite(caps) & (flow_rates >= caps - _EPSILON)
        frozen = alive & (at_cap | (hits > 0))
        if not frozen.any():
            # Numerical safety: freeze everything rather than loop forever.
            frozen = alive.copy()
        frozen_idx = _np.nonzero(frozen)[0]
        if frozen_idx.size:
            _np.subtract.at(
                cross,
                _np.concatenate([paths[i] for i in frozen_idx]),
                1.0,
            )
        alive &= ~frozen

    for i, flow in enumerate(active):
        rates[flow] = float(flow_rates[i])


def max_min_rates(
    flow_paths: Mapping[FlowId, Sequence[ResourceId]],
    capacities: Mapping[ResourceId, float],
    rate_caps: Mapping[FlowId, float] | None = None,
    validate: bool = True,
) -> Dict[FlowId, float]:
    """Compute max-min fair rates.

    ``flow_paths`` maps each flow to the resources it traverses (a flow
    with an empty path is only limited by its rate cap, or unbounded).
    ``capacities`` gives each resource's capacity; ``rate_caps`` optionally
    caps individual flows.  Returns the rate for every flow.

    Raises :class:`~repro.errors.ConfigurationError` (a ``ValueError``) on
    a flow referencing an unknown resource or on non-positive capacities.

    ``rate_caps`` is consulted read-only (``.get`` per flow, never
    iterated), so callers may pass a live superset -- the fabric hands
    in its incrementally-maintained cap dict covering *all* active flows,
    and the cc rate model hands in per-flow window demands -- without
    paying a defensive copy per solve.  Entries for flows outside
    ``flow_paths`` are never consulted, so the answer only depends on the
    caps of the flows being solved.
    """
    if rate_caps is None:
        rate_caps = {}
    if validate:
        # The fabric's solver skips this (validate=False): its inputs are
        # built from link state it maintains itself, and re-walking every
        # path per solve is measurable at 10^5 solves per run.
        for resource, capacity in capacities.items():
            if capacity <= 0:
                raise ConfigurationError(
                    f"resource {resource!r} capacity must be positive"
                )
        for flow, path in flow_paths.items():
            for resource in path:
                if resource not in capacities:
                    raise ConfigurationError(
                        f"flow {flow!r} uses unknown resource {resource!r}"
                    )
            cap = rate_caps.get(flow)
            if cap is not None and cap < 0:
                raise ConfigurationError(f"flow {flow!r} has negative rate cap")

    rates: Dict[FlowId, float] = {flow: 0.0 for flow in flow_paths}
    for component in connected_components(flow_paths):
        _fill_component(component, flow_paths, capacities, rate_caps, rates)
    return rates


def solve_subset(
    flows: Iterable[FlowId],
    flow_paths: Mapping[FlowId, Sequence[ResourceId]],
    capacities: Mapping[ResourceId, float],
    rate_caps: Mapping[FlowId, float] | None = None,
    validate: bool = True,
) -> Dict[FlowId, float]:
    """Solve max-min rates for a subset of flows known to be closed.

    ``flows`` must be a union of whole components (every flow sharing a
    resource with a member is itself a member); the fabric's dirty-set
    tracker guarantees this.  Equivalent to slicing a full
    :func:`max_min_rates` solve down to ``flows`` -- bit-for-bit, since
    the full solve fills each component independently anyway.
    """
    subset = {flow: flow_paths[flow] for flow in flows}
    return max_min_rates(subset, capacities, rate_caps, validate=validate)
