"""Path services: who decides which way a flow goes.

The fabric asks a :class:`PathService` for a node path when a flow starts.
Two static services live here; the OpenFlow/SDN reactive service (with a
real control-plane round trip) is in :mod:`repro.netsim.sdn.controller`.

Both static services honour link failures: the fabric bumps
``invalidate()`` when the wiring changes, flushing cached paths.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Hashable, List, Optional, Protocol, Sequence

import networkx as nx

from repro.errors import NoRouteError
from repro.netsim.topology import Topology
from repro.sim.kernel import Simulator
from repro.sim.process import Signal


class PathService(Protocol):
    """Resolves a (src, dst, flow_key) to a node path, possibly asynchronously."""

    def resolve(self, src: str, dst: str, flow_key: Hashable) -> Signal:
        """Return a Signal succeeding with ``[src, ..., dst]`` or failing
        with :class:`~repro.errors.NoRouteError`."""
        ...

    def invalidate(self) -> None:
        """Flush cached state after a topology change (link failure/repair)."""
        ...


class _StaticBase:
    """Shared machinery: a working graph that excludes failed links."""

    def __init__(self, sim: Simulator, topology: Topology) -> None:
        self.sim = sim
        self.topology = topology
        self._down_edges: set[frozenset[str]] = set()
        self._graph_cache: Optional[nx.Graph] = None

    def mark_link(self, a: str, b: str, up: bool) -> None:
        """Fabric hook: a link changed state."""
        edge = frozenset((a, b))
        if up:
            self._down_edges.discard(edge)
        else:
            self._down_edges.add(edge)
        self.invalidate()

    def invalidate(self) -> None:
        self._graph_cache = None

    def _working_graph(self) -> nx.Graph:
        if self._graph_cache is None:
            graph = self.topology.graph.copy()
            for edge in self._down_edges:
                a, b = tuple(edge)
                if graph.has_edge(a, b):
                    graph.remove_edge(a, b)
            self._graph_cache = graph
        return self._graph_cache

    def _fail(self, src: str, dst: str) -> Signal:
        signal = Signal(self.sim, name=f"route:{src}->{dst}")
        signal.fail(NoRouteError(f"no path from {src!r} to {dst!r}"))
        return signal

    def _immediate(self, path: List[str]) -> Signal:
        signal = Signal(self.sim, name="route")
        signal.succeed(path)
        return signal


class ShortestPathRouting(_StaticBase):
    """Deterministic single shortest path per (src, dst), cached.

    This is the non-SDN baseline: every flow between the same endpoints
    takes the same path, so multi-root redundancy goes unused -- exactly
    the behaviour SDN traffic engineering improves on in experiment C3.
    """

    def __init__(self, sim: Simulator, topology: Topology) -> None:
        super().__init__(sim, topology)
        self._paths: Dict[tuple[str, str], List[str]] = {}

    def invalidate(self) -> None:
        super().invalidate()
        self._paths = {}

    def resolve(self, src: str, dst: str, flow_key: Hashable = None) -> Signal:
        if src == dst:
            return self._immediate([src])
        key = (src, dst)
        if key not in self._paths:
            try:
                self._paths[key] = nx.shortest_path(self._working_graph(), src, dst)
            except (nx.NetworkXNoPath, nx.NodeNotFound):
                return self._fail(src, dst)
        return self._immediate(list(self._paths[key]))


class EcmpRouting(_StaticBase):
    """Equal-cost multi-path: hash the flow key over all shortest paths.

    Models per-flow ECMP as deployed in real DCs: each flow picks one of
    the equal-cost paths by a deterministic hash, so distinct flows spread
    across the multi-root tree but a single elephant flow still collides.
    """

    def __init__(self, sim: Simulator, topology: Topology) -> None:
        super().__init__(sim, topology)
        self._path_sets: Dict[tuple[str, str], List[List[str]]] = {}

    def invalidate(self) -> None:
        super().invalidate()
        self._path_sets = {}

    def resolve(self, src: str, dst: str, flow_key: Hashable = None) -> Signal:
        if src == dst:
            return self._immediate([src])
        key = (src, dst)
        if key not in self._path_sets:
            try:
                paths = [list(p) for p in nx.all_shortest_paths(self._working_graph(), src, dst)]
            except (nx.NetworkXNoPath, nx.NodeNotFound):
                return self._fail(src, dst)
            # Sort for determinism independent of networkx iteration order.
            self._path_sets[key] = sorted(paths)
        paths = self._path_sets[key]
        digest = hashlib.sha256(repr((src, dst, flow_key)).encode()).digest()
        index = int.from_bytes(digest[:4], "big") % len(paths)
        return self._immediate(list(paths[index]))


def path_links(path: Sequence[str]) -> list[tuple[str, str]]:
    """Expand a node path into its ordered directed hops."""
    return [(path[i], path[i + 1]) for i in range(len(path) - 1)]
