"""Path services: who decides which way a flow goes.

The fabric asks a :class:`PathService` for a node path when a flow starts.
Two static services live here; the OpenFlow/SDN reactive service (with a
real control-plane round trip) is in :mod:`repro.netsim.sdn.controller`.

Both static services honour link failures: the fabric calls
``mark_link`` (or ``invalidate``) when the wiring changes.  On the
paper's regular topologies (fat-tree, multi-root tree, single switch)
path sets come from the analytic engine in
:mod:`repro.netsim.structured`, keyed by *attach-switch* pair so every
host pair behind the same ToRs shares one cached entry; link failures
evict only the entries whose paths traverse the failed link.  Irregular
topologies -- and pairs the engine cannot prove complete -- fall back to
networkx over a working graph that is patched in place (edge removed or
restored per event) instead of re-copied.

Both backends produce the *same* paths: the canonical single path is the
lexicographically-first shortest path, and ECMP hashes over the full
sorted shortest-path set, so swapping backends never changes a flow's
route (asserted by ``tests/test_structured_routing.py``).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Hashable, List, Optional, Protocol, Sequence, Set, Tuple

import networkx as nx

from repro.errors import NoRouteError
from repro.netsim.structured import StructuredPaths
from repro.netsim.topology import Topology
from repro.sim.kernel import Simulator
from repro.sim.process import Signal


class PathService(Protocol):
    """Resolves a (src, dst, flow_key) to a node path, possibly asynchronously."""

    def resolve(self, src: str, dst: str, flow_key: Hashable) -> Signal:
        """Return a Signal succeeding with ``[src, ..., dst]`` or failing
        with :class:`~repro.errors.NoRouteError`."""
        ...

    def invalidate(self) -> None:
        """Flush cached state after a topology change (link failure/repair)."""
        ...


class PathCache:
    """Structured path groups + an in-place working graph.

    This is the shared routing brain: the static services below wrap it
    with the PathService signal protocol, and the SDN controller holds
    one as its topology view so controller apps answer PacketIns from
    the same caches instead of re-searching the graph per flow.
    """

    def __init__(self, topology: Topology, structured: bool = True) -> None:
        self.topology = topology
        self._down_edges: Set[frozenset] = set()
        # The working graph mirrors the pristine wiring minus failed
        # links.  It is built once and patched per mark_link -- removing
        # or restoring one edge -- never re-copied wholesale.
        self._work_graph: nx.Graph = topology.graph.copy()
        self._structure: Optional[StructuredPaths] = (
            StructuredPaths.build(topology) if structured else None
        )
        # Live (failure-filtered) groups keyed by attach-switch pair,
        # indexed by the links their pristine paths traverse so one
        # flapping link evicts only the entries it can affect.
        self._live_groups: Dict[Tuple[str, str], Optional[List[List[str]]]] = {}
        self._pairs_by_link: Dict[frozenset, Set[Tuple[str, str]]] = {}
        # networkx fallback results, keyed by endpoint pair.  These
        # depend on the whole working graph, so any wiring change
        # flushes them; on regular fabrics they are the rare exception.
        self._nx_cache: Dict[Tuple[str, str], List[List[str]]] = {}

    @property
    def backend(self) -> str:
        """Which engine answers path queries: ``structured`` or ``networkx``."""
        return "structured" if self._structure is not None else "networkx"

    # -- link state ---------------------------------------------------------

    def mark_link(self, a: str, b: str, up: bool) -> None:
        """Fabric hook: a link changed state."""
        edge = frozenset((a, b))
        pristine = self.topology.graph
        if up:
            self._down_edges.discard(edge)
            if not self._work_graph.has_edge(a, b) and pristine.has_edge(a, b):
                self._work_graph.add_edge(a, b, **pristine.edges[a, b])
        else:
            self._down_edges.add(edge)
            if self._work_graph.has_edge(a, b):
                self._work_graph.remove_edge(a, b)
        for key in self._pairs_by_link.pop(edge, ()):
            self._live_groups.pop(key, None)
        self._nx_cache.clear()

    def invalidate(self) -> None:
        """Conservative full flush (protocol hook for external callers)."""
        self._live_groups.clear()
        self._pairs_by_link.clear()
        self._nx_cache.clear()

    @property
    def graph(self) -> nx.Graph:
        """The live working graph (pristine wiring minus failed links)."""
        return self._work_graph

    # -- path computation ---------------------------------------------------

    def shortest_paths(self, src: str, dst: str) -> List[List[str]]:
        """All shortest ``src -> dst`` paths on the working graph, sorted.

        Raises :class:`NoRouteError` when none exist.  Used by resolve()
        and by the cross-backend equivalence tests.
        """
        group, prefix, suffix = self.path_group(src, dst)
        return [prefix + list(path) + suffix for path in group]

    def path_group(
        self, src: str, dst: str
    ) -> Tuple[List[List[str]], List[str], List[str]]:
        """The shortest-path set as (shared core paths, prefix, suffix).

        On the structured fast path the core paths are the cached
        attach-pair group and prefix/suffix carry the host access hops;
        the fallback returns full endpoint paths with empty affixes.
        Sorting the core group sorts the full set: the affixes are
        common to every member.
        """
        structure = self._structure
        if structure is not None:
            resolved = self._structured_group(structure, src, dst)
            if resolved is not None:
                return resolved
        key = (src, dst)
        paths = self._nx_cache.get(key)
        if paths is None:
            try:
                paths = sorted(
                    [list(p) for p in nx.all_shortest_paths(self._work_graph, src, dst)]
                )
            except (nx.NetworkXNoPath, nx.NodeNotFound):
                raise NoRouteError(f"no path from {src!r} to {dst!r}") from None
            self._nx_cache[key] = paths
        return paths, [], []

    def _structured_group(
        self, structure: StructuredPaths, src: str, dst: str
    ) -> Optional[Tuple[List[List[str]], List[str], List[str]]]:
        """Structured fast path; ``None`` defers the pair to networkx."""
        down = self._down_edges
        if src in structure.levels:
            u, prefix = src, []
        else:
            u = structure.attach.get(src)
            if u is None:
                return None
            if down and frozenset((src, u)) in down:
                # A host's only access cable is down: provably no route.
                raise NoRouteError(f"no path from {src!r} to {dst!r}")
            prefix = [src]
        if dst in structure.levels:
            v, suffix = dst, []
        else:
            v = structure.attach.get(dst)
            if v is None:
                return None
            if down and frozenset((dst, v)) in down:
                raise NoRouteError(f"no path from {src!r} to {dst!r}")
            suffix = [dst]
        group = self._live_group(structure, u, v)
        if not group:
            return None
        return group, prefix, suffix

    def _live_group(
        self, structure: StructuredPaths, u: str, v: str
    ) -> Optional[List[List[str]]]:
        """The attach-pair group filtered by failed links, cached.

        The pristine group is permanent (see StructuredPaths); this live
        view is evicted by mark_link via the per-link pair index.  An
        entry of ``None``/empty means "networkx territory" -- either the
        enumeration was incomplete or failures emptied the filter (the
        working graph may hold longer paths the pristine set lacks).
        """
        key = (u, v)
        try:
            return self._live_groups[key]
        except KeyError:
            pass
        pristine = structure.group(u, v)
        if pristine is None:
            live: Optional[List[List[str]]] = None
        elif not self._down_edges:
            live = pristine
        else:
            down = self._down_edges
            live = [
                path
                for path in pristine
                if not any(
                    frozenset((path[i], path[i + 1])) in down
                    for i in range(len(path) - 1)
                )
            ]
        if pristine:
            # Index by *pristine* hops: a failure on any of them can
            # shrink this entry, and a repair can grow it back.
            index = self._pairs_by_link
            for path in pristine:
                for i in range(len(path) - 1):
                    index.setdefault(
                        frozenset((path[i], path[i + 1])), set()
                    ).add(key)
        self._live_groups[key] = live
        return live


class _StaticBase:
    """A PathService shell around :class:`PathCache`."""

    def __init__(
        self, sim: Simulator, topology: Topology, structured: bool = True
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.paths = PathCache(topology, structured)

    @property
    def backend(self) -> str:
        """Which engine answers path queries: ``structured`` or ``networkx``."""
        return self.paths.backend

    def mark_link(self, a: str, b: str, up: bool) -> None:
        """Fabric hook: a link changed state."""
        self.paths.mark_link(a, b, up)

    def invalidate(self) -> None:
        self.paths.invalidate()

    def shortest_paths(self, src: str, dst: str) -> List[List[str]]:
        return self.paths.shortest_paths(src, dst)

    # -- signal helpers -----------------------------------------------------

    def _fail(self, src: str, dst: str) -> Signal:
        signal = Signal(self.sim, name=f"route:{src}->{dst}")
        signal.fail(NoRouteError(f"no path from {src!r} to {dst!r}"))
        return signal

    def _immediate(self, path: List[str]) -> Signal:
        signal = Signal(self.sim, name="route")
        signal.succeed(path)
        return signal


class ShortestPathRouting(_StaticBase):
    """Deterministic single shortest path per (src, dst).

    This is the non-SDN baseline: every flow between the same endpoints
    takes the same path, so multi-root redundancy goes unused -- exactly
    the behaviour SDN traffic engineering improves on in experiment C3.
    The canonical choice is the lexicographically-first shortest path,
    which both the structured engine and the networkx fallback produce
    identically.
    """

    def resolve(self, src: str, dst: str, flow_key: Hashable = None) -> Signal:
        if src == dst:
            return self._immediate([src])
        try:
            group, prefix, suffix = self.paths.path_group(src, dst)
        except NoRouteError:
            return self._fail(src, dst)
        return self._immediate(prefix + list(group[0]) + suffix)


class EcmpRouting(_StaticBase):
    """Equal-cost multi-path: hash the flow key over all shortest paths.

    Models per-flow ECMP as deployed in real DCs: each flow picks one of
    the equal-cost paths by a deterministic hash, so distinct flows spread
    across the multi-root tree but a single elephant flow still collides.
    """

    def resolve(self, src: str, dst: str, flow_key: Hashable = None) -> Signal:
        if src == dst:
            return self._immediate([src])
        try:
            group, prefix, suffix = self.paths.path_group(src, dst)
        except NoRouteError:
            return self._fail(src, dst)
        digest = hashlib.sha256(repr((src, dst, flow_key)).encode()).digest()
        index = int.from_bytes(digest[:4], "big") % len(group)
        return self._immediate(prefix + list(group[index]) + suffix)


def path_links(path: Sequence[str]) -> list[tuple[str, str]]:
    """Expand a node path into its ordered directed hops."""
    return [(path[i], path[i + 1]) for i in range(len(path) - 1)]
