"""Analytic shortest paths for the regular PiCloud fabrics.

The paper's topologies are strictly *layered*: hosts (level 0) hang off
ToR/edge switches (level 1), ToRs cable to aggregation switches (level
2), and aggregation cables up to cores or the gateway border router
(level 3).  Every cable joins adjacent levels, and every host has
exactly one access cable.  In such a graph a shortest switch-to-switch
path is severely constrained: a walk whose level steps are all +-1 and
whose length equals ``2L - lu - lv`` (the floor for peak level ``L``)
has zero slack, so it climbs monotonically from ``u`` to one peak at
level ``L`` and descends monotonically to ``v``.  That makes the full
shortest-path *set* between two attach switches enumerable from the
up-neighbour lists alone -- no per-pair breadth-first search.

:class:`StructuredPaths` performs that enumeration for the pristine
(no-failures) wiring and only for pairs where it can *prove* the
enumeration is complete:

* ``u == v`` -- the trivial path.
* two ToRs sharing an aggregation switch -- ``u-x-v`` for every shared
  ``x`` (length 2 is the absolute floor; no other shape fits).
* two ToRs in *different* connected components of the level-<=2
  subgraph (distinct fat-tree pods) -- every path between them must
  peak at level 3, and at the minimal length that peak is unique and
  the path monotone, so ``u-a-w-b-v`` over common reachable cores is
  the complete set.
* a ToR and a level-3 switch it can reach monotonically (the pimaster's
  attach point) -- all length-2 paths are ``u-a-v``.

Everything else -- same-component ToRs with no shared aggregation,
level-2 attach points, non-layered wiring -- returns ``None`` and the
caller falls back to networkx on the working graph, so irregular
topologies lose speed, never correctness.

The routing services in :mod:`repro.netsim.routing` combine these
pristine groups with a failed-link filter: a subgraph cannot contain
*shorter* paths than its supergraph, so the working graph's shortest
paths are exactly the pristine shortest paths that avoid failed links
-- whenever that filtered set is non-empty.  An emptied filter falls
back to networkx too, preserving exactness under arbitrary failure
sequences.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.netsim.topology import (
    AGGREGATION,
    CORE,
    GATEWAY,
    HOST,
    TOR,
    Topology,
)

_LEVELS = {TOR: 1, AGGREGATION: 2, CORE: 3, GATEWAY: 3}


class StructuredPaths:
    """Pristine shortest-path groups for a strictly layered fabric.

    Built once per topology via :meth:`build` (which returns ``None``
    for wiring the layered model does not fit); thereafter
    :meth:`group` answers attach-switch pairs from a permanent cache --
    the pristine wiring never changes, so entries are never evicted.
    """

    def __init__(
        self,
        levels: Dict[str, int],
        attach: Dict[str, str],
        up: Dict[str, Tuple[str, ...]],
        component: Dict[str, int],
    ) -> None:
        self.levels = levels
        self.attach = attach
        self._up = up
        self._component = component
        self._groups: Dict[Tuple[str, str], Optional[List[List[str]]]] = {}

    @classmethod
    def build(cls, topology: Topology) -> Optional["StructuredPaths"]:
        """Analyze a topology; ``None`` if it is not strictly layered."""
        graph = topology.graph
        levels: Dict[str, int] = {}
        for node, data in graph.nodes(data=True):
            if data["kind"] != HOST:
                levels[node] = _LEVELS[data["kind"]]

        attach: Dict[str, str] = {}
        for node, data in graph.nodes(data=True):
            if data["kind"] != HOST:
                continue
            neighbours = list(graph[node])
            if len(neighbours) != 1 or neighbours[0] not in levels:
                return None  # multi-homed host or host-host cable
            if levels[neighbours[0]] == 2:
                # A level-2 attach point admits equal-length over-the-top
                # and under-the-bottom paths; the enumeration would miss
                # half the set.
                return None
            attach[node] = neighbours[0]

        up: Dict[str, List[str]] = {switch: [] for switch in levels}
        low_adjacency: Dict[str, List[str]] = {}
        for a, b in graph.edges():
            if a not in levels or b not in levels:
                continue  # host access cable
            la, lb = levels[a], levels[b]
            if abs(la - lb) != 1:
                return None  # not strictly layered
            lower, upper = (a, b) if la < lb else (b, a)
            up[lower].append(upper)
            if levels[upper] <= 2:
                low_adjacency.setdefault(lower, []).append(upper)
                low_adjacency.setdefault(upper, []).append(lower)

        frozen_up = {switch: tuple(sorted(nbrs)) for switch, nbrs in up.items()}

        # Connected components of the level-<=2 switch subgraph: two ToRs
        # in different components can only meet at level 3, which is what
        # proves their shortest paths monotone (see module docstring).
        component: Dict[str, int] = {}
        next_id = 0
        for switch in sorted(s for s, lvl in levels.items() if lvl <= 2):
            if switch in component:
                continue
            stack = [switch]
            component[switch] = next_id
            while stack:
                node = stack.pop()
                for neighbour in low_adjacency.get(node, ()):
                    if neighbour not in component:
                        component[neighbour] = next_id
                        stack.append(neighbour)
            next_id += 1

        return cls(levels, attach, frozen_up, component)

    # -- enumeration -------------------------------------------------------

    def group(self, u: str, v: str) -> Optional[List[List[str]]]:
        """All shortest ``u -> v`` switch paths in the pristine fabric.

        Sorted lexicographically.  ``None`` means the enumeration cannot
        prove completeness for this pair; the caller must fall back to a
        graph search.
        """
        key = (u, v)
        try:
            return self._groups[key]
        except KeyError:
            pass
        paths = self._compute(u, v)
        self._groups[key] = paths
        return paths

    def _compute(self, u: str, v: str) -> Optional[List[List[str]]]:
        if u == v:
            return [[u]]
        lu, lv = self.levels[u], self.levels[v]
        if lu == 1 and lv == 1:
            shared = set(self._up[u]) & set(self._up[v])
            if shared:
                return [[u, x, v] for x in sorted(shared)]
            if self._component.get(u) == self._component.get(v):
                # Same component but no shared aggregation: equal-length
                # multi-peak detours below level 3 may exist.
                return None
            paths = [
                [u, a, w, b, v]
                for a in self._up[u]
                for w in self._up[a]
                for b in self._up[v]
                if w in self._up[b]
            ]
            return sorted(paths) if paths else None
        if lu == 1 and lv == 3:
            paths = [[u, a, v] for a in self._up[u] if v in self._up[a]]
            return paths if paths else None  # _up is sorted: paths are too
        if lu == 3 and lv == 1:
            down = self._compute(v, u)
            if not down:
                return down
            return sorted(list(reversed(path)) for path in down)
        # Distinct level-3 switches meet through valleys; level-2
        # endpoints were excluded at build time but a switch itself can
        # still be asked for.  Both are graph-search territory.
        return None
