"""Spans: the unit of causal tracing.

A :class:`Span` is one timed operation somewhere in the stack -- a REST
request, a retry attempt, a container start, a network flow, a congestion
episode on one link direction.  Spans carry

* identity: ``trace_id`` (shared by everything causally downstream of one
  root operation), ``span_id`` (unique per span) and ``parent_id``;
* simulated-time bounds: ``start`` always, ``end`` once finished;
* a ``kind`` naming the layer (``mgmt``, ``rest``, ``virt``, ``net``,
  ``sim``, ``fault``, ...) so cross-layer reports can group by it;
* free-form ``attributes`` and a terminal ``status`` (``"ok"`` /
  ``"error"``).

Identifiers are small deterministic integers handed out by the
:class:`~repro.trace.tracer.Tracer`, so two runs with the same seed
produce byte-identical traces.

:data:`NULL_SPAN` is the do-nothing stand-in returned by the
instrumentation helpers when no tracer is installed: call sites can
unconditionally ``span.end()`` / ``span.set_attribute(...)`` without
paying for tracing they did not turn on.
"""

from __future__ import annotations

from typing import Any, Dict, NamedTuple, Optional


class SpanContext(NamedTuple):
    """The propagatable part of a span: just enough to parent children.

    Carried across layer boundaries (inside REST requests, passed to
    ``Network.transfer``, ...) instead of the full :class:`Span` so a
    receiver can create children without being able to mutate the parent.
    """

    trace_id: int
    span_id: int


class Span:
    """One recorded operation.  Created via ``Tracer.start_span``."""

    __slots__ = (
        "trace_id", "span_id", "parent_id", "name", "kind",
        "start", "end_time", "status", "status_detail", "attributes",
        "_tracer",
    )

    def __init__(
        self,
        tracer,
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        kind: str,
        start: float,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> None:
        self._tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.kind = kind
        self.start = start
        self.end_time: Optional[float] = None
        self.status: Optional[str] = None
        self.status_detail: Optional[str] = None
        self.attributes: Dict[str, Any] = dict(attributes) if attributes else {}

    # -- identity ---------------------------------------------------------

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    @property
    def finished(self) -> bool:
        return self.end_time is not None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def duration(self, now: Optional[float] = None) -> float:
        """Span length in simulated seconds (open spans run to ``now``)."""
        end = self.end_time if self.end_time is not None else now
        if end is None:
            end = self.start
        return max(0.0, end - self.start)

    # -- mutation ---------------------------------------------------------

    def set_attribute(self, key: str, value: Any) -> "Span":
        self.attributes[key] = value
        return self

    def end(self, status: str = "ok", detail: Optional[str] = None) -> "Span":
        """Close the span at the current simulated time.  Idempotent."""
        if self.end_time is None:
            self._tracer._end_span(self, status, detail)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = f"t=[{self.start:.6f},{self.end_time:.6f}]" if self.finished \
            else f"open@{self.start:.6f}"
        return (
            f"<Span {self.span_id} trace={self.trace_id} "
            f"{self.kind}:{self.name!r} {state} {self.status}>"
        )


class _NullSpan:
    """Inert span: every mutation is a no-op, ``context`` is ``None``.

    Returned by the module-level helpers when tracing is off so
    instrumented code never branches on "is tracing enabled".  Falsy, so
    ``if span:`` also works where a call site wants to skip extra work
    (e.g. building an expensive attribute dict).
    """

    __slots__ = ()

    context = None
    trace_id = None
    span_id = None
    parent_id = None
    name = ""
    kind = ""
    start = 0.0
    end_time = None
    status = None
    status_detail = None
    finished = False
    ok = False

    @property
    def attributes(self) -> Dict[str, Any]:
        return {}

    def duration(self, now: Optional[float] = None) -> float:
        return 0.0

    def set_attribute(self, key: str, value: Any) -> "_NullSpan":
        return self

    def end(self, status: str = "ok", detail: Optional[str] = None) -> "_NullSpan":
        return self

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<NullSpan>"


NULL_SPAN = _NullSpan()


def context_of(span_or_context) -> Optional[SpanContext]:
    """Coerce a Span, SpanContext, or None into a SpanContext (or None)."""
    if span_or_context is None:
        return None
    if isinstance(span_or_context, SpanContext):
        return span_or_context
    return span_or_context.context
