"""Cross-layer causal tracing for the PiCloud model.

Every management operation, REST exchange, retry attempt, container
lifecycle step, live-migration round, network flow and congestion episode
can be recorded as a :class:`~repro.trace.span.Span` with exact simulated
timestamps and explicit causal parentage -- so the paper's cross-layer
ripple effects ("consolidation caused THIS congestion") become provable
queries instead of eyeballed telemetry correlations.

Turn it on through config (``PiCloudConfig(tracing=True)``), the CLI
(``--trace-out trace.json``), or directly::

    from repro.trace import Tracer

    cloud = PiCloud(PiCloudConfig.small(tracing=True))
    cloud.boot()
    ...
    spans = cloud.tracer.find_spans(kind="net", name_prefix="flow")
    cloud.tracer.write_chrome("trace.json")    # open in Perfetto

When no tracer is installed, the instrumentation helpers below return
:data:`NULL_SPAN` and the whole subsystem costs one attribute check per
instrumented operation (and nothing per kernel event).

See ``docs/tracing.md`` for the span model and the assertion-API cookbook.
"""

from __future__ import annotations

from repro.trace.span import NULL_SPAN, Span, SpanContext, context_of
from repro.trace.tracer import Tracer, iter_span_dicts, live_tracers

__all__ = [
    "NULL_SPAN", "Span", "SpanContext", "Tracer",
    "context_of", "instant", "iter_span_dicts", "live_tracers", "start_span",
]


def start_span(sim, name, parent=None, kind="internal", attributes=None):
    """Open a span on ``sim``'s tracer, or :data:`NULL_SPAN` if untraced.

    The one-liner instrumented code calls: always returns something with
    ``.end()`` / ``.set_attribute()`` / ``.context``, so call sites carry
    no tracing conditionals.
    """
    tracer = sim.tracer
    if tracer is None:
        return NULL_SPAN
    return tracer.start_span(name, parent=parent, kind=kind,
                             attributes=attributes)


def instant(sim, name, parent=None, kind="internal", attributes=None,
            status="ok"):
    """Record a zero-duration span, or no-op when untraced."""
    tracer = sim.tracer
    if tracer is None:
        return NULL_SPAN
    return tracer.instant(name, parent=parent, kind=kind,
                          attributes=attributes, status=status)
