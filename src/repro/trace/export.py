"""Trace exporters: Chrome trace-event JSON and compact JSONL.

The Chrome format (one ``"X"`` complete event per finished span, grouped
onto one named track per layer) loads directly in ``chrome://tracing``
and https://ui.perfetto.dev.  Timestamps are microseconds of *simulated*
time, so the viewer's timeline is the simulation's timeline.

The JSONL format is one span per line (the dict shape of
:func:`repro.trace.tracer.iter_span_dicts`) -- greppable, diffable, and
cheap to parse in analysis notebooks.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List

from repro.trace.tracer import Tracer, iter_span_dicts

_S_TO_US = 1e6


def _ensure_parent_dir(path: str) -> None:
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)


def _track_ids(tracer: Tracer) -> Dict[str, int]:
    """Stable kind -> tid mapping (sorted so exports are deterministic)."""
    kinds = sorted({span.kind for span in tracer.spans})
    if tracer.kernel_event_log:
        kinds.append("sim.kernel")
    return {kind: index for index, kind in enumerate(kinds)}


def chrome_trace(tracer: Tracer) -> Dict[str, Any]:
    """Build the Chrome trace-event document for every recorded span."""
    tracks = _track_ids(tracer)
    events: List[Dict[str, Any]] = []
    for kind, tid in tracks.items():
        events.append({
            "name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
            "args": {"name": kind},
        })
    now = tracer.sim.now
    for span in tracer.spans:
        end = span.end_time if span.end_time is not None else now
        args = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "status": span.status if span.finished else "open",
        }
        if span.status_detail:
            args["detail"] = span.status_detail
        args.update(span.attributes)
        duration_us = max(0.0, end - span.start) * _S_TO_US
        event = {
            "name": span.name,
            "cat": span.kind,
            "pid": 1,
            "tid": tracks[span.kind],
            "ts": span.start * _S_TO_US,
            "args": args,
        }
        if duration_us > 0:
            event["ph"] = "X"
            event["dur"] = duration_us
        else:
            event["ph"] = "i"
            event["s"] = "t"
        events.append(event)
    for time, label in tracer.kernel_event_log:
        events.append({
            "name": label, "cat": "sim.kernel", "ph": "i", "s": "t",
            "pid": 1, "tid": tracks["sim.kernel"], "ts": time * _S_TO_US,
            "args": {},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome(tracer: Tracer, path: str) -> str:
    _ensure_parent_dir(path)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(tracer), handle, indent=None,
                  separators=(",", ":"), sort_keys=True)
    return path


def write_jsonl(tracer: Tracer, path: str) -> str:
    _ensure_parent_dir(path)
    with open(path, "w", encoding="utf-8") as handle:
        for record in iter_span_dicts(tracer.spans):
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
    return path


def write_span_dicts_jsonl(records: List[Dict[str, Any]], path: str) -> str:
    """JSONL export of already-dict spans (the sharded kernel's merged,
    shard-tagged trace -- see :meth:`repro.sim.shard.ShardCoordinator.
    write_merged_trace`)."""
    _ensure_parent_dir(path)
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
    return path
