"""The Tracer: span factory, causal store, and query engine.

One :class:`Tracer` is installed per :class:`~repro.sim.kernel.Simulator`
(``Tracer(sim)`` sets ``sim.tracer``).  Instrumented layers look the
attribute up and skip all work when it is ``None``, so an untraced
simulation pays nothing beyond that check; the module-level helpers in
:mod:`repro.trace` hide even the check behind :data:`~repro.trace.span.NULL_SPAN`.

Span identifiers are consecutive integers, and timestamps come from the
simulated clock, so traces are exactly reproducible run-to-run.

Besides recording, the tracer answers the causal questions the
cross-layer experiments need:

* :meth:`find_spans` / :meth:`children_of` / :meth:`is_descendant` --
  ancestry queries ("which flows did this migration cause?");
* :meth:`overlapping` -- interval queries ("which congestion episodes
  coincided with this span?");
* :meth:`critical_path` / :meth:`latency_by_layer` -- where one root
  operation's latency went, span-by-span and layer-by-layer.
"""

from __future__ import annotations

import weakref
from collections import deque
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.trace.span import Span, SpanContext, context_of

DEFAULT_KERNEL_EVENT_CAP = 100_000

# Every live tracer, so tooling (e.g. the test-failure trace dumper in
# tests/conftest.py) can find and export traces it did not create.
_live_tracers: "weakref.WeakSet[Tracer]" = weakref.WeakSet()


def live_tracers() -> List["Tracer"]:
    """Snapshot of all tracers currently alive in the process."""
    return list(_live_tracers)


class Tracer:
    """Creates, stores, and queries spans for one simulator."""

    def __init__(self, sim, kernel_events: bool = False,
                 kernel_event_cap: int = DEFAULT_KERNEL_EVENT_CAP) -> None:
        self.sim = sim
        self.spans: List[Span] = []
        self._by_id: Dict[int, Span] = {}
        self._children: Dict[int, List[Span]] = {}
        self._open: Dict[int, Span] = {}
        self._next_trace_id = 1
        self._next_span_id = 1
        # Optional per-dispatch kernel event capture (Chrome "instant"
        # markers on a dedicated track).  Bounded so long runs cannot
        # exhaust memory.
        self.kernel_events = kernel_events
        self.kernel_event_log: "deque[Tuple[float, str]]" = deque(
            maxlen=kernel_event_cap
        )
        sim.tracer = self
        _live_tracers.add(self)

    # -- recording --------------------------------------------------------

    def start_span(
        self,
        name: str,
        parent=None,
        kind: str = "internal",
        attributes: Optional[Dict[str, Any]] = None,
    ) -> Span:
        """Open a span at the current simulated time.

        ``parent`` may be a :class:`Span`, a :class:`SpanContext`, or
        ``None`` (which starts a new trace).
        """
        context = context_of(parent)
        if context is None:
            trace_id = self._next_trace_id
            self._next_trace_id += 1
            parent_id = None
        else:
            trace_id = context.trace_id
            parent_id = context.span_id
        span = Span(
            self, trace_id, self._next_span_id, parent_id,
            name, kind, self.sim.now, attributes,
        )
        self._next_span_id += 1
        self.spans.append(span)
        self._by_id[span.span_id] = span
        if parent_id is not None:
            self._children.setdefault(parent_id, []).append(span)
        self._open[span.span_id] = span
        return span

    def instant(
        self,
        name: str,
        parent=None,
        kind: str = "internal",
        attributes: Optional[Dict[str, Any]] = None,
        status: str = "ok",
    ) -> Span:
        """A zero-duration span (a point event: a fault, a trip, a mark)."""
        span = self.start_span(name, parent=parent, kind=kind,
                               attributes=attributes)
        span.end(status=status)
        return span

    def _end_span(self, span: Span, status: str, detail: Optional[str]) -> None:
        span.end_time = self.sim.now
        span.status = status
        span.status_detail = detail
        self._open.pop(span.span_id, None)

    def on_kernel_event(self, time: float, label: str) -> None:
        """Kernel hook: one event dispatch (only called when enabled)."""
        self.kernel_event_log.append((time, label))

    # -- bookkeeping ------------------------------------------------------

    def span(self, span_id: int) -> Span:
        return self._by_id[span_id]

    def open_spans(self) -> List[Span]:
        return sorted(self._open.values(), key=lambda s: s.span_id)

    def active_trace_id(self) -> Optional[int]:
        """Trace id of the most recently started still-open span.

        The budget/watchdog subsystem stamps this into its diagnostic
        snapshots so a tripped run can be correlated with the trace that
        was in flight when it tripped.
        """
        if not self._open:
            return None
        newest = max(self._open.values(), key=lambda s: s.span_id)
        return newest.trace_id

    def finish_open_spans(self, status: str = "ok",
                          detail: Optional[str] = "open at export") -> None:
        """Close every open span at the current clock (pre-export hygiene)."""
        for span in list(self._open.values()):
            span.end(status=status, detail=detail)

    # -- queries ----------------------------------------------------------

    def find_spans(
        self,
        name: Optional[str] = None,
        kind: Optional[str] = None,
        trace_id: Optional[int] = None,
        name_prefix: Optional[str] = None,
        predicate: Optional[Callable[[Span], bool]] = None,
    ) -> List[Span]:
        """All spans matching every given filter, in creation order."""
        out = []
        for span in self.spans:
            if name is not None and span.name != name:
                continue
            if name_prefix is not None and not span.name.startswith(name_prefix):
                continue
            if kind is not None and span.kind != kind:
                continue
            if trace_id is not None and span.trace_id != trace_id:
                continue
            if predicate is not None and not predicate(span):
                continue
            out.append(span)
        return out

    def children_of(self, span, recursive: bool = False) -> List[Span]:
        """Direct (or, with ``recursive``, all transitive) child spans."""
        context = context_of(span)
        if context is None:
            return []
        direct = list(self._children.get(context.span_id, []))
        if not recursive:
            return direct
        out: List[Span] = []
        stack = direct
        while stack:
            child = stack.pop(0)
            out.append(child)
            stack.extend(self._children.get(child.span_id, []))
        return out

    def is_descendant(self, span: Span, ancestor) -> bool:
        """True if ``span`` sits (transitively) under ``ancestor``."""
        context = context_of(ancestor)
        if context is None:
            return False
        parent_id = span.parent_id
        while parent_id is not None:
            if parent_id == context.span_id:
                return True
            parent = self._by_id.get(parent_id)
            if parent is None:
                return False
            parent_id = parent.parent_id
        return False

    def _interval(self, span: Span) -> Tuple[float, float]:
        end = span.end_time if span.end_time is not None else self.sim.now
        return span.start, max(end, span.start)

    def overlapping(
        self,
        span,
        kind: Optional[str] = None,
        name: Optional[str] = None,
        name_prefix: Optional[str] = None,
    ) -> List[Span]:
        """Spans whose simulated-time interval intersects ``span``'s.

        ``span`` may be a Span or a ``(start, end)`` tuple.  Intervals are
        closed, so a zero-duration instant at a span's boundary counts.
        The queried span itself is excluded.
        """
        if isinstance(span, tuple):
            start, end = span
            self_id = None
        else:
            start, end = self._interval(span)
            self_id = span.span_id
        out = []
        for candidate in self.find_spans(kind=kind, name=name,
                                         name_prefix=name_prefix):
            if candidate.span_id == self_id:
                continue
            c_start, c_end = self._interval(candidate)
            if c_start <= end and start <= c_end:
                out.append(candidate)
        return out

    # -- analysis ---------------------------------------------------------

    def critical_path(self, root) -> List[Span]:
        """The chain of spans that determined ``root``'s finish time.

        Starting at ``root``, repeatedly descend into the child that
        finished last; the result is the path a latency optimiser should
        attack first.  Open spans are treated as ending now.
        """
        context = context_of(root)
        if context is None:
            return []
        current = self._by_id[context.span_id]
        path = [current]
        while True:
            children = self._children.get(current.span_id, [])
            if not children:
                return path
            current = max(children, key=lambda s: (self._interval(s)[1], s.span_id))
            path.append(current)

    def latency_by_layer(self, root) -> Dict[str, float]:
        """Self-time per layer (span ``kind``) across ``root``'s subtree.

        A span's self-time is its duration minus the union of its
        children's intervals (clipped to the span), so layers that merely
        wait on deeper layers are not double-counted.  The dict sums to
        roughly the root's duration (exactly, when children nest cleanly).
        """
        context = context_of(root)
        if context is None:
            return {}
        root_span = self._by_id[context.span_id]
        totals: Dict[str, float] = {}
        for span in [root_span] + self.children_of(root_span, recursive=True):
            start, end = self._interval(span)
            covered = 0.0
            intervals = []
            for child in self._children.get(span.span_id, []):
                c_start, c_end = self._interval(child)
                c_start, c_end = max(c_start, start), min(c_end, end)
                if c_end > c_start:
                    intervals.append((c_start, c_end))
            intervals.sort()
            cursor = start
            for c_start, c_end in intervals:
                if c_end <= cursor:
                    continue
                covered += c_end - max(c_start, cursor)
                cursor = max(cursor, c_end)
            self_time = max(0.0, (end - start) - covered)
            totals[span.kind] = totals.get(span.kind, 0.0) + self_time
        return totals

    # -- export (thin wrappers; see repro.trace.export) -------------------

    def chrome_trace(self) -> dict:
        from repro.trace.export import chrome_trace
        return chrome_trace(self)

    def write_chrome(self, path: str) -> str:
        from repro.trace.export import write_chrome
        return write_chrome(self, path)

    def write_jsonl(self, path: str) -> str:
        from repro.trace.export import write_jsonl
        return write_jsonl(self, path)

    def write(self, path: str) -> str:
        """Export by extension: ``.jsonl`` -> JSONL, else Chrome JSON."""
        if str(path).endswith(".jsonl"):
            return self.write_jsonl(path)
        return self.write_chrome(path)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Tracer spans={len(self.spans)} open={len(self._open)} "
            f"traces={self._next_trace_id - 1}>"
        )


def iter_span_dicts(spans: Iterable[Span]) -> Iterable[Dict[str, Any]]:
    """Plain-dict view of spans (the JSONL record shape)."""
    for span in spans:
        yield {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "name": span.name,
            "kind": span.kind,
            "start": span.start,
            "end": span.end_time,
            "status": span.status,
            "detail": span.status_detail,
            "attributes": span.attributes,
        }
