"""PiCloud: a discrete-event scale model of the Glasgow Raspberry Pi Cloud.

This library reproduces the system described in *"The Glasgow Raspberry Pi
Cloud: A Scale Model for Cloud Computing Infrastructures"* (Tso, White,
Jouet, Singer, Pezaros -- CCRM workshop at ICDCS, 2013) as a fully
simulated testbed: 56 Raspberry Pi nodes in 4 racks, a multi-root tree /
fat-tree network with OpenFlow SDN, LXC-style containers, a ``pimaster``
management plane (REST, DHCP, DNS, images, monitoring), cloud workloads
(HTTP, key-value store, MapReduce), placement/consolidation/migration
algorithms and power/cost instrumentation.

Quickstart::

    from repro import PiCloud, PiCloudConfig

    cloud = PiCloud(PiCloudConfig())      # the paper's 4 racks x 14 Pis
    cloud.boot()
    vm = cloud.pimaster.spawn_container(image="webserver")
    cloud.run_for(60.0)
    print(cloud.dashboard().render())

See ``DESIGN.md`` for the full system inventory and ``EXPERIMENTS.md`` for
the paper-vs-measured record of every table and figure.
"""

__version__ = "1.0.0"

__all__ = ["PiCloud", "PiCloudConfig", "__version__"]


def __getattr__(name: str):
    # Lazy re-exports keep ``import repro`` cheap and avoid importing the
    # whole stack when callers only need one substrate package.
    if name == "PiCloud":
        from repro.core.cloud import PiCloud

        return PiCloud
    if name == "PiCloudConfig":
        from repro.core.config import PiCloudConfig

        return PiCloudConfig
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
