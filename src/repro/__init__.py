"""PiCloud: a discrete-event scale model of the Glasgow Raspberry Pi Cloud.

This library reproduces the system described in *"The Glasgow Raspberry Pi
Cloud: A Scale Model for Cloud Computing Infrastructures"* (Tso, White,
Jouet, Singer, Pezaros -- CCRM workshop at ICDCS, 2013) as a fully
simulated testbed: 56 Raspberry Pi nodes in 4 racks, a multi-root tree /
fat-tree network with OpenFlow SDN, LXC-style containers, a ``pimaster``
management plane (REST, DHCP, DNS, images, monitoring), cloud workloads
(HTTP, key-value store, MapReduce), placement/consolidation/migration
algorithms and power/cost instrumentation.

This module is the stable public facade (see ``docs/api.md``): everything
in ``__all__`` is importable directly from ``repro`` and covered by the
compatibility policy.  Submodule paths (``repro.netsim...``) are internal
and may move between minor releases.

Quickstart::

    from repro import PiCloud, PiCloudConfig

    cloud = PiCloud(PiCloudConfig())      # the paper's 4 racks x 14 Pis
    cloud.boot()
    vm = cloud.pimaster.spawn_container(image="webserver")
    cloud.run_for(60.0)
    print(cloud.dashboard().render())

See ``DESIGN.md`` for the full system inventory and ``EXPERIMENTS.md`` for
the paper-vs-measured record of every table and figure.
"""

__version__ = "1.0.0"

# Lazy re-exports keep ``import repro`` cheap and avoid importing the
# whole stack when callers only need one substrate package.
_FACADE = {
    # Core entry points.
    "PiCloud": "repro.core.cloud",
    "PiCloudConfig": "repro.core.config",
    "SimBudgetConfig": "repro.core.config",
    "HealthConfig": "repro.core.config",
    "TraceConfig": "repro.core.config",
    "LoadConfig": "repro.core.config",
    "RateModelConfig": "repro.core.config",
    "ShardConfig": "repro.core.config",
    # Sharded parallel kernel (per-pod conservative time sync).
    "ShardCoordinator": "repro.sim.shard",
    "ShardProgram": "repro.sim.shard",
    # Session-level load + SLO accounting (repro.load).
    "LoadEngine": "repro.load",
    "LoadReport": "repro.load",
    "Service": "repro.load",
    "ServiceProfile": "repro.load",
    "SloObjective": "repro.load",
    "SloTracker": "repro.load",
    "ArrivalProcess": "repro.load",
    "PoissonArrivals": "repro.load",
    "DiurnalArrivals": "repro.load",
    "FlashCrowdArrivals": "repro.load",
    "RegionalMixture": "repro.load",
    "LatencyHistogram": "repro.telemetry.stats",
    # Fault injection and tracing.
    "FaultSchedule": "repro.faults",
    "FaultEvent": "repro.faults",
    "MtbfFaultInjector": "repro.faults",
    "Tracer": "repro.trace.tracer",
    # Experiment campaigns (grid sweeps, result stores, dashboards).
    "CampaignSpec": "repro.campaign",
    "CampaignRunner": "repro.campaign",
    "CampaignResult": "repro.campaign",
    "ResultStore": "repro.campaign",
    "RunRecord": "repro.campaign",
    "run_campaign": "repro.campaign",
    "render_dashboard": "repro.campaign",
    # Error hierarchy.
    "PiCloudError": "repro.errors",
    "ConfigurationError": "repro.errors",
    "SimulationError": "repro.errors",
    "SimBudgetExceeded": "repro.errors",
    "DeadlineExceeded": "repro.errors",
    "HardwareError": "repro.errors",
    "OutOfMemoryError": "repro.errors",
    "StorageFullError": "repro.errors",
    "PowerStateError": "repro.errors",
    "NetworkError": "repro.errors",
    "NoRouteError": "repro.errors",
    "AddressError": "repro.errors",
    "RateModelError": "repro.errors",
    "VirtualisationError": "repro.errors",
    "ContainerStateError": "repro.errors",
    "ImageError": "repro.errors",
    "MigrationError": "repro.errors",
    "ManagementError": "repro.errors",
    "RestError": "repro.errors",
    "CircuitOpenError": "repro.errors",
    "LeaseError": "repro.errors",
    "UnknownNodeError": "repro.errors",
    "FaultError": "repro.errors",
    "FaultTargetError": "repro.errors",
    "FaultStateError": "repro.errors",
    "CampaignError": "repro.errors",
    "PlacementError": "repro.errors",
    "SchedulingError": "repro.errors",
    "LoadError": "repro.errors",
}

__all__ = ["__version__", *_FACADE]


def __getattr__(name: str):
    module_name = _FACADE.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache so __getattr__ runs once per name
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
