"""Periodic samplers and a per-experiment metrics registry."""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.sim.kernel import Simulator
from repro.sim.process import Timeout
from repro.telemetry.series import Counter, Gauge, TimeSeries


class PeriodicSampler:
    """A background process sampling ``fn()`` every ``interval`` seconds.

    This is the model of the pimaster's monitoring poller: the dashboard's
    CPU-load graphs (paper Fig. 4) are fed by samplers like this one.
    """

    def __init__(
        self,
        sim: Simulator,
        fn: Callable[[], float],
        interval: float,
        name: str = "",
        duration: Optional[float] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("sampler interval must be positive")
        self.sim = sim
        self.fn = fn
        self.interval = interval
        self.series = TimeSeries(name)
        self._duration = duration
        self._stopped = False
        self._process = sim.process(self._run(), name=f"sampler:{name}")

    def _run(self):
        deadline = None if self._duration is None else self.sim.now + self._duration
        while not self._stopped:
            self.series.record(self.sim.now, float(self.fn()))
            if deadline is not None and self.sim.now + self.interval > deadline:
                return
            yield Timeout(self.sim, self.interval)

    def stop(self) -> None:
        self._stopped = True
        self._process.interrupt("sampler stopped")


class MetricsRegistry:
    """A namespace of gauges, counters and series for one component.

    Components create their metrics through the registry so experiments can
    enumerate everything that was measured::

        metrics = MetricsRegistry(sim, prefix="node1")
        util = metrics.gauge("cpu.util")
        reqs = metrics.counter("http.requests")
    """

    def __init__(self, sim: Simulator, prefix: str = "") -> None:
        self.sim = sim
        self.prefix = prefix
        self._gauges: Dict[str, Gauge] = {}
        self._counters: Dict[str, Counter] = {}
        self._series: Dict[str, TimeSeries] = {}

    def _qualify(self, name: str) -> str:
        return f"{self.prefix}.{name}" if self.prefix else name

    def gauge(self, name: str, initial: float = 0.0) -> Gauge:
        if name not in self._gauges:
            self._gauges[name] = Gauge(self.sim, self._qualify(name), initial)
        return self._gauges[name]

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(self.sim, self._qualify(name))
        return self._counters[name]

    def series(self, name: str) -> TimeSeries:
        if name not in self._series:
            self._series[name] = TimeSeries(self._qualify(name))
        return self._series[name]

    def names(self) -> list[str]:
        return sorted(
            list(self._gauges) + list(self._counters) + list(self._series)
        )

    def snapshot(self) -> dict[str, float]:
        """Current value of every gauge and counter (series excluded)."""
        snap: dict[str, float] = {}
        for name, gauge in self._gauges.items():
            snap[name] = gauge.value
        for name, counter in self._counters.items():
            snap[name] = counter.total
        return snap
