"""Time-series primitives: event series, step-function gauges, counters."""

from __future__ import annotations

from typing import Iterable, Optional

from repro.sim.kernel import Simulator


class TimeSeries:
    """An append-only series of ``(time, value)`` observations.

    Used for *event* samples (request latencies, flow completion times)
    where each point is an independent measurement.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def record(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"series {self.name!r}: time went backwards "
                f"({time} < {self.times[-1]})"
            )
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterable[tuple[float, float]]:
        return iter(zip(self.times, self.values))

    @property
    def last(self) -> Optional[float]:
        return self.values[-1] if self.values else None

    def window(self, start: float, end: float) -> "TimeSeries":
        """Sub-series with ``start <= t < end`` (linear scan; fine for reports)."""
        out = TimeSeries(self.name)
        for t, v in zip(self.times, self.values):
            if start <= t < end:
                out.record(t, v)
        return out


class Gauge:
    """A step-function gauge: holds its value until the next ``set``.

    Supports exact time-weighted integration, which is what power meters
    and utilisation accounting need (no sampling error)::

        gauge.set(now, watts)
        ...
        joules = gauge.integral(t0, t1)
    """

    def __init__(self, sim: Simulator, name: str = "", initial: float = 0.0) -> None:
        self.sim = sim
        self.name = name
        self.times: list[float] = [sim.now]
        self.values: list[float] = [initial]

    @property
    def value(self) -> float:
        return self.values[-1]

    def set(self, value: float) -> None:
        """Record a new level at the current simulated time."""
        now = self.sim.now
        if now == self.times[-1]:
            self.values[-1] = value
        else:
            self.times.append(now)
            self.values.append(value)

    def add(self, delta: float) -> None:
        self.set(self.values[-1] + delta)

    def integral(self, start: Optional[float] = None, end: Optional[float] = None) -> float:
        """Exact integral of the step function over ``[start, end]``.

        Defaults to the full recorded span up to the current clock.
        """
        if start is None:
            start = self.times[0]
        if end is None:
            end = self.sim.now
        if end < start:
            raise ValueError(f"gauge {self.name!r}: end {end} before start {start}")
        total = 0.0
        for i, (t, v) in enumerate(zip(self.times, self.values)):
            seg_start = max(t, start)
            seg_end = self.times[i + 1] if i + 1 < len(self.times) else end
            seg_end = min(seg_end, end)
            if seg_end > seg_start:
                total += v * (seg_end - seg_start)
        return total

    def time_weighted_mean(
        self, start: Optional[float] = None, end: Optional[float] = None
    ) -> float:
        if start is None:
            start = self.times[0]
        if end is None:
            end = self.sim.now
        span = end - start
        if span <= 0:
            return self.value
        return self.integral(start, end) / span

    def maximum(self) -> float:
        return max(self.values)


class Counter:
    """A monotonically increasing counter (bytes sent, requests served)."""

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self.sim = sim
        self.name = name
        self.total = 0.0
        self._created_at = sim.now

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: negative increment {amount}")
        self.total += amount

    def rate(self) -> float:
        """Average rate per second since creation."""
        elapsed = self.sim.now - self._created_at
        return self.total / elapsed if elapsed > 0 else 0.0
