"""Telemetry: time series, summary statistics and periodic samplers.

Every layer of the PiCloud records what it does -- CPU utilisation, link
throughput, request latency, power draw -- into these primitives so that
experiments and the management dashboard read from one consistent source.
"""

from repro.telemetry.budget import BudgetTelemetry
from repro.telemetry.monitor import MetricsRegistry, PeriodicSampler
from repro.telemetry.series import Counter, Gauge, TimeSeries
from repro.telemetry.stats import Summary, summarize

__all__ = [
    "BudgetTelemetry",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "PeriodicSampler",
    "Summary",
    "TimeSeries",
    "summarize",
]
