"""Telemetry for the kernel's run-budget / watchdog subsystem.

:class:`BudgetTelemetry` mirrors the simulator's budget accounting into
the standard :class:`~repro.telemetry.series.Counter` /
:class:`~repro.telemetry.series.Gauge` primitives so dashboards and
experiment reports can read budget pressure from the same place as every
other metric::

    telemetry = BudgetTelemetry(sim)
    ...
    sim.run()                    # trips are counted via a budget hook
    telemetry.sample()           # sync the events-executed counter
    print(telemetry.report())
"""

from __future__ import annotations

from typing import Optional

from repro.sim.budget import BudgetSnapshot, RunBudget
from repro.sim.kernel import Simulator
from repro.telemetry.series import Counter, Gauge


class BudgetTelemetry:
    """Counters and gauges over one simulator's budget consumption."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.events_executed = Counter(sim, "sim.events.executed")
        self.budget_trips = Counter(sim, "sim.budget.trips")
        self.watchdog_trips = Counter(sim, "sim.watchdog.trips")
        # Fraction of the event budget consumed (0..1; stays 0 unbudgeted).
        self.event_budget_consumed = Gauge(sim, "sim.budget.events_consumed")
        self.last_snapshot: Optional[BudgetSnapshot] = None
        sim.budget_hooks.append(self._on_trip)

    def _on_trip(self, snapshot: BudgetSnapshot) -> None:
        self.last_snapshot = snapshot
        self.budget_trips.add()
        if snapshot.reason == "wall_clock":
            self.watchdog_trips.add()
        self.sample()

    def sample(self) -> None:
        """Sync cumulative counters with the simulator's own accounting."""
        delta = self.sim.events_executed - self.events_executed.total
        if delta > 0:
            self.events_executed.add(delta)
        budget = self.sim.budget
        if budget is not None and budget.max_events:
            self.event_budget_consumed.set(
                min(1.0, self.sim.events_executed / budget.max_events)
            )

    @property
    def last_trip_trace_id(self) -> Optional[int]:
        """Trace id in flight when the last budget trip happened (or None)."""
        if self.last_snapshot is None:
            return None
        return self.last_snapshot.trace_id

    def report(self) -> dict[str, float]:
        """Plain-dict summary row (experiment tabulation friendly)."""
        self.sample()
        budget: Optional[RunBudget] = self.sim.budget
        return {
            "events_executed": self.events_executed.total,
            "event_budget": float(budget.max_events) if budget and budget.max_events else 0.0,
            "event_budget_consumed": self.event_budget_consumed.value,
            "budget_trips": self.budget_trips.total,
            "watchdog_trips": self.watchdog_trips.total,
        }
