"""Summary statistics for experiment reporting.

Two ways to a :class:`Summary`:

* :func:`summarize` -- exact percentiles over a materialised sample
  list (fine up to ~1e6 values).
* :class:`LatencyHistogram` -- a mergeable streaming histogram with
  log-spaced buckets and weighted counts, for the session-level load
  engine where one epoch can stand for millions of requests and
  materialising a sample list would dwarf the simulation itself.
  Quantiles come from log-linear interpolation inside the matching
  bucket, so relative error is bounded by the bucket width
  (``10**(1/buckets_per_decade)``, ~12% at the default 20/decade).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Five-number-plus summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    p50: float
    p95: float
    p99: float
    p999: float
    maximum: float

    def row(self) -> dict[str, float]:
        """As a flat dict, for table printers."""
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "p999": self.p999,
            "max": self.maximum,
        }


EMPTY_SUMMARY = Summary(0, float("nan"), float("nan"), float("nan"),
                        float("nan"), float("nan"), float("nan"),
                        float("nan"), float("nan"))


def summarize(values: Iterable[float]) -> Summary:
    """Compute a :class:`Summary`; empty input yields NaN fields, count 0."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        return EMPTY_SUMMARY
    return Summary(
        count=int(data.size),
        mean=float(data.mean()),
        std=float(data.std()),
        minimum=float(data.min()),
        p50=float(np.percentile(data, 50)),
        p95=float(np.percentile(data, 95)),
        p99=float(np.percentile(data, 99)),
        p999=float(np.percentile(data, 99.9)),
        maximum=float(data.max()),
    )


class LatencyHistogram:
    """Streaming log-bucketed histogram with weighted (fluid) counts.

    Buckets are log-spaced between ``min_value`` and ``max_value`` with
    ``buckets_per_decade`` buckets per power of ten, plus an underflow
    and an overflow bucket, so recording never fails: values below the
    floor land in underflow (reported at the floor), values at or above
    the ceiling -- including ``inf`` for timed-out/shed requests --
    land in overflow (reported at the ceiling).

    ``count`` may be fractional: the fluid load engine records one
    latency per (aggregate, epoch) weighted by the number of requests
    it stands for, so a million users per epoch is one bucket
    increment.  Exact running sum/min/max/sum-of-squares are kept
    alongside, so :meth:`summary` reports exact mean/std/extrema with
    bucket-resolution percentiles.

    Two histograms with identical bucket layouts :meth:`merge`
    associatively and commutatively -- the per-service rollup, the
    fleet rollup, and cross-process campaign reductions all use this.
    """

    __slots__ = ("min_value", "max_value", "buckets_per_decade", "_log_min",
                 "_scale", "_counts", "total", "_sum", "_sum_sq",
                 "_min_seen", "_max_seen")

    def __init__(
        self,
        min_value: float = 1e-4,
        max_value: float = 100.0,
        buckets_per_decade: int = 20,
    ) -> None:
        if min_value <= 0 or max_value <= min_value:
            raise ValueError(
                f"need 0 < min_value < max_value, got [{min_value}, {max_value}]"
            )
        if buckets_per_decade < 1:
            raise ValueError(
                f"buckets_per_decade must be >= 1, got {buckets_per_decade}"
            )
        self.min_value = float(min_value)
        self.max_value = float(max_value)
        self.buckets_per_decade = int(buckets_per_decade)
        self._log_min = math.log10(self.min_value)
        self._scale = float(buckets_per_decade)
        span = math.log10(self.max_value) - self._log_min
        # [0] underflow, [1..n] log buckets, [n+1] overflow.
        n = max(1, math.ceil(span * self._scale - 1e-9))
        self._counts = [0.0] * (n + 2)
        self.total = 0.0
        self._sum = 0.0
        self._sum_sq = 0.0
        self._min_seen = math.inf
        self._max_seen = -math.inf

    @property
    def bucket_count(self) -> int:
        """Number of log buckets (excluding underflow/overflow)."""
        return len(self._counts) - 2

    def layout(self) -> tuple[float, float, int]:
        """The merge-compatibility key."""
        return (self.min_value, self.max_value, self.buckets_per_decade)

    def _edge(self, index: int) -> float:
        """Lower value edge of log bucket ``index`` (1-based)."""
        return 10.0 ** (self._log_min + (index - 1) / self._scale)

    def record(self, value: float, count: float = 1.0) -> None:
        """Add ``count`` observations of ``value`` (fractions allowed)."""
        if count <= 0:
            return
        value = float(value)
        if math.isnan(value):
            raise ValueError("cannot record NaN")
        if value < self.min_value:
            index = 0
        elif value >= self.max_value:
            index = len(self._counts) - 1
        else:
            index = 1 + int((math.log10(value) - self._log_min) * self._scale)
            index = min(max(index, 1), len(self._counts) - 2)
        self._counts[index] += count
        self.total += count
        # Exact moments: overflow (inf) observations are clamped to the
        # ceiling so the mean stays finite and conservative.
        clamped = min(max(value, self.min_value), self.max_value)
        self._sum += clamped * count
        self._sum_sq += clamped * clamped * count
        self._min_seen = min(self._min_seen, clamped)
        self._max_seen = max(self._max_seen, clamped)

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold ``other`` into this histogram in place; returns self."""
        if self.layout() != other.layout():
            raise ValueError(
                f"cannot merge histograms with layouts {self.layout()} "
                f"and {other.layout()}"
            )
        for i, count in enumerate(other._counts):
            self._counts[i] += count
        self.total += other.total
        self._sum += other._sum
        self._sum_sq += other._sum_sq
        self._min_seen = min(self._min_seen, other._min_seen)
        self._max_seen = max(self._max_seen, other._max_seen)
        return self

    def copy(self) -> "LatencyHistogram":
        clone = LatencyHistogram(*self.layout())
        clone.merge(self)
        return clone

    def quantile(self, q: float) -> float:
        """The value at quantile ``q`` in [0, 1]; NaN when empty.

        Log-linear interpolation inside the matching bucket, clamped to
        the exact observed extrema so ``quantile(0)``/``quantile(1)``
        are sharp.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be within [0, 1], got {q}")
        if self.total <= 0:
            return float("nan")
        target = q * self.total
        cumulative = 0.0
        for index, count in enumerate(self._counts):
            if count <= 0:
                continue
            if cumulative + count >= target - 1e-12:
                if index == 0:
                    value = self.min_value
                elif index == len(self._counts) - 1:
                    value = self.max_value
                else:
                    lo, hi = self._edge(index), self._edge(index + 1)
                    fraction = (target - cumulative) / count
                    fraction = min(max(fraction, 0.0), 1.0)
                    value = 10.0 ** (
                        math.log10(lo)
                        + fraction * (math.log10(hi) - math.log10(lo))
                    )
                return float(min(max(value, self._min_seen), self._max_seen))
            cumulative += count
        return float(self._max_seen)

    def mean(self) -> float:
        return self._sum / self.total if self.total > 0 else float("nan")

    def summary(self) -> Summary:
        """A :class:`Summary` from the stream (percentiles bucket-grade)."""
        if self.total <= 0:
            return EMPTY_SUMMARY
        mean = self.mean()
        variance = max(0.0, self._sum_sq / self.total - mean * mean)
        return Summary(
            count=int(round(self.total)),
            mean=mean,
            std=math.sqrt(variance),
            minimum=self._min_seen,
            p50=self.quantile(0.50),
            p95=self.quantile(0.95),
            p99=self.quantile(0.99),
            p999=self.quantile(0.999),
            maximum=self._max_seen,
        )

    def to_dict(self) -> dict[str, object]:
        """JSON-safe state (campaign artifact / cross-process handoff)."""
        return {
            "min_value": self.min_value,
            "max_value": self.max_value,
            "buckets_per_decade": self.buckets_per_decade,
            "counts": list(self._counts),
            "total": self.total,
            "sum": self._sum,
            "sum_sq": self._sum_sq,
            "min_seen": None if math.isinf(self._min_seen) else self._min_seen,
            "max_seen": None if math.isinf(self._max_seen) else self._max_seen,
        }

    @classmethod
    def from_dict(cls, state: dict) -> "LatencyHistogram":
        histogram = cls(
            min_value=state["min_value"],
            max_value=state["max_value"],
            buckets_per_decade=state["buckets_per_decade"],
        )
        counts: List[float] = [float(c) for c in state["counts"]]
        if len(counts) != len(histogram._counts):
            raise ValueError("bucket count mismatch in serialized histogram")
        histogram._counts = counts
        total = state.get("total")
        histogram.total = float(sum(counts) if total is None else total)
        histogram._sum = float(state["sum"])
        histogram._sum_sq = float(state["sum_sq"])
        min_seen: Optional[float] = state.get("min_seen")
        max_seen: Optional[float] = state.get("max_seen")
        histogram._min_seen = math.inf if min_seen is None else float(min_seen)
        histogram._max_seen = -math.inf if max_seen is None else float(max_seen)
        return histogram

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<LatencyHistogram n={self.total:.0f} "
            f"[{self.min_value}, {self.max_value}] "
            f"x{self.buckets_per_decade}/decade>"
        )


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned plain-text table (used by benches and the dashboard)."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
