"""Summary statistics for experiment reporting."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Five-number-plus summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    p50: float
    p95: float
    p99: float
    maximum: float

    def row(self) -> dict[str, float]:
        """As a flat dict, for table printers."""
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.maximum,
        }


EMPTY_SUMMARY = Summary(0, float("nan"), float("nan"), float("nan"),
                        float("nan"), float("nan"), float("nan"), float("nan"))


def summarize(values: Iterable[float]) -> Summary:
    """Compute a :class:`Summary`; empty input yields NaN fields, count 0."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        return EMPTY_SUMMARY
    return Summary(
        count=int(data.size),
        mean=float(data.mean()),
        std=float(data.std()),
        minimum=float(data.min()),
        p50=float(np.percentile(data, 50)),
        p95=float(np.percentile(data, 95)),
        p99=float(np.percentile(data, 99)),
        maximum=float(data.max()),
    )


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned plain-text table (used by benches and the dashboard)."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
