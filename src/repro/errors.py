"""Exception hierarchy for the PiCloud model.

All library-raised exceptions derive from :class:`PiCloudError` so callers
can catch the whole family with one clause while still discriminating on
the specific failure (out of memory, no route, placement failure, ...).
"""

from __future__ import annotations


class PiCloudError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(PiCloudError, ValueError):
    """An invalid configuration or parameter value.

    Also a ``ValueError``: call sites that historically raised bare
    ``ValueError`` (solver inputs, service intervals, autoscaler bounds)
    now raise this, and code catching ``ValueError`` keeps working.
    """


class SimulationError(PiCloudError):
    """Misuse of the discrete-event kernel (e.g. scheduling in the past)."""


class SimBudgetExceeded(SimulationError):
    """A simulation run blew through its run budget (events / sim time / wall clock).

    ``snapshot`` is a :class:`repro.sim.budget.BudgetSnapshot` with the
    diagnostic state at the moment the budget tripped: pending events,
    runnable processes, and the tail of recently executed events -- enough
    to find the component that stopped making progress.
    """

    def __init__(self, message: str, snapshot=None) -> None:
        super().__init__(message)
        self.snapshot = snapshot


class DeadlineExceeded(PiCloudError):
    """A guarded operation (container start/stop/migrate, REST call,
    experiment phase) did not complete within its deadline.

    ``trace_id`` links the failure to its causal trace when tracing is
    on (also surfaced in node-daemon 504 response bodies).
    """

    def __init__(self, message: str, deadline_s: float = 0.0,
                 attempts: int = 1, trace_id=None) -> None:
        super().__init__(message)
        self.deadline_s = deadline_s
        self.attempts = attempts
        self.trace_id = trace_id


class HardwareError(PiCloudError):
    """Base class for hardware-model failures."""


class OutOfMemoryError(HardwareError):
    """A memory allocation exceeded the machine's (or cgroup's) capacity."""


class StorageFullError(HardwareError):
    """A write exceeded the SD card / disk capacity."""


class PowerStateError(HardwareError):
    """Operation attempted on a machine in the wrong power state."""


class NetworkError(PiCloudError):
    """Base class for network-substrate failures."""


class NoRouteError(NetworkError):
    """No path exists between two endpoints in the current topology."""


class AddressError(NetworkError):
    """Address pool exhaustion, duplicate assignment, or parse failure."""


class ConnectionRefusedError(NetworkError):
    """No socket is listening on the destination (host, port)."""


class ConnectionResetError(NetworkError):
    """The peer closed or the host failed mid-transfer."""


class RateModelError(NetworkError, ValueError):
    """Invalid congestion-control rate-model parameters or misuse.

    Raised by :mod:`repro.netsim.cc` for unknown protocols, out-of-range
    window/queue knobs, or attaching a rate model to two fabrics.  Also a
    ``ValueError`` so parameter-validation call sites that historically
    caught ``ValueError`` keep working.
    """


class VirtualisationError(PiCloudError):
    """Base class for container / LXC layer failures."""


class ContainerStateError(VirtualisationError):
    """Lifecycle operation invalid for the container's current state."""


class ImageError(VirtualisationError):
    """Missing, corrupt, or oversized container image."""


class MigrationError(VirtualisationError):
    """Live migration could not complete (e.g. dirty rate exceeds bandwidth)."""


class ManagementError(PiCloudError):
    """Base class for management-plane failures."""


class RestError(ManagementError):
    """A REST call returned a non-success status.

    ``extra`` is merged into the error response body by the REST server,
    carrying structured fields (e.g. the ``trace_id`` of a timed-out
    operation) back to the caller.
    """

    def __init__(self, status: int, message: str = "", extra: dict = None) -> None:
        super().__init__(f"HTTP {status}: {message}" if message else f"HTTP {status}")
        self.status = status
        self.message = message
        self.extra = dict(extra) if extra else {}


class CircuitOpenError(ManagementError):
    """A management call was rejected fast because the target node's
    circuit breaker is open (too many consecutive transport failures).

    Carries ``node_id`` so callers can tell which breaker tripped.
    """

    def __init__(self, message: str, node_id: str = "") -> None:
        super().__init__(message)
        self.node_id = node_id


class LeaseError(ManagementError):
    """DHCP pool exhausted or lease conflict."""


class NameError_(ManagementError):
    """DNS name not found or already registered."""


class UnknownNodeError(ManagementError, KeyError):
    """A management-plane lookup named a node the pimaster does not know.

    Also a ``KeyError`` for backward compatibility with the registry's
    original mapping semantics.
    """


class FaultError(PiCloudError):
    """Base class for fault-injection misuse."""


class FaultTargetError(FaultError, ValueError):
    """A fault schedule names an unknown node or link (also ``ValueError``)."""


class FaultStateError(FaultError, RuntimeError):
    """Fault machinery used out of order, e.g. arming a schedule twice
    (also ``RuntimeError``)."""


class CampaignError(PiCloudError):
    """Experiment-campaign misuse: a malformed spec, an unknown scenario,
    an empty parameter grid, or a result store that cannot be read."""


class PlacementError(PiCloudError):
    """No node can satisfy a placement request under the active policy."""


class SchedulingError(PiCloudError):
    """Host CPU scheduler misuse (unknown task, negative work, ...)."""


class LoadError(PiCloudError):
    """The session-level load engine was misconfigured or could not run
    (no resolvable replicas for a service, unknown region map, ...)."""
