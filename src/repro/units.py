"""Unit conventions and conversion helpers shared across the PiCloud model.

The whole library uses a single, explicit set of base units:

* time        -- seconds on the simulated clock (``float``)
* data size   -- bytes (``int`` where exactness matters, ``float`` in rates)
* bandwidth   -- bytes per second
* CPU work    -- abstract "cycles"; a machine's CPU executes cycles/second
* power       -- watts
* money       -- US dollars

Helpers below convert from the units people actually write (MiB, Mbit/s,
milliseconds) into the base units, so call sites stay readable:
``mbit_per_s(100)`` instead of ``100 * 1e6 / 8``.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Data sizes (base unit: bytes)
# ---------------------------------------------------------------------------

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

KB = 1000
MB = 1000 * KB
GB = 1000 * MB


def kib(n: float) -> int:
    """Kibibytes to bytes."""
    return int(n * KIB)


def mib(n: float) -> int:
    """Mebibytes to bytes."""
    return int(n * MIB)


def gib(n: float) -> int:
    """Gibibytes to bytes."""
    return int(n * GIB)


# ---------------------------------------------------------------------------
# Bandwidth (base unit: bytes per second)
# ---------------------------------------------------------------------------


def bit_per_s(n: float) -> float:
    """Bits per second to bytes per second."""
    return n / 8.0


def kbit_per_s(n: float) -> float:
    """Kilobits per second to bytes per second."""
    return n * 1e3 / 8.0


def mbit_per_s(n: float) -> float:
    """Megabits per second to bytes per second."""
    return n * 1e6 / 8.0


def gbit_per_s(n: float) -> float:
    """Gigabits per second to bytes per second."""
    return n * 1e9 / 8.0


def to_mbit_per_s(bytes_per_s: float) -> float:
    """Bytes per second to megabits per second (for reporting)."""
    return bytes_per_s * 8.0 / 1e6


# ---------------------------------------------------------------------------
# Time (base unit: seconds)
# ---------------------------------------------------------------------------

US = 1e-6
MS = 1e-3
SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
DAY = 24 * HOUR
YEAR = 365 * DAY


def usec(n: float) -> float:
    """Microseconds to seconds."""
    return n * US


def msec(n: float) -> float:
    """Milliseconds to seconds."""
    return n * MS


# ---------------------------------------------------------------------------
# CPU work (base unit: cycles).  A 700 MHz ARM11 executes 700e6 cycles/s.
# ---------------------------------------------------------------------------


def mhz(n: float) -> float:
    """Clock rate in MHz to cycles per second."""
    return n * 1e6


def ghz(n: float) -> float:
    """Clock rate in GHz to cycles per second."""
    return n * 1e9


def mcycles(n: float) -> float:
    """Millions of cycles to cycles."""
    return n * 1e6


# ---------------------------------------------------------------------------
# Formatting helpers for dashboards and reports
# ---------------------------------------------------------------------------


def fmt_bytes(n: float) -> str:
    """Human-readable byte count, e.g. ``fmt_bytes(3 * MIB) == '3.0 MiB'``."""
    value = float(n)
    for suffix in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or suffix == "TiB":
            return f"{value:.1f} {suffix}" if suffix != "B" else f"{int(value)} B"
        value /= 1024.0
    raise AssertionError("unreachable")


def fmt_duration(seconds: float) -> str:
    """Human-readable duration, e.g. ``fmt_duration(90) == '1m30.0s'``."""
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < MINUTE:
        return f"{seconds:.1f}s"
    if seconds < HOUR:
        minutes, rest = divmod(seconds, MINUTE)
        return f"{int(minutes)}m{rest:.1f}s"
    hours, rest = divmod(seconds, HOUR)
    minutes = rest / MINUTE
    return f"{int(hours)}h{minutes:.0f}m"
