"""Declarative experiment-campaign specs.

A campaign is a parameter grid over a registered scenario: the cartesian
product of the ``grid`` axes, times the ``seeds`` list, is the set of
runs.  Specs are small YAML/JSON files (or plain dicts) so a whole study
-- the paper's consolidation-vs-congestion sweep, an MTBF availability
campaign, a perf envelope -- is one committed, reviewable artifact, and
a CI smoke job is one ``repro campaign run specs/<job>.yaml`` line.

Run identity is content-addressed: :attr:`RunSpec.run_id` is a SHA-256
prefix over (campaign name, scenario, canonical parameters, seed), so
rerunning the same spec yields the same IDs and a result store can be
diffed run-for-run against a committed baseline.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.core.config import SimBudgetConfig
from repro.errors import CampaignError

# Scalar values allowed in grids/params: everything JSON round-trips.
_SCALAR_TYPES = (str, int, float, bool, type(None))


def _canonical_json(value: Any) -> str:
    """Deterministic JSON used for run-ID hashing and cell keys."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def _check_scalars(mapping: Mapping[str, Any], where: str) -> None:
    for key, value in mapping.items():
        if not isinstance(key, str):
            raise CampaignError(f"{where} keys must be strings, got {key!r}")
        if not isinstance(value, _SCALAR_TYPES):
            raise CampaignError(
                f"{where}[{key!r}] must be a JSON scalar "
                f"(str/int/float/bool/null), got {type(value).__name__}"
            )


@dataclass(frozen=True)
class RunSpec:
    """One fully-resolved cell x seed of a campaign grid."""

    campaign: str
    scenario: str
    index: int                    # position in the expanded grid (0-based)
    cell: Dict[str, Any]          # the grid axes' values for this cell
    params: Dict[str, Any]        # fixed params merged with the cell
    seed: int

    @property
    def run_id(self) -> str:
        """Deterministic content hash: same spec + seed -> same ID."""
        payload = _canonical_json({
            "campaign": self.campaign,
            "scenario": self.scenario,
            "params": self.params,
            "seed": self.seed,
        })
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]

    @property
    def cell_key(self) -> str:
        """Readable grid-cell label, e.g. ``mttr_s=30,node_mtbf_s=80``."""
        return ",".join(
            f"{key}={_canonical_json(self.cell[key])}"
            for key in sorted(self.cell)
        ) or "(single cell)"


@dataclass(frozen=True, kw_only=True)
class CampaignSpec:
    """A declarative experiment campaign (see ``docs/campaigns.md``).

    ``grid`` maps parameter names to lists of values; the campaign runs
    the cartesian product, each cell once per seed in ``seeds``.
    ``params`` are fixed for every run and may be overridden by a grid
    axis of the same name.  ``budget`` bounds every *individual* run via
    the kernel's :class:`~repro.core.config.SimBudgetConfig`;
    ``run_timeout_s`` is the per-run wall-clock kill switch enforced by
    the parent, and ``retries`` is how many times a crashed or timed-out
    run is re-attempted before a failure record is written.
    """

    name: str
    scenario: str
    description: str = ""
    grid: Dict[str, List[Any]] = field(default_factory=dict)
    params: Dict[str, Any] = field(default_factory=dict)
    seeds: Sequence[int] = (0,)
    budget: SimBudgetConfig = field(default_factory=SimBudgetConfig)
    workers: int = 2
    run_timeout_s: Optional[float] = None
    retries: int = 1
    trace: bool = False
    baseline: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise CampaignError("campaign spec needs a non-empty name")
        if not self.scenario:
            raise CampaignError(f"campaign {self.name!r} names no scenario")
        if self.workers < 1:
            raise CampaignError(f"workers must be >= 1, got {self.workers}")
        if self.retries < 0:
            raise CampaignError(f"retries must be >= 0, got {self.retries}")
        if self.run_timeout_s is not None and self.run_timeout_s <= 0:
            raise CampaignError(
                f"run_timeout_s must be > 0, got {self.run_timeout_s}"
            )
        if not self.seeds:
            raise CampaignError(f"campaign {self.name!r} has no seeds")
        for seed in self.seeds:
            if not isinstance(seed, int) or isinstance(seed, bool):
                raise CampaignError(f"seeds must be integers, got {seed!r}")
        _check_scalars(self.params, "params")
        for axis, values in self.grid.items():
            if not isinstance(axis, str):
                raise CampaignError(f"grid axes must be strings, got {axis!r}")
            if not isinstance(values, (list, tuple)) or not values:
                raise CampaignError(
                    f"grid axis {axis!r} must be a non-empty list, "
                    f"got {values!r}"
                )
            for value in values:
                if not isinstance(value, _SCALAR_TYPES):
                    raise CampaignError(
                        f"grid[{axis!r}] values must be JSON scalars, "
                        f"got {type(value).__name__}"
                    )

    # -- grid expansion ---------------------------------------------------

    @property
    def cell_count(self) -> int:
        count = 1
        for values in self.grid.values():
            count *= len(values)
        return count

    @property
    def run_count(self) -> int:
        return self.cell_count * len(self.seeds)

    def expand(self) -> List[RunSpec]:
        """The full run list: grid cells x seeds, in deterministic order.

        Axes iterate in sorted-name order, values in spec order, seeds
        innermost -- so the expansion (and every run's ``index``) is
        stable across reruns of the same spec.
        """
        axes = sorted(self.grid)
        runs: List[RunSpec] = []
        value_lists = [self.grid[axis] for axis in axes]
        for combo in itertools.product(*value_lists):
            cell = dict(zip(axes, combo))
            params = {**self.params, **cell}
            for seed in self.seeds:
                runs.append(RunSpec(
                    campaign=self.name, scenario=self.scenario,
                    index=len(runs), cell=cell, params=params,
                    seed=int(seed),
                ))
        return runs

    # -- construction -----------------------------------------------------

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any],
                  source: Optional[str] = None) -> "CampaignSpec":
        """Build a spec from a parsed YAML/JSON mapping (validated)."""
        if not isinstance(raw, Mapping):
            raise CampaignError(
                f"campaign spec must be a mapping, got {type(raw).__name__}"
                + (f" (from {source})" if source else "")
            )
        data = dict(raw)
        budget_raw = data.pop("budget", None) or {}
        if not isinstance(budget_raw, Mapping):
            raise CampaignError("spec 'budget' must be a mapping of "
                                "max_events/max_sim_time_s/max_wall_s")
        unknown_budget = set(budget_raw) - {
            "max_events", "max_sim_time_s", "max_wall_s"
        }
        if unknown_budget:
            raise CampaignError(
                f"unknown budget keys: {sorted(unknown_budget)}"
            )
        known = {
            "name", "scenario", "description", "grid", "params", "seeds",
            "workers", "run_timeout_s", "retries", "trace", "baseline",
        }
        unknown = set(data) - known
        if unknown:
            raise CampaignError(
                f"unknown campaign spec keys: {sorted(unknown)} "
                f"(known: {sorted(known | {'budget'})})"
            )
        try:
            return cls(budget=SimBudgetConfig(**budget_raw), **data)
        except TypeError as exc:
            raise CampaignError(f"malformed campaign spec: {exc}") from exc

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CampaignSpec":
        """Load a spec from a ``.yaml``/``.yml``/``.json`` file."""
        path = Path(path)
        if not path.exists():
            raise CampaignError(f"campaign spec not found: {path}")
        text = path.read_text(encoding="utf-8")
        if path.suffix in (".yaml", ".yml"):
            try:
                import yaml
            except ImportError as exc:  # pragma: no cover - yaml is baked in
                raise CampaignError(
                    f"PyYAML is unavailable; convert {path} to JSON"
                ) from exc
            try:
                raw = yaml.safe_load(text)
            except yaml.YAMLError as exc:
                raise CampaignError(f"invalid YAML in {path}: {exc}") from exc
        else:
            try:
                raw = json.loads(text)
            except json.JSONDecodeError as exc:
                raise CampaignError(f"invalid JSON in {path}: {exc}") from exc
        return cls.from_dict(raw, source=str(path))


def load_spec(source: Union[str, Path, Mapping[str, Any]]) -> CampaignSpec:
    """Coerce a path or mapping into a :class:`CampaignSpec`."""
    if isinstance(source, Mapping):
        return CampaignSpec.from_dict(source)
    return CampaignSpec.load(source)
