"""The campaign runner: fan a spec's runs out across worker processes.

Each run executes in its own OS process so the parent can enforce a hard
per-run wall-clock timeout (``run_timeout_s``) with ``terminate()``, a
crashed interpreter cannot take the campaign down, and runs genuinely
overlap.  Inside the worker the kernel's own
:class:`~repro.core.config.SimBudgetConfig` budgets apply; a tripped
budget surfaces as a ``budget-exceeded`` *record* in the result store,
not a crashed campaign.

Workers hand results back through per-run JSON files written atomically
(tmp + ``os.replace``); the parent folds them into the JSONL
:class:`~repro.campaign.store.ResultStore` as runs finish and cleans up
any partial result/artifact files a failed or killed worker left
behind, so an interrupted CI job never uploads a corrupt store.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import shutil
import sys
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.campaign.scenarios import RunContext, resolve_scenario
from repro.campaign.spec import CampaignSpec, RunSpec, load_spec
from repro.campaign.store import ResultStore, RunRecord
from repro.core.config import SimBudgetConfig
from repro.errors import CampaignError, SimBudgetExceeded

_POLL_S = 0.02
_TMP_DIR = "tmp"
_ARTIFACTS_DIR = "artifacts"


def _worker_main(payload: Dict[str, Any]) -> None:
    """Run one scenario in a child process; always exit 0 with a result file.

    Any exception -- including a tripped :class:`SimBudgetExceeded` --
    becomes a structured result, written atomically so the parent either
    sees a complete result or none at all (never a half-written one).
    """
    result: Dict[str, Any] = {"status": "ok", "metrics": {}, "error": None,
                              "error_type": None, "artifacts": []}
    ctx = RunContext(
        params=payload["params"],
        seed=payload["seed"],
        budget=SimBudgetConfig(**payload["budget"]),
        artifacts_dir=Path(payload["artifacts_dir"]),
        trace=payload["trace"],
    )
    started = time.monotonic()
    try:
        scenario = resolve_scenario(payload["scenario"])
        metrics = scenario(ctx)
        if not isinstance(metrics, Mapping):
            raise CampaignError(
                f"scenario {payload['scenario']!r} returned "
                f"{type(metrics).__name__}, expected a metrics dict"
            )
        # Round-trip now so an unserialisable metric fails *this* run.
        result["metrics"] = json.loads(json.dumps(dict(metrics)))
    except SimBudgetExceeded as exc:
        result["status"] = "budget-exceeded"
        result["error"] = str(exc)
        result["error_type"] = type(exc).__name__
    except Exception as exc:
        result["status"] = "failed"
        result["error"] = "".join(
            traceback.format_exception_only(type(exc), exc)
        ).strip()
        result["error_type"] = type(exc).__name__
    result["scenario_wall_s"] = round(time.monotonic() - started, 3)
    result["artifacts"] = ctx.artifacts

    result_path = Path(payload["result_path"])
    partial = result_path.with_suffix(".partial")
    partial.parent.mkdir(parents=True, exist_ok=True)
    partial.write_text(json.dumps(result, sort_keys=True), encoding="utf-8")
    os.replace(partial, result_path)


def run_weight(run: RunSpec) -> int:
    """Worker slots one run occupies.

    A plain run is one process.  A sharded-kernel run (a ``shards``
    param > 1, e.g. the ``scale_perf_sharded`` scenario) forks its own
    kernel workers -- one per pod shard plus the control shard -- so it
    occupies that many slots of the campaign's ``workers`` budget.
    Without this, a grid of sharded runs would fan out ``workers x
    (shards + 1)`` processes and thrash the machine.  Inline shard runs
    (``processes: false``) stay single-process and weigh 1.
    """
    try:
        shards = int(run.params.get("shards", 1))
    except (TypeError, ValueError):
        return 1
    if shards <= 1 or run.params.get("processes") is False:
        return 1
    return shards + 1          # pod shards + the control shard


@dataclass
class _ActiveRun:
    run: RunSpec
    process: multiprocessing.process.BaseProcess
    started: float
    attempt: int
    result_path: Path
    artifacts_dir: Path
    first_started: float

    @property
    def weight(self) -> int:
        return run_weight(self.run)


@dataclass
class CampaignResult:
    """What a finished campaign hands back."""

    spec: CampaignSpec
    store: ResultStore
    out_dir: Path
    records: List[RunRecord] = field(default_factory=list)
    wall_s: float = 0.0
    dashboard_path: Optional[Path] = None

    @property
    def ok(self) -> bool:
        return bool(self.records) and all(r.ok for r in self.records)

    def summary(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.status] = counts.get(record.status, 0) + 1
        return counts


class CampaignRunner:
    """Expand a spec and execute every run under the configured budgets."""

    def __init__(
        self,
        spec: Union[CampaignSpec, Mapping[str, Any], str, Path],
        out_dir: Union[str, Path],
        workers: Optional[int] = None,
        verbose: bool = True,
    ) -> None:
        self.spec = spec if isinstance(spec, CampaignSpec) else load_spec(spec)
        self.out_dir = Path(out_dir)
        self.workers = workers if workers is not None else self.spec.workers
        if self.workers < 1:
            raise CampaignError(f"workers must be >= 1, got {self.workers}")
        self.verbose = verbose
        # fork keeps dotted-ref scenarios defined in already-imported
        # modules (tests, notebooks) resolvable in the child; spawn is
        # the portable fallback.
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )

    # -- helpers ----------------------------------------------------------

    def _log(self, message: str) -> None:
        if self.verbose:
            print(message, file=sys.stderr, flush=True)

    def _fresh_output_layout(self) -> None:
        """Start clean: previous stores/artifacts must not bleed in."""
        for name in (
            "results.jsonl", "results.sqlite", "dashboard.html",
        ):
            path = self.out_dir / name
            if path.exists():
                path.unlink()
        for sub in (_TMP_DIR, _ARTIFACTS_DIR):
            path = self.out_dir / sub
            if path.exists():
                shutil.rmtree(path)
        (self.out_dir / _TMP_DIR).mkdir(parents=True, exist_ok=True)

    def _launch(self, run: RunSpec, attempt: int,
                first_started: Optional[float] = None) -> _ActiveRun:
        result_path = self.out_dir / _TMP_DIR / f"{run.run_id}.json"
        artifacts_dir = self.out_dir / _ARTIFACTS_DIR / run.run_id
        # A retry (or a stale previous campaign) must not inherit
        # partial output from the dead attempt.
        if result_path.exists():
            result_path.unlink()
        partial = result_path.with_suffix(".partial")
        if partial.exists():
            partial.unlink()
        if artifacts_dir.exists():
            shutil.rmtree(artifacts_dir)
        payload = {
            "scenario": run.scenario,
            "params": run.params,
            "seed": run.seed,
            "trace": self.spec.trace,
            "budget": {
                "max_events": self.spec.budget.max_events,
                "max_sim_time_s": self.spec.budget.max_sim_time_s,
                "max_wall_s": self.spec.budget.max_wall_s,
            },
            "artifacts_dir": str(artifacts_dir),
            "result_path": str(result_path),
        }
        # Sharded runs fork their own shard workers, and daemonic
        # processes may not have children -- so those campaign workers
        # run non-daemon.  Their shard workers hold a pipe to the
        # campaign worker and exit on EOF, so a terminate() on timeout
        # still tears the whole tree down.
        process = self._ctx.Process(
            target=_worker_main, args=(payload,),
            name=f"campaign-{run.run_id}", daemon=run_weight(run) == 1,
        )
        process.start()
        now = time.monotonic()
        return _ActiveRun(
            run=run, process=process, started=now, attempt=attempt,
            result_path=result_path, artifacts_dir=artifacts_dir,
            first_started=first_started if first_started is not None else now,
        )

    def _record_from_result(self, active: _ActiveRun,
                            result: Dict[str, Any]) -> RunRecord:
        run = active.run
        return RunRecord(
            run_id=run.run_id, campaign=run.campaign, scenario=run.scenario,
            index=run.index, cell=run.cell, params=run.params, seed=run.seed,
            status=result["status"], metrics=result.get("metrics", {}),
            error=result.get("error"), error_type=result.get("error_type"),
            attempts=active.attempt,
            duration_s=round(time.monotonic() - active.first_started, 3),
            artifacts=result.get("artifacts", []),
        )

    def _infra_failure(self, active: _ActiveRun, status: str,
                       error: str) -> RunRecord:
        """A crashed or timed-out worker: clean its debris, record it."""
        for path in (active.result_path,
                     active.result_path.with_suffix(".partial")):
            if path.exists():
                path.unlink()
        if active.artifacts_dir.exists():
            shutil.rmtree(active.artifacts_dir)
        run = active.run
        return RunRecord(
            run_id=run.run_id, campaign=run.campaign, scenario=run.scenario,
            index=run.index, cell=run.cell, params=run.params, seed=run.seed,
            status=status, metrics={}, error=error,
            error_type=status, attempts=active.attempt,
            duration_s=round(time.monotonic() - active.first_started, 3),
        )

    # -- the drive loop ---------------------------------------------------

    def run(self) -> CampaignResult:
        # Resolve the scenario up front so a typo'd name fails before a
        # single worker is forked (dotted refs also get import-checked).
        resolve_scenario(self.spec.scenario)
        runs = self.spec.expand()
        self._fresh_output_layout()
        store = ResultStore(self.out_dir)
        timeout = self.spec.run_timeout_s
        total = len(runs)
        self._log(
            f"campaign {self.spec.name!r}: {self.spec.cell_count} cells x "
            f"{len(self.spec.seeds)} seeds = {total} runs, "
            f"{min(self.workers, total)} workers"
        )
        started = time.monotonic()
        pending = list(reversed(runs))       # pop() from the front
        active: List[_ActiveRun] = []
        by_id: Dict[str, RunRecord] = {}
        done = 0
        try:
            while pending or active:
                # Weighted admission: a run's weight is how many worker
                # processes it will fork (see run_weight); an over-weight
                # run still launches alone rather than deadlocking.
                while pending:
                    used = sum(entry.weight for entry in active)
                    if active and used + run_weight(pending[-1]) > self.workers:
                        break
                    active.append(self._launch(pending.pop(), attempt=1))
                still_active: List[_ActiveRun] = []
                for entry in active:
                    outcome = self._poll(entry, timeout)
                    if outcome is None:
                        still_active.append(entry)
                        continue
                    record, retry = outcome
                    if retry:
                        still_active.append(self._launch(
                            entry.run, attempt=entry.attempt + 1,
                            first_started=entry.first_started,
                        ))
                        continue
                    store.append(record)
                    by_id[record.run_id] = record
                    done += 1
                    detail = "" if record.ok else f" [{record.error}]"
                    cell = ",".join(
                        f"{k}={v}" for k, v in sorted(record.cell.items())
                    ) or "(single cell)"
                    self._log(
                        f"  [{done}/{total}] {record.run_id} "
                        f"{record.status:>8s}  {cell}"
                        f" seed={record.seed} {record.duration_s:.1f}s"
                        f"{detail}"
                    )
                active = still_active
                if active:
                    time.sleep(_POLL_S)
        finally:
            for entry in active:
                if entry.process.is_alive():
                    entry.process.terminate()
                    entry.process.join(timeout=5.0)
            tmp_dir = self.out_dir / _TMP_DIR
            if tmp_dir.exists():
                shutil.rmtree(tmp_dir, ignore_errors=True)
        store.write_sqlite()
        records = sorted(by_id.values(), key=lambda r: (r.index, r.seed))
        result = CampaignResult(
            spec=self.spec, store=store, out_dir=self.out_dir,
            records=records,
            wall_s=round(time.monotonic() - started, 3),
        )
        counts = ", ".join(
            f"{count} {status}" for status, count in sorted(result.summary().items())
        )
        self._log(f"campaign {self.spec.name!r} done in {result.wall_s:.1f}s: "
                  f"{counts}")
        return result

    def _poll(self, entry: _ActiveRun, timeout: Optional[float]):
        """None while running; else (record, retry?) when resolved."""
        may_retry = entry.attempt <= self.spec.retries
        if not entry.process.is_alive():
            entry.process.join()
            if entry.result_path.exists():
                try:
                    result = json.loads(
                        entry.result_path.read_text(encoding="utf-8")
                    )
                except json.JSONDecodeError as exc:
                    result = None
                    crash_error = f"worker wrote corrupt result: {exc}"
                else:
                    entry.result_path.unlink()
                    return self._record_from_result(entry, result), False
            else:
                crash_error = (
                    f"worker died without a result "
                    f"(exit code {entry.process.exitcode})"
                )
            if may_retry:
                self._log(f"  retrying {entry.run.run_id}: {crash_error}")
                self._cleanup_attempt(entry)
                return _RETRY
            return self._infra_failure(entry, "crashed", crash_error), False
        if timeout is not None and time.monotonic() - entry.started > timeout:
            entry.process.terminate()
            entry.process.join(timeout=5.0)
            if entry.process.is_alive():  # pragma: no cover - hard kill
                entry.process.kill()
                entry.process.join()
            error = f"run exceeded run_timeout_s={timeout}"
            if may_retry:
                self._log(f"  retrying {entry.run.run_id}: {error}")
                self._cleanup_attempt(entry)
                return _RETRY
            return self._infra_failure(entry, "timeout", error), False
        return None

    def _cleanup_attempt(self, entry: _ActiveRun) -> None:
        for path in (entry.result_path,
                     entry.result_path.with_suffix(".partial")):
            if path.exists():
                path.unlink()
        if entry.artifacts_dir.exists():
            shutil.rmtree(entry.artifacts_dir)


# Sentinel returned by _poll to signal "relaunch this run".
_RETRY = (None, True)


def run_campaign(
    spec: Union[CampaignSpec, Mapping[str, Any], str, Path],
    out_dir: Union[str, Path],
    workers: Optional[int] = None,
    baseline: Optional[Union[str, Path]] = None,
    dashboard: bool = True,
    verbose: bool = True,
) -> CampaignResult:
    """Run a campaign end to end: execute, index, render the dashboard."""
    from repro.campaign.dashboard import render_dashboard

    runner = CampaignRunner(spec, out_dir, workers=workers, verbose=verbose)
    baseline_path = baseline or runner.spec.baseline
    result = runner.run()
    if dashboard:
        baseline_store = (
            ResultStore.load(baseline_path) if baseline_path else None
        )
        result.dashboard_path = Path(render_dashboard(
            result.store, runner.out_dir / "dashboard.html",
            baseline=baseline_store,
        ))
    return result
