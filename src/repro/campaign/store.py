"""Structured result persistence for experiment campaigns.

One :class:`RunRecord` per run lands in an append-only JSONL file
(``results.jsonl``) the moment the run completes, plus an optional
SQLite index (``results.sqlite``) for ad-hoc SQL over big sweeps.  The
JSONL file is the source of truth: every append is a single atomic
``write`` of one full line, and :meth:`ResultStore.load` skips a
truncated trailing line, so a CI job killed mid-campaign still leaves a
readable store for the artifact upload instead of a corrupt one.
"""

from __future__ import annotations

import json
import os
import sqlite3
import sys
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.errors import CampaignError

SCHEMA_VERSION = 1

# Terminal statuses a run can land in.  Everything except "ok" carries
# an ``error`` message; "budget-exceeded" is the kernel's typed
# SimBudgetExceeded surfaced as data rather than a crashed campaign.
RUN_STATUSES = ("ok", "failed", "budget-exceeded", "timeout", "crashed")

STORE_FILENAME = "results.jsonl"
SQLITE_FILENAME = "results.sqlite"


@dataclass
class RunRecord:
    """The structured result of one campaign run (ok or not)."""

    run_id: str
    campaign: str
    scenario: str
    index: int
    cell: Dict[str, Any]
    params: Dict[str, Any]
    seed: int
    status: str
    metrics: Dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None
    error_type: Optional[str] = None
    attempts: int = 1
    duration_s: float = 0.0
    artifacts: List[str] = field(default_factory=list)
    schema: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        if self.status not in RUN_STATUSES:
            raise CampaignError(
                f"unknown run status {self.status!r}; one of {RUN_STATUSES}"
            )

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "RunRecord":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        extra = set(raw) - known
        if extra:
            # Forward compatibility: newer writers may add fields.
            raw = {k: v for k, v in raw.items() if k in known}
        return cls(**raw)


class ResultStore:
    """A campaign's on-disk results: ``<dir>/results.jsonl`` (+ SQLite).

    Construction creates the directory (parents included); records are
    appended as runs finish, so a partially-completed campaign is always
    a valid, loadable store.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / STORE_FILENAME
        self._records: List[RunRecord] = []
        if self.path.exists():
            self._records = _read_jsonl(self.path)

    # -- writing ----------------------------------------------------------

    def append(self, record: RunRecord) -> None:
        """Append one record; a single atomic line write, then fsync."""
        line = json.dumps(record.to_dict(), sort_keys=True) + "\n"
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, line.encode("utf-8"))
            os.fsync(fd)
        finally:
            os.close(fd)
        self._records.append(record)

    def write_sqlite(self, path: Optional[Union[str, Path]] = None) -> Path:
        """(Re)build the SQLite index of every record in the store."""
        target = Path(path) if path else self.directory / SQLITE_FILENAME
        target.parent.mkdir(parents=True, exist_ok=True)
        if target.exists():
            target.unlink()
        conn = sqlite3.connect(target)
        try:
            conn.execute(
                "CREATE TABLE runs ("
                " run_id TEXT PRIMARY KEY, campaign TEXT, scenario TEXT,"
                " idx INTEGER, cell TEXT, params TEXT, seed INTEGER,"
                " status TEXT, metrics TEXT, error TEXT, error_type TEXT,"
                " attempts INTEGER, duration_s REAL, artifacts TEXT,"
                " schema_version INTEGER)"
            )
            conn.execute("CREATE INDEX runs_status ON runs (status)")
            conn.execute("CREATE INDEX runs_campaign ON runs (campaign)")
            conn.executemany(
                "INSERT OR REPLACE INTO runs VALUES "
                "(?,?,?,?,?,?,?,?,?,?,?,?,?,?,?)",
                [
                    (
                        r.run_id, r.campaign, r.scenario, r.index,
                        json.dumps(r.cell, sort_keys=True),
                        json.dumps(r.params, sort_keys=True),
                        r.seed, r.status,
                        json.dumps(r.metrics, sort_keys=True),
                        r.error, r.error_type, r.attempts, r.duration_s,
                        json.dumps(r.artifacts), r.schema,
                    )
                    for r in self._records
                ],
            )
            conn.commit()
        finally:
            conn.close()
        return target

    # -- reading ----------------------------------------------------------

    def records(self) -> List[RunRecord]:
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def by_run_id(self) -> Dict[str, RunRecord]:
        return {record.run_id: record for record in self._records}

    def failed(self) -> List[RunRecord]:
        return [record for record in self._records if not record.ok]

    @classmethod
    def load(cls, source: Union[str, Path]) -> "ResultStore":
        """Open an existing store from its directory, JSONL, or SQLite.

        Raises :class:`~repro.errors.CampaignError` when nothing is
        there -- loading never silently creates an empty store.
        """
        path = Path(source)
        if path.is_dir():
            if not (path / STORE_FILENAME).exists():
                raise CampaignError(
                    f"no {STORE_FILENAME} under {path}; not a result store"
                )
            return cls(path)
        if not path.exists():
            raise CampaignError(f"result store not found: {path}")
        if path.suffix == ".sqlite":
            return cls._load_sqlite(path)
        store = cls.__new__(cls)
        store.directory = path.parent
        store.path = path
        store._records = _read_jsonl(path)
        return store

    @classmethod
    def _load_sqlite(cls, path: Path) -> "ResultStore":
        conn = sqlite3.connect(path)
        try:
            rows = conn.execute(
                "SELECT run_id, campaign, scenario, idx, cell, params, seed,"
                " status, metrics, error, error_type, attempts, duration_s,"
                " artifacts, schema_version FROM runs ORDER BY idx, seed"
            ).fetchall()
        except sqlite3.DatabaseError as exc:
            raise CampaignError(f"cannot read SQLite store {path}: {exc}") from exc
        finally:
            conn.close()
        store = cls.__new__(cls)
        store.directory = path.parent
        store.path = path.parent / STORE_FILENAME
        store._records = [
            RunRecord(
                run_id=row[0], campaign=row[1], scenario=row[2], index=row[3],
                cell=json.loads(row[4]), params=json.loads(row[5]),
                seed=row[6], status=row[7], metrics=json.loads(row[8]),
                error=row[9], error_type=row[10], attempts=row[11],
                duration_s=row[12], artifacts=json.loads(row[13]),
                schema=row[14],
            )
            for row in rows
        ]
        return store

    # -- comparison -------------------------------------------------------

    def diff_metrics(self, baseline: "ResultStore") -> Dict[str, Dict[str, tuple]]:
        """Per-run metric deltas against a baseline store.

        Returns ``{run_id: {metric: (baseline, current)}}`` for every
        run ID present in both stores whose numeric metrics differ.
        """
        deltas: Dict[str, Dict[str, tuple]] = {}
        base = baseline.by_run_id()
        for record in self._records:
            other = base.get(record.run_id)
            if other is None:
                continue
            changed = {}
            for key in sorted(set(record.metrics) | set(other.metrics)):
                old, new = other.metrics.get(key), record.metrics.get(key)
                if old != new:
                    changed[key] = (old, new)
            if changed:
                deltas[record.run_id] = changed
        return deltas


def _read_jsonl(path: Path) -> List[RunRecord]:
    """Parse a JSONL store, tolerating a truncated/corrupt trailing line.

    A corrupt line *before* the end means real damage and raises; a
    corrupt *last* line is the signature of a killed writer and is
    dropped with a warning so the surviving records stay usable.
    """
    records: List[RunRecord] = []
    lines = path.read_text(encoding="utf-8").splitlines()
    for lineno, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            records.append(RunRecord.from_dict(json.loads(line)))
        except (json.JSONDecodeError, TypeError, CampaignError) as exc:
            if lineno == len(lines) - 1:
                print(
                    f"warning: dropping truncated trailing record in "
                    f"{path} (line {lineno + 1}): {exc}",
                    file=sys.stderr,
                )
                continue
            raise CampaignError(
                f"corrupt result store {path} at line {lineno + 1}: {exc}"
            ) from exc
    return records


def iter_numeric_metrics(records: Iterable[RunRecord]) -> List[str]:
    """Sorted names of metrics that are numeric in at least one record."""
    names = set()
    for record in records:
        for key, value in record.metrics.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                names.add(key)
    return sorted(names)
