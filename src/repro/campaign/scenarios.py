"""The scenario registry: named, parameterised experiment bodies.

A *scenario* is the per-run body of a campaign: a callable taking a
:class:`RunContext` (merged parameters, seed, per-run
:class:`~repro.core.config.SimBudgetConfig`, artifact directory) and
returning a flat dict of metrics.  Campaign specs name scenarios either
by registered name (the built-ins below) or by dotted path
(``"mypkg.mymod:my_scenario"``), so studies can live outside the
library without forking the runner.

Built-ins:

* ``availability_mtbf`` -- the MTBF node-fault campaign against a
  (optionally self-healing) cloud, measuring fleet availability and the
  recovery plane's counters.  ``specs/availability_mtbf.yaml`` sweeps
  it; CI's ``chaos-smoke`` job runs that spec.
* ``scale_perf`` -- the consolidation-vs-congestion throughput
  benchmark at 56/224/896 nodes (shared with
  ``benchmarks/test_scale_perf.py``); CI's ``perf-gate`` job runs
  ``specs/perf_224.yaml`` and gates it with
  ``benchmarks/compare_baseline.py``.
* ``scale_perf_sharded`` -- the same fat-tree/workload run on the
  sharded parallel kernel (``repro.sim.shard``): per-pod shard
  simulators under conservative time sync, the control plane as its
  own shard.  ``specs/shard_smoke.yaml`` sweeps it; CI's
  ``shard-smoke`` job runs that spec (non-blocking).
* ``flashcrowd_slo`` -- a million-user flash crowd through the
  session-level load engine (``repro.load``), static ECMP vs the SDN
  TE arm, reported as p99/p999 latency and SLO error-budget burn.
  ``specs/flashcrowd_slo.yaml`` sweeps it; CI's ``slo-smoke`` job runs
  that spec.
* ``partition_chaos`` -- a network partition isolates one fat-tree pod
  (hosts *and* pod switches) under live session load, sweeping
  partition duration x UNREACHABLE grace x fencing on/off.  Reports
  split-brain accounting (``duplicate_container_epochs`` must be 0
  with fencing on), false evacuations, unreachable seconds, and the
  user-visible SLO burn.  ``specs/partition_chaos.yaml`` sweeps it;
  CI's ``partition-smoke`` job runs that spec.

Heavy imports happen inside the scenario bodies so importing
``repro.campaign`` stays cheap.
"""

from __future__ import annotations

import importlib
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from repro.core.config import SimBudgetConfig
from repro.errors import CampaignError

Scenario = Callable[["RunContext"], Dict[str, Any]]

_REGISTRY: Dict[str, Scenario] = {}


@dataclass
class RunContext:
    """Everything one campaign run gets to see."""

    params: Dict[str, Any]
    seed: int
    budget: SimBudgetConfig = field(default_factory=SimBudgetConfig)
    artifacts_dir: Optional[Path] = None
    trace: bool = False
    artifacts: List[str] = field(default_factory=list)

    def param(self, name: str, default: Any = None) -> Any:
        return self.params.get(name, default)

    def artifact_path(self, name: str) -> Path:
        """Reserve an artifact file path (parents created, name recorded)."""
        if self.artifacts_dir is None:
            raise CampaignError("run has no artifacts directory")
        path = self.artifacts_dir / name
        path.parent.mkdir(parents=True, exist_ok=True)
        if name not in self.artifacts:
            self.artifacts.append(name)
        return path


def register_scenario(name: str) -> Callable[[Scenario], Scenario]:
    """Decorator: make a scenario addressable by name from specs."""

    def decorate(fn: Scenario) -> Scenario:
        if name in _REGISTRY:
            raise CampaignError(f"scenario {name!r} already registered")
        _REGISTRY[name] = fn
        return fn

    return decorate


def registered_scenarios() -> List[str]:
    return sorted(_REGISTRY)


def resolve_scenario(ref: str) -> Scenario:
    """A registered name, or a ``"module.path:function"`` dotted ref."""
    if ref in _REGISTRY:
        return _REGISTRY[ref]
    if ":" in ref:
        module_name, _, attr = ref.partition(":")
        try:
            module = importlib.import_module(module_name)
        except ImportError as exc:
            raise CampaignError(
                f"cannot import scenario module {module_name!r}: {exc}"
            ) from exc
        scenario = getattr(module, attr, None)
        if not callable(scenario):
            raise CampaignError(
                f"scenario ref {ref!r} does not name a callable"
            )
        return scenario
    raise CampaignError(
        f"unknown scenario {ref!r}; registered: {registered_scenarios()} "
        f"(or use a 'module:function' dotted ref)"
    )


# -- built-in: MTBF availability --------------------------------------------


@register_scenario("availability_mtbf")
def availability_mtbf(ctx: RunContext) -> Dict[str, Any]:
    """MTBF node faults against a (self-healing) cloud; availability out.

    The per-run body of ``examples/availability_experiment.py``: place a
    baseline web workload, run an exponential node-fault/repair process
    for ``duration_s`` simulated seconds, and report measured fleet
    availability plus every self-healing counter.
    """
    from repro.core.cloud import PiCloud
    from repro.core.config import HealthConfig, PiCloudConfig, TraceConfig
    from repro.faults import MtbfFaultInjector
    from repro.mgmt.health import NodeHealth

    p = ctx.param
    self_healing = bool(p("self_healing", True))
    duration_s = float(p("duration_s", 600.0))
    mttr_s = float(p("mttr_s", 60.0))
    config = PiCloudConfig.small(
        racks=int(p("racks", 2)), pis=int(p("pis", 3)),
        start_monitoring=False, routing=str(p("routing", "shortest")),
        seed=ctx.seed,
        health=HealthConfig(
            enabled=self_healing,
            heartbeat_interval_s=float(p("heartbeat_interval_s", 2.0)),
            heartbeat_timeout_s=float(p("heartbeat_timeout_s", 1.0)),
            suspect_after_misses=int(p("suspect_after_misses", 2)),
            dead_after_misses=int(p("dead_after_misses", 3)),
        ),
        trace=TraceConfig(enabled=ctx.trace),
        budget=ctx.budget,
    )
    cloud = PiCloud(config)
    cloud.boot()
    try:
        for i in range(int(p("web_containers", 4))):
            cloud.spawn_and_wait("webserver", name=f"web-{i}", group="web")

        window_start = cloud.sim.now
        injector = MtbfFaultInjector(
            cloud, rng=random.Random(ctx.seed),
            node_mtbf_s=float(p("node_mtbf_s", 150.0)),
            mttr_s=mttr_s, duration_s=duration_s,
        )
        cloud.run_for(duration_s + 2 * mttr_s)  # drain repairs/rejoins
        injector.stop()
        window_end = cloud.sim.now

        health = cloud.pimaster.health
        recovery = cloud.pimaster.recovery
        running = sum(
            d.runtime.running_count() for d in cloud.daemons.values()
        )
        return {
            "fleet_availability": injector.fleet_availability(
                window_start, window_end
            ),
            "node_failures": sum(
                1 for e in injector.log if e.kind == "node-fail"
            ),
            "node_repairs": sum(
                1 for e in injector.log if e.kind == "node-repair"
            ),
            "heartbeats_sent": health.heartbeats_sent,
            "heartbeats_missed": health.heartbeats_missed,
            "evacuations": recovery.evacuations,
            "containers_evacuated": recovery.containers_evacuated,
            "containers_respawned": recovery.containers_respawned,
            "unschedulable": len(recovery.unschedulable),
            "rejoins": cloud.pimaster.rejoins,
            "nodes_alive": len(health.nodes_in(NodeHealth.ALIVE))
            if self_healing else sum(
                1 for n in cloud.node_names if cloud.machines[n].is_on
            ),
            "containers_running": running,
            "sim_time_s": cloud.sim.now,
        }
    finally:
        if ctx.trace and cloud.tracer is not None:
            cloud.write_trace(str(ctx.artifact_path("trace.jsonl")))


# -- built-in: scale/perf envelope ------------------------------------------

# nodes -> (racks, pis_per_rack, fat-tree k).  k**3/4 must hold the nodes.
SCALES = {
    56: (4, 14, 8),
    224: (16, 14, 10),
    896: (64, 14, 16),
    3456: (216, 16, 24),
}
# Chatty container pairs per scale: enough concurrent flows to make the
# fair-share solver the hot path, bounded so the 896-node run stays in
# CI-able territory (each spawn costs a fleet-wide placement scan --
# O(nodes) REST exchanges -- which both solver modes pay identically).
PAIRS = {56: 6, 224: 12, 896: 16, 3456: 20}

WARMUP_S = 30.0
SETTLE_S = 60.0
MEASURE_S = 30.0


def measure_scale(
    nodes: int,
    incremental: bool = True,
    seed: Optional[int] = None,
    budget: Optional[SimBudgetConfig] = None,
    pairs: Optional[int] = None,
    rate_model: str = "maxmin",
    protocol: str = "reno",
    consolidate: bool = True,
) -> Dict[str, Any]:
    """Build, load, and drive the consolidation scenario at ``nodes``.

    The single source of truth for the scale benchmark: both the
    ``scale_perf`` campaign scenario and
    ``benchmarks/test_scale_perf.py`` call this, so the committed
    ``BENCH_perf.json`` baseline and campaign result stores measure the
    exact same workload.

    ``rate_model``/``protocol`` select the fabric's rate assignment
    (``specs/cc_consolidation.yaml`` sweeps them against the
    consolidation round); ``consolidate=False`` skips the consolidation
    round so its congestion cost can be isolated.  The defaults are the
    exact baseline workload -- byte-identical to every previous release.
    """
    from repro.apps import OnOffTrafficSource
    from repro.core.cloud import PiCloud
    from repro.core.config import PiCloudConfig, RateModelConfig
    from repro.placement import Consolidator, WorstFit
    from repro.units import kib

    if nodes not in SCALES:
        raise CampaignError(
            f"unknown scale {nodes}; known: {sorted(SCALES)}"
        )
    racks, pis, k = SCALES[nodes]
    pair_count = PAIRS[nodes] if pairs is None else int(pairs)

    setup_start = time.monotonic()
    config = PiCloudConfig(
        num_racks=racks, pis_per_rack=pis,
        topology="fat-tree", fat_tree_k=k,
        routing="ecmp",
        rate_model=RateModelConfig(model=rate_model, protocol=protocol),
        seed=nodes if seed is None else seed,
        incremental_fairness=incremental,
        start_monitoring=True,
        budget=budget or SimBudgetConfig(),
    )
    cloud = PiCloud(config)
    cloud.boot()

    # Setup: spread container pairs wide, wire on/off traffic sources.
    # Untimed in wall_s -- each spawn triggers a fleet-wide placement
    # scan that both solver modes pay identically.
    records = [
        cloud.spawn_and_wait("base", name=f"c{i}", policy=WorstFit())
        for i in range(2 * pair_count)
    ]
    rng = random.Random(11)
    for sender, receiver in zip(records[:pair_count], records[pair_count:]):
        cloud.container(receiver.name).listen(9000)
        sender_container = cloud.container(sender.name)

        def make_send(src=sender_container, dst_ip=receiver.ip):
            return lambda: src.send(dst_ip, 9000, "chunk", size=kib(64))

        # 20 sends/s x 64 KiB = 1.3 MB/s offered per pair: high flow
        # churn, light enough that post-consolidation sharing congests
        # transiently instead of collapsing into a growing backlog.
        OnOffTrafficSource(
            cloud.sim, rng, make_send(), on_mean_s=2.0, off_mean_s=0.5,
            rate_per_s=20.0,
        )
    setup_wall_s = time.monotonic() - setup_start

    # The timed portion: churn, a consolidation round, more churn.
    start_events = cloud.sim.events_executed
    start = time.monotonic()
    cloud.run_for(WARMUP_S)
    if consolidate:
        runtimes = {
            name: daemon.runtime for name, daemon in cloud.daemons.items()
        }
        consolidator = Consolidator(cloud.sim, runtimes, power_off_empty=True)
        consolidator.run_round()
    cloud.run_for(SETTLE_S)
    cloud.run_for(MEASURE_S)
    wall_s = time.monotonic() - start
    events = cloud.sim.events_executed - start_events
    result = {
        "nodes": nodes,
        "incremental": incremental,
        "setup_wall_s": round(setup_wall_s, 3),
        "wall_s": round(wall_s, 3),
        "events": events,
        "events_per_s": round(events / wall_s) if wall_s > 0 else None,
        "flows_started": int(cloud.network.flows_started.total),
        "recomputes": cloud.network.recomputes,
        "flows_solved": cloud.network.flows_solved,
    }
    if rate_model == "cc":
        # The queue/ECN counters only exist on the cc path; reporting
        # them lets the cc x consolidation sweep read congestion cost
        # directly off the result store.
        result["consolidate"] = consolidate
        result.update(cloud.network.queue_metrics())
    return result


@register_scenario("scale_perf")
def scale_perf(ctx: RunContext) -> Dict[str, Any]:
    """Campaign wrapper over :func:`measure_scale` (grid: nodes x solver)."""
    return measure_scale(
        int(ctx.param("nodes", 224)),
        incremental=bool(ctx.param("incremental", True)),
        seed=ctx.seed,
        budget=ctx.budget,
        pairs=ctx.param("pairs"),
        rate_model=str(ctx.param("rate_model", "maxmin")),
        protocol=str(ctx.param("protocol", "reno")),
        consolidate=bool(ctx.param("consolidate", True)),
    )


def measure_scale_sharded(
    nodes: int,
    shards: int,
    seed: Optional[int] = None,
    pairs: Optional[int] = None,
    processes: bool = True,
    trace: bool = False,
    profile_dir: Optional[str] = None,
) -> Dict[str, Any]:
    """The sharded-kernel counterpart of :func:`measure_scale`.

    Same fat-tree and the same ON/OFF pair workload, but run as per-pod
    shard kernels under conservative time sync (``repro.sim.shard``)
    with the control plane as shard 0.  Not byte-comparable to
    :func:`measure_scale` (see ``docs/performance.md``); the shared keys
    (``events``, ``wall_s``, ``flows_started``...) make the two
    regimes comparable side by side in a result store.
    """
    from repro.core.config import ShardConfig
    from repro.netsim.sharded import ShardedWorkload, run_sharded_fat_tree

    if nodes not in SCALES:
        raise CampaignError(
            f"unknown scale {nodes}; known: {sorted(SCALES)}"
        )
    _, _, k = SCALES[nodes]
    if shards > k:
        raise CampaignError(f"shards={shards} exceeds pod count k={k}")
    pair_count = PAIRS[nodes] if pairs is None else int(pairs)
    workload = ShardedWorkload(
        warmup_s=WARMUP_S, measure_s=SETTLE_S + MEASURE_S,
    )
    return run_sharded_fat_tree(
        k=k, hosts=nodes, shards=shards, pairs=pair_count,
        seed=nodes if seed is None else seed,
        workload=workload,
        shard_config=ShardConfig(shards=shards, processes=processes),
        trace=trace,
        profile_dir=profile_dir,
    )


@register_scenario("scale_perf_sharded")
def scale_perf_sharded(ctx: RunContext) -> Dict[str, Any]:
    """Campaign wrapper over :func:`measure_scale_sharded`."""
    return measure_scale_sharded(
        int(ctx.param("nodes", 224)),
        shards=int(ctx.param("shards", 2)),
        seed=ctx.seed,
        pairs=ctx.param("pairs"),
        processes=bool(ctx.param("processes", True)),
    )


# -- built-in: flash-crowd SLO burn ------------------------------------------


@register_scenario("flashcrowd_slo")
def flashcrowd_slo(ctx: RunContext) -> Dict[str, Any]:
    """A million-user flash crowd vs the fabric's TE story, in SLO terms.

    The session-level load engine (``repro.load``) ramps a flash crowd
    over a fat-tree whose uplinks are deliberately tight, with one
    webserver replica pool behind DNS/placement.  Grid axis ``routing``
    compares static ECMP hashing against the SDN TE arm
    (``sdn-least-congested`` placement plus the Hedera-style elephant
    rerouter): same seed, same arrivals, same fabric -- the p99 and
    error-budget burn gap is pure traffic engineering.
    ``specs/flashcrowd_slo.yaml`` sweeps it; CI's ``slo-smoke`` job runs
    that spec.
    """
    from repro.core.cloud import PiCloud
    from repro.core.config import PiCloudConfig, TraceConfig
    from repro.load import (
        FlashCrowdArrivals,
        LoadEngine,
        Service,
        ServiceProfile,
        SloObjective,
    )
    from repro.units import mbit_per_s

    p = ctx.param
    nodes = int(p("nodes", 224))
    if nodes not in SCALES:
        raise CampaignError(f"unknown scale {nodes}; known: {sorted(SCALES)}")
    racks, pis, k = SCALES[nodes]
    routing = str(p("routing", "ecmp"))
    duration_s = float(p("duration_s", 120.0))
    config = PiCloudConfig(
        num_racks=racks, pis_per_rack=pis,
        topology="fat-tree", fat_tree_k=k,
        routing=routing, seed=ctx.seed,
        uplink_bandwidth=mbit_per_s(float(p("uplink_mbps", 100.0))),
        start_monitoring=False,
        trace=TraceConfig(enabled=ctx.trace),
        budget=ctx.budget,
    )
    cloud = PiCloud(config)
    cloud.boot()
    try:
        for index in range(int(p("replicas", 50))):
            cloud.spawn_and_wait("webserver", name=f"web{index}", group="web")

        rerouter = None
        te_apps = bool(p("te_apps", routing == "sdn-least-congested"))
        if te_apps and cloud.controller is not None:
            from repro.netsim.sdn import ElephantRerouter

            rerouter = ElephantRerouter(
                cloud.sim, cloud.network, cloud.controller,
                interval=0.5, congestion_threshold=0.7, min_flow_bytes=1e5,
            )

        service = Service(
            "web",
            profile=ServiceProfile(
                response_bytes=float(p("response_kib", 2.0)) * 1024.0,
                requests_per_session_per_s=float(p("request_rate", 0.1)),
                session_duration_s=float(p("session_s", 120.0)),
            ),
            slo=SloObjective(
                threshold_s=float(p("slo_ms", 250.0)) / 1e3,
                objective=float(p("objective", 0.999)),
            ),
        )
        arrivals = FlashCrowdArrivals(
            base_rate_per_s=float(p("base_rate", 500.0)),
            peak_rate_per_s=float(p("peak_rate", 25_000.0)),
            start_s=float(p("crowd_start_s", 10.0)),
            ramp_s=float(p("ramp_s", 10.0)),
            hold_s=float(p("hold_s", duration_s - 40.0)),
            decay_s=float(p("decay_s", 20.0)),
        )
        engine = LoadEngine(cloud, [service], arrivals)
        events_before = cloud.sim.events_executed
        report = engine.run(duration_s)
        if rerouter is not None:
            rerouter.stop()

        metrics = report.metrics()
        metrics.update({
            "nodes": nodes,
            "te_apps": te_apps,
            "kernel_events": cloud.sim.events_executed - events_before,
            "reroutes": rerouter.reroutes if rerouter is not None else 0,
            "sim_time_s": cloud.sim.now,
        })
        return metrics
    finally:
        if ctx.trace and cloud.tracer is not None:
            cloud.write_trace(str(ctx.artifact_path("trace.jsonl")))


# -- built-in: partition chaos / split-brain safety ---------------------------


@register_scenario("partition_chaos")
def partition_chaos(ctx: RunContext) -> Dict[str, Any]:
    """Partition one fat-tree pod under load; measure split-brain safety.

    A scripted :class:`~repro.faults.FaultSchedule` partition isolates
    one pod -- its hosts *and* its edge/aggregation switches -- from the
    rest of the fabric (pimaster included) for ``partition_s`` seconds,
    then heals.  Nothing is powered off: the partitioned replicas keep
    running, which is exactly the split-brain hazard.  The grid sweeps

    * ``partition_s`` -- how long the pod is dark;
    * ``unreachable_grace_s`` -- gen-2 detector grace before an
      UNREACHABLE node may be declared DEAD (grace > partition means no
      evacuation at all);
    * ``fencing`` -- whether spawns carry fencing epochs and the heal
      reconciles duplicates (``duplicate_container_epochs`` counts the
      *unresolved* duplicates, so it must be 0 whenever fencing is on).

    A Poisson session load runs throughout, so the partition's
    user-visible cost shows up as SLO burn, not just control-plane
    counters.
    """
    from repro.core.cloud import PiCloud
    from repro.core.config import HealthConfig, PiCloudConfig, TraceConfig
    from repro.faults import FaultSchedule
    from repro.load import LoadEngine, PoissonArrivals, Service, SloObjective

    p = ctx.param
    partition_s = float(p("partition_s", 60.0))
    grace_s = float(p("unreachable_grace_s", 30.0))
    fencing = bool(p("fencing", True))
    pod = int(p("pod", 0))
    k = int(p("fat_tree_k", 4))
    config = PiCloudConfig(
        num_racks=int(p("racks", 4)), pis_per_rack=int(p("pis", 4)),
        topology="fat-tree", fat_tree_k=k,
        routing=str(p("routing", "ecmp")), seed=ctx.seed,
        start_monitoring=False,
        health=HealthConfig(
            enabled=True,
            heartbeat_interval_s=float(p("heartbeat_interval_s", 2.0)),
            heartbeat_timeout_s=float(p("heartbeat_timeout_s", 1.0)),
            suspect_after_misses=int(p("suspect_after_misses", 2)),
            dead_after_misses=int(p("dead_after_misses", 3)),
            unreachable_grace_s=grace_s,
            fencing=fencing,
        ),
        trace=TraceConfig(enabled=ctx.trace),
        budget=ctx.budget,
    )
    cloud = PiCloud(config)
    cloud.boot()
    try:
        for index in range(int(p("web_containers", 8))):
            cloud.spawn_and_wait("webserver", name=f"web{index}", group="web")

        # Pre-warm the image cache fleet-wide so evacuation respawns are
        # container-create-fast: the experiment measures detector and
        # fencing policy, not SD-card image-push time.  (It also makes
        # the split-brain window realistic -- production fleets have the
        # image everywhere.)
        from repro.mgmt.distribution import ImageDistributor

        warmed = ImageDistributor(cloud.pimaster).distribute_peer_assisted(
            "webserver"
        )
        cloud.run_until_signal(warmed, max_seconds=86_400.0)

        rack_name = f"pod{pod}"
        members = sorted(
            node for node, data in cloud.topology.graph.nodes(data=True)
            if data.get("rack") == rack_name
        )
        if not members:
            raise CampaignError(f"topology has no pod {rack_name!r}")

        service = Service(
            "web",
            slo=SloObjective(
                threshold_s=float(p("slo_ms", 250.0)) / 1e3,
                objective=float(p("objective", 0.999)),
            ),
        )
        engine = LoadEngine(
            cloud, [service],
            PoissonArrivals(float(p("arrival_rate", 20.0))),
        )

        settle_s = float(p("settle_s", 20.0))
        # Drain long enough for the grace to expire, any evacuation to
        # respawn, and the heal-time reconcile to finish.
        drain_s = float(p("drain_s", 2.0 * grace_s + 60.0))
        t0 = cloud.sim.now
        schedule = FaultSchedule(cloud)
        schedule.partition(t0 + settle_s, [members])
        schedule.heal_partition(t0 + settle_s + partition_s)
        schedule.arm()

        duration_s = settle_s + partition_s + drain_s
        events_before = cloud.sim.events_executed
        report = engine.run(duration_s)

        pimaster = cloud.pimaster
        health = pimaster.health
        recovery = pimaster.recovery
        metrics = report.metrics()
        metrics.update({
            "partition_s": partition_s,
            "unreachable_grace_s": grace_s,
            "fencing": fencing,
            "pod_members": len(members),
            "duplicate_container_epochs": pimaster.duplicate_container_epochs,
            "false_dead_evacuations": pimaster.false_dead_evacuations,
            "reconciles": pimaster.reconciles,
            "fencing_epoch": pimaster.fencing_epoch,
            "unreachable_s": health.unreachable_seconds(),
            "witness_probes": health.witness_probes,
            "witness_confirmations": health.witness_confirmations,
            "evacuations": recovery.evacuations,
            "containers_evacuated": recovery.containers_evacuated,
            "containers_respawned": recovery.containers_respawned,
            "unschedulable": len(recovery.unschedulable),
            "stale_epoch_rejections": sum(
                daemon.stale_epoch_rejections
                for daemon in cloud.daemons.values()
            ),
            "kernel_events": cloud.sim.events_executed - events_before,
            "sim_time_s": cloud.sim.now,
        })
        return metrics
    finally:
        if ctx.trace and cloud.tracer is not None:
            cloud.write_trace(str(ctx.artifact_path("trace.jsonl")))


# -- built-in: congestion-control contrast -----------------------------------


def run_cc_contrast(
    *,
    rate_model: str = "cc",
    protocol: str = "reno",
    hosts: int = 224,
    fat_tree_k: int = 10,
    senders: int = 8,
    flow_bytes: float = 60e6,
    duration_s: float = 12.0,
    start_jitter_s: float = 0.0,
    seed: int = 0,
) -> Dict[str, Any]:
    """Drive the many-senders-one-receiver contrast workload on a bare
    fat-tree fabric and report goodput plus queue health.

    The single source of truth for the congestion-control contrast:
    the ``cc_contrast`` campaign scenario, ``examples/dctcp_vs_reno.py``
    and ``tests/test_cc.py`` all call this, so the committed spec, the
    example's printed table, and the acceptance assertions measure the
    exact same workload.

    ``senders`` hosts each push ``flow_bytes`` to one receiver.  With
    ``start_jitter_s`` > 0 each start is offset by a seeded uniform
    draw in ``[0, start_jitter_s)`` -- the incast cells use this so
    different seeds genuinely differ while any one seed reproduces
    byte-identically.  No other randomness exists in the cc path.
    """
    from repro.core.config import RateModelConfig
    from repro.netsim.fabric import Network
    from repro.netsim.routing import EcmpRouting
    from repro.netsim.topology import fat_tree
    from repro.sim.kernel import Simulator

    if senders >= hosts:
        raise CampaignError(
            f"need senders < hosts, got {senders} >= {hosts}"
        )
    host_names = [f"h{i:03d}" for i in range(int(hosts))]
    sim = Simulator()
    topo = fat_tree(int(fat_tree_k), hosts=host_names)
    model = RateModelConfig(model=rate_model, protocol=protocol).build()
    net = Network(
        sim, topo, path_service=EcmpRouting(sim, topo), rate_model=model
    )

    dst = host_names[0]
    rng = random.Random(seed)
    flows: List[Any] = []

    def start(src: str) -> None:
        # Stable flow_key: the default (the global flow id) would make
        # ECMP path choice depend on how many flows ran earlier in this
        # process, so arms of a contrast would see different paths.
        flows.append(net.transfer(
            src, dst, float(flow_bytes), flow_key=f"cc:{src}", tag="cc"
        ))

    for src in host_names[1:int(senders) + 1]:
        if start_jitter_s > 0.0:
            sim.schedule(rng.uniform(0.0, start_jitter_s), start, src)
        else:
            start(src)
    sim.run(until=float(duration_s))
    net.sync()

    delivered = sum(f.size - f.remaining for f in flows)
    metrics = net.queue_metrics()
    return {
        "completed": sum(1 for f in flows if f.remaining <= 0.0),
        "delivered_bytes": delivered,
        "goodput_bytes_per_s": delivered / float(duration_s),
        "queue_depth_p99": metrics["queue_depth_p99"],
        "queue_depth_peak": metrics["queue_depth_peak"],
        "ecn_mark_frac": metrics["ecn_mark_frac"],
        "dropped_bytes": metrics["dropped_bytes"],
        "drop_events": metrics["drop_events"],
        "recomputes": net.recomputes,
        "sim_time_s": sim.now,
    }


# Workload cells: senders x per-flow bytes x start jitter.  "elephants"
# is a handful of long-lived flows; "incast" is a synchronised burst of
# small ones (the jitter window is what the seed perturbs).
CC_WORKLOADS = {
    "elephants": (8, 60e6, 0.0),
    "incast": (32, 2e6, 0.005),
}


@register_scenario("cc_contrast")
def cc_contrast(ctx: RunContext) -> Dict[str, Any]:
    """Campaign wrapper over :func:`run_cc_contrast`.

    Grid axes: ``rate_model`` x ``protocol`` x ``workload`` (see
    :data:`CC_WORKLOADS`); ``specs/cc_contrast.yaml`` sweeps it and CI's
    ``cc-smoke`` job runs that spec.
    """
    p = ctx.param
    workload = str(p("workload", "elephants"))
    if workload not in CC_WORKLOADS:
        raise CampaignError(
            f"unknown cc workload {workload!r}; known: {sorted(CC_WORKLOADS)}"
        )
    senders, flow_bytes, jitter = CC_WORKLOADS[workload]
    return run_cc_contrast(
        rate_model=str(p("rate_model", "cc")),
        protocol=str(p("protocol", "reno")),
        hosts=int(p("hosts", 54)),
        fat_tree_k=int(p("fat_tree_k", 6)),
        senders=int(p("senders", senders)),
        flow_bytes=float(p("flow_bytes", flow_bytes)),
        duration_s=float(p("duration_s", 8.0)),
        start_jitter_s=float(p("start_jitter_s", jitter)),
        seed=ctx.seed,
    )
