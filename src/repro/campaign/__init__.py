"""Experiment campaigns: declarative grids, fan-out, results, dashboards.

The paper's point is that a scale model makes infrastructure *experiment
campaigns* cheap and repeatable.  This package is that leverage layer:

* :class:`CampaignSpec` (``spec.py``) -- a parameter grid over a named
  scenario, loaded from a small YAML/JSON file or a dict.
* the scenario registry (``scenarios.py``) -- built-in
  ``availability_mtbf`` and ``scale_perf`` bodies, plus dotted-path
  refs for scenarios defined outside the library.
* :class:`CampaignRunner` / :func:`run_campaign` (``runner.py``) --
  fan runs out across worker processes under the kernel's run budgets,
  with per-run retry/timeout and deterministic run IDs.
* :class:`ResultStore` / :class:`RunRecord` (``store.py``) -- one
  structured JSONL record per run (+ SQLite index), tolerant of a
  killed writer.
* :func:`render_dashboard` (``dashboard.py``) -- a static HTML view of
  metric grids, per-cell sparklines, and baseline regression deltas.

CLI: ``repro campaign run specs/availability_mtbf.yaml`` /
``repro campaign report <store>``.  See ``docs/campaigns.md``.
"""

from repro.campaign.dashboard import render_dashboard
from repro.campaign.runner import CampaignResult, CampaignRunner, run_campaign
from repro.campaign.scenarios import (
    RunContext,
    register_scenario,
    registered_scenarios,
    resolve_scenario,
)
from repro.campaign.spec import CampaignSpec, RunSpec, load_spec
from repro.campaign.store import ResultStore, RunRecord

__all__ = [
    "CampaignResult",
    "CampaignRunner",
    "CampaignSpec",
    "ResultStore",
    "RunContext",
    "RunRecord",
    "RunSpec",
    "load_spec",
    "register_scenario",
    "registered_scenarios",
    "render_dashboard",
    "resolve_scenario",
    "run_campaign",
]
