"""Static HTML dashboard for a campaign result store.

``render_dashboard`` turns a :class:`~repro.campaign.store.ResultStore`
into one self-contained HTML file: a KPI row, one metric-grid table per
numeric metric (grid axes as rows/columns, per-cell mean + a sparkline
of the individual runs), regression deltas against an optional baseline
store, and the full run table (including failed / budget-tripped runs).
No JavaScript and no network fetches -- the file is diffable, works
from a CI artifact zip, and renders identically forever.

The output is deliberately timestamp-free: rerunning the same spec with
the same seeds produces a byte-identical dashboard, so the HTML itself
can be committed or diffed like any other result.
"""

from __future__ import annotations

import html
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.campaign.store import ResultStore, RunRecord, iter_numeric_metrics

# Direction heuristics for baseline deltas: which way is an improvement.
_LOWER_BETTER = ("wall", "duration", "missed", "failure", "unschedulable",
                 "recomputes", "flows_solved",
                 "p50_ms", "p95_ms", "p99_ms", "p999_ms",
                 "burn", "error_rate", "shed", "bad_requests",
                 "duplicate", "unreachable", "false_dead",
                 "queue_depth", "ecn_mark", "dropped", "drop_events")
_HIGHER_BETTER = ("availability", "events_per_s", "throughput", "alive",
                  "running", "rejoin", "good_requests", "goodput")

_CSS = """
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --text-primary: #0b0b0b; --text-secondary: #52514e; --muted: #898781;
  --grid-line: #e1e0d9; --baseline: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6;
  --delta-good: #006300; --delta-bad: #d03b3b;
  --status-good: #0ca30c; --status-warning: #fab219;
  --status-serious: #ec835a; --status-critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19; --page: #0d0d0d;
    --text-primary: #ffffff; --text-secondary: #c3c2b7; --muted: #898781;
    --grid-line: #2c2c2a; --baseline: #383835;
    --border: rgba(255,255,255,0.10);
    --series-1: #3987e5;
    --delta-good: #0ca30c; --delta-bad: #e66767;
  }
}
:root[data-theme="dark"] .viz-root {
  color-scheme: dark;
  --surface-1: #1a1a19; --page: #0d0d0d;
  --text-primary: #ffffff; --text-secondary: #c3c2b7; --muted: #898781;
  --grid-line: #2c2c2a; --baseline: #383835;
  --border: rgba(255,255,255,0.10);
  --series-1: #3987e5;
  --delta-good: #0ca30c; --delta-bad: #e66767;
}
.viz-root {
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--page); color: var(--text-primary);
  margin: 0; padding: 24px; min-height: 100vh;
}
.viz-root h1 { font-size: 22px; margin: 0 0 4px; }
.viz-root h2 { font-size: 15px; margin: 28px 0 8px; }
.viz-root .sub { color: var(--text-secondary); font-size: 13px; margin: 0 0 16px; }
.kpis { display: flex; gap: 12px; flex-wrap: wrap; margin: 16px 0; }
.tile {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 10px 16px; min-width: 110px;
}
.tile .label { font-size: 12px; color: var(--text-secondary); }
.tile .value { font-size: 24px; font-weight: 600; }
table.grid, table.runs {
  border-collapse: collapse; background: var(--surface-1);
  border: 1px solid var(--border); border-radius: 8px; font-size: 13px;
}
table.grid th, table.grid td, table.runs th, table.runs td {
  padding: 6px 12px; border-bottom: 1px solid var(--grid-line);
  text-align: left; vertical-align: middle;
}
table.grid th, table.runs th {
  color: var(--text-secondary); font-weight: 500; font-size: 12px;
}
table.runs td { font-variant-numeric: tabular-nums; }
.cell-val { font-weight: 600; font-variant-numeric: tabular-nums; }
.delta { font-size: 11px; margin-left: 6px; color: var(--text-secondary);
         font-variant-numeric: tabular-nums; }
.delta.good { color: var(--delta-good); }
.delta.bad { color: var(--delta-bad); }
.spark { vertical-align: middle; margin-left: 8px; }
.status { font-size: 12px; white-space: nowrap; }
.status .dot { display: inline-block; width: 8px; height: 8px;
               border-radius: 50%; margin-right: 5px; }
.err { color: var(--text-secondary); font-size: 12px; max-width: 480px;
       overflow-wrap: anywhere; }
.mono { font-family: ui-monospace, monospace; font-size: 12px; }
"""

_STATUS_BADGES = {
    "ok": ("var(--status-good)", "✓ ok"),
    "failed": ("var(--status-critical)", "✕ failed"),
    "budget-exceeded": ("var(--status-serious)", "⏱ budget-exceeded"),
    "timeout": ("var(--status-serious)", "⏱ timeout"),
    "crashed": ("var(--status-critical)", "✕ crashed"),
}


def _fmt(value) -> str:
    """Compact numeric formatting: 1,284 / 12.9K / 4.2M / 0.9983."""
    if value is None:
        return "—"
    if isinstance(value, bool):
        return str(value).lower()
    if isinstance(value, int):
        if abs(value) >= 1_000_000:
            return f"{value / 1e6:.1f}M"
        if abs(value) >= 10_000:
            return f"{value / 1e3:.1f}K"
        return f"{value:,}"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 10_000:
            return _fmt(round(value))
        return f"{value:.4g}"
    return html.escape(str(value))


def _direction(metric: str) -> int:
    """+1 when up is good, -1 when down is good, 0 when unknown."""
    name = metric.lower()
    if any(tag in name for tag in _HIGHER_BETTER):
        return 1
    if any(tag in name for tag in _LOWER_BETTER):
        return -1
    return 0


def _delta_html(metric: str, old: Optional[float],
                new: Optional[float]) -> str:
    if old is None or new is None or old == new:
        return ""
    if old == 0:
        text = f"{new - old:+.3g} vs baseline"
        return f'<span class="delta">{text}</span>'
    pct = (new - old) / abs(old) * 100.0
    arrow = "▲" if pct > 0 else "▼"
    direction = _direction(metric)
    cls = "delta"
    if direction:
        good = (pct > 0) == (direction > 0)
        cls += " good" if good else " bad"
    return (f'<span class="{cls}" title="baseline {_fmt(old)}">'
            f"{arrow} {abs(pct):.1f}%</span>")


def _sparkline(values: Sequence[float], labels: Sequence[str]) -> str:
    """Inline SVG sparkline: 2px line, >=8px end marker, surface ring."""
    points = [v for v in values if isinstance(v, (int, float))]
    if len(points) < 2:
        return ""
    width, height, pad = 110, 26, 5
    lo, hi = min(points), max(points)
    span = (hi - lo) or 1.0
    step = (width - 2 * pad) / (len(points) - 1)
    coords = [
        (pad + i * step,
         height - pad - (v - lo) / span * (height - 2 * pad))
        for i, v in enumerate(points)
    ]
    poly = " ".join(f"{x:.1f},{y:.1f}" for x, y in coords)
    tooltip = html.escape("; ".join(
        f"{label}: {_fmt(value)}" for label, value in zip(labels, points)
    ))
    end_x, end_y = coords[-1]
    return (
        f'<svg class="spark" width="{width}" height="{height}" '
        f'role="img" aria-label="{tooltip}">'
        f"<title>{tooltip}</title>"
        f'<polyline points="{poly}" fill="none" stroke="var(--series-1)" '
        f'stroke-width="2" stroke-linejoin="round" stroke-linecap="round"/>'
        f'<circle cx="{end_x:.1f}" cy="{end_y:.1f}" r="4" '
        f'fill="var(--series-1)" stroke="var(--surface-1)" stroke-width="2"/>'
        f"</svg>"
    )


def _axis_values(records: Sequence[RunRecord], axis: str) -> List:
    seen = []
    for record in records:
        value = record.cell.get(axis)
        if value not in seen:
            seen.append(value)
    try:
        return sorted(seen)
    except TypeError:  # mixed types: keep first-seen order
        return seen


def _pick_axes(records: Sequence[RunRecord]) -> Tuple[Optional[str], Optional[str]]:
    axes = sorted({axis for record in records for axis in record.cell})
    if not axes:
        return None, None
    ranked = sorted(axes, key=lambda a: (-len(_axis_values(records, a)), a))
    row = ranked[0]
    col = ranked[1] if len(ranked) > 1 else None
    return row, col


def _metric_grid(metric: str, records: Sequence[RunRecord],
                 baseline: Optional[Dict[str, RunRecord]]) -> str:
    """One metric's grid table: row axis x column axis, sparkline per cell."""
    ok = [r for r in records if r.ok and metric in r.metrics]
    if not ok:
        return ""
    row_axis, col_axis = _pick_axes(ok)
    row_values = _axis_values(ok, row_axis) if row_axis else [None]
    col_values = _axis_values(ok, col_axis) if col_axis else [None]

    def cell_records(row_value, col_value) -> List[RunRecord]:
        out = [
            r for r in ok
            if (row_axis is None or r.cell.get(row_axis) == row_value)
            and (col_axis is None or r.cell.get(col_axis) == col_value)
        ]
        out.sort(key=lambda r: (json.dumps(r.cell, sort_keys=True), r.seed))
        return out

    head_cells = "".join(
        f"<th>{html.escape(col_axis)}={_fmt(v)}</th>" if col_axis
        else f"<th>{html.escape(metric)}</th>"
        for v in col_values
    )
    corner = html.escape(row_axis) if row_axis else ""
    rows_html = []
    for row_value in row_values:
        cells = []
        for col_value in col_values:
            group = cell_records(row_value, col_value)
            if not group:
                cells.append("<td>—</td>")
                continue
            values = [r.metrics[metric] for r in group]
            numeric = [v for v in values
                       if isinstance(v, (int, float))
                       and not isinstance(v, bool)]
            mean = sum(numeric) / len(numeric) if numeric else None
            base_mean = None
            if baseline:
                base_vals = [
                    baseline[r.run_id].metrics.get(metric)
                    for r in group if r.run_id in baseline
                ]
                base_nums = [v for v in base_vals
                             if isinstance(v, (int, float))
                             and not isinstance(v, bool)]
                if base_nums:
                    base_mean = sum(base_nums) / len(base_nums)
            labels = [f"seed {r.seed}" for r in group]
            cells.append(
                '<td><span class="cell-val">'
                f"{_fmt(mean if mean is not None else values[0])}</span>"
                f"{_delta_html(metric, base_mean, mean)}"
                f"{_sparkline(numeric, labels)}</td>"
            )
        label = (f"<th>{html.escape(row_axis)}={_fmt(row_value)}</th>"
                 if row_axis else "<th></th>")
        rows_html.append(f"<tr>{label}{''.join(cells)}</tr>")
    return (
        f"<h2>{html.escape(metric)}</h2>"
        '<table class="grid"><thead>'
        f"<tr><th>{corner}</th>{head_cells}</tr></thead>"
        f"<tbody>{''.join(rows_html)}</tbody></table>"
    )


def _status_badge(status: str) -> str:
    color, label = _STATUS_BADGES.get(
        status, ("var(--muted)", html.escape(status))
    )
    return (f'<span class="status"><span class="dot" '
            f'style="background:{color}"></span>{label}</span>')


def _runs_table(records: Sequence[RunRecord]) -> str:
    rows = []
    for record in sorted(records, key=lambda r: (r.index, r.seed)):
        cell = ", ".join(
            f"{k}={_fmt(v)}" for k, v in sorted(record.cell.items())
        ) or "—"
        error = (f'<div class="err">{html.escape(record.error)}</div>'
                 if record.error else "")
        rows.append(
            "<tr>"
            f'<td class="mono">{html.escape(record.run_id)}</td>'
            f"<td>{html.escape(cell)}</td>"
            f"<td>{record.seed}</td>"
            f"<td>{_status_badge(record.status)}</td>"
            f"<td>{record.attempts}</td>"
            f"<td>{record.duration_s:.1f}s</td>"
            f"<td>{len(record.artifacts)}{error}</td>"
            "</tr>"
        )
    return (
        "<h2>All runs</h2>"
        '<table class="runs"><thead><tr>'
        "<th>run</th><th>cell</th><th>seed</th><th>status</th>"
        "<th>attempts</th><th>wall</th><th>artifacts</th>"
        f"</tr></thead><tbody>{''.join(rows)}</tbody></table>"
    )


def _regressions(records: Sequence[RunRecord],
                 baseline: Dict[str, RunRecord]) -> str:
    rows = []
    for record in sorted(records, key=lambda r: (r.index, r.seed)):
        base = baseline.get(record.run_id)
        if base is None:
            continue
        for metric in sorted(set(record.metrics) | set(base.metrics)):
            old = base.metrics.get(metric)
            new = record.metrics.get(metric)
            if old == new:
                continue
            rows.append(
                "<tr>"
                f'<td class="mono">{html.escape(record.run_id)}</td>'
                f"<td>{html.escape(metric)}</td>"
                f"<td>{_fmt(old)}</td><td>{_fmt(new)}</td>"
                f"<td>{_delta_html(metric, old, new) or '—'}</td>"
                "</tr>"
            )
    if not rows:
        return ("<h2>Baseline comparison</h2>"
                '<p class="sub">No metric changed against the baseline '
                "store.</p>")
    return (
        "<h2>Baseline comparison</h2>"
        f'<p class="sub">{len(rows)} metric value(s) differ from the '
        "baseline store.</p>"
        '<table class="runs"><thead><tr>'
        "<th>run</th><th>metric</th><th>baseline</th><th>current</th>"
        f"<th>delta</th></tr></thead><tbody>{''.join(rows)}</tbody></table>"
    )


def render_dashboard(
    store: Union[ResultStore, Sequence[RunRecord]],
    path: Union[str, Path],
    baseline: Optional[ResultStore] = None,
    title: Optional[str] = None,
) -> str:
    """Render the store to a self-contained HTML file; returns the path."""
    records = list(store.records() if isinstance(store, ResultStore)
                   else store)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)

    campaign = records[0].campaign if records else "(empty campaign)"
    scenario = records[0].scenario if records else ""
    title = title or f"campaign: {campaign}"
    ok = [r for r in records if r.ok]
    cells = {json.dumps(r.cell, sort_keys=True) for r in records}
    base_by_id = baseline.by_run_id() if baseline is not None else None

    tiles = [
        ("runs", f"{len(records):,}"),
        ("ok", f"{len(ok):,}"),
        ("not ok", f"{len(records) - len(ok):,}"),
        ("grid cells", f"{len(cells):,}"),
        ("seeds", f"{len({r.seed for r in records}):,}"),
    ]
    tiles_html = "".join(
        f'<div class="tile"><div class="label">{html.escape(label)}</div>'
        f'<div class="value">{value}</div></div>'
        for label, value in tiles
    )

    sections = [
        _metric_grid(metric, records, base_by_id)
        for metric in iter_numeric_metrics(ok)
    ]
    body = [
        f"<h1>{html.escape(title)}</h1>",
        f'<p class="sub">scenario <span class="mono">'
        f"{html.escape(scenario)}</span> · one record per run; failed "
        "and budget-tripped runs stay in the store.</p>",
        f'<div class="kpis">{tiles_html}</div>',
        *sections,
    ]
    if base_by_id is not None:
        body.append(_regressions(records, base_by_id))
    body.append(_runs_table(records))

    document = (
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">"
        f"<title>{html.escape(title)}</title>"
        f"<style>{_CSS}</style></head>"
        f'<body class="viz-root">{"".join(body)}</body></html>\n'
    )
    path.write_text(document, encoding="utf-8")
    return str(path)
