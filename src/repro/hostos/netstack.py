"""Per-host IP networking over the fabric: addresses, ports, messages.

The :class:`IpFabric` is the glue between IP-level endpoints (hosts and
bridged containers, each with an address) and the flow-level
:class:`~repro.netsim.fabric.Network`.  A container's veth interface is
bridged onto its host's physical NIC (paper §II-B: "bridging or NATing
the virtual hosts to the physical network"), so container traffic shares
the host's access link -- which is exactly how consolidation pressure
turns into link congestion.

The socket model is message-oriented: ``send(msg)`` creates one fabric
flow of the message's size; delivery lands the message in the listener's
mailbox.  REST, HTTP workloads, MapReduce shuffles and migration streams
are all built from these messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.errors import AddressError, ConnectionRefusedError, NetworkError
from repro.netsim.fabric import Network
from repro.sim.kernel import Simulator
from repro.sim.process import Signal
from repro.sim.resources import Store

EPHEMERAL_PORT_START = 32768


@dataclass
class Message:
    """One application message (request or response)."""

    src_ip: str
    src_port: int
    dst_ip: str
    dst_port: int
    payload: Any
    size: int
    sent_at: float = 0.0
    delivered_at: float = 0.0

    @property
    def reply_address(self) -> Tuple[str, int]:
        return (self.src_ip, self.src_port)


@dataclass
class _Endpoint:
    """Registry row: where an IP address physically lives."""

    stack: "NetStack"
    node_id: str


class IpFabric:
    """The IP address registry spanning the whole PiCloud."""

    def __init__(self, sim: Simulator, network: Network) -> None:
        self.sim = sim
        self.network = network
        self._endpoints: Dict[str, _Endpoint] = {}

    def register(self, ip: str, stack: "NetStack", node_id: str) -> None:
        if ip in self._endpoints:
            raise AddressError(f"IP {ip} already registered")
        if node_id not in self.network.topology.graph:
            raise NetworkError(f"node {node_id!r} not in the fabric")
        self._endpoints[ip] = _Endpoint(stack, node_id)

    def unregister(self, ip: str) -> None:
        self._endpoints.pop(ip, None)

    def locate(self, ip: str) -> _Endpoint:
        try:
            return self._endpoints[ip]
        except KeyError:
            raise AddressError(f"no endpoint with IP {ip}") from None

    def is_registered(self, ip: str) -> bool:
        return ip in self._endpoints

    def move(self, ip: str, new_stack: "NetStack", new_node_id: str) -> None:
        """Re-home an address (live migration keeps the container's IP)."""
        if ip not in self._endpoints:
            raise AddressError(f"cannot move unknown IP {ip}")
        if new_node_id not in self.network.topology.graph:
            raise NetworkError(f"node {new_node_id!r} not in the fabric")
        self._endpoints[ip] = _Endpoint(new_stack, new_node_id)


class NetStack:
    """One host's (or container's) IP stack: bound addresses + port table."""

    def __init__(self, sim: Simulator, fabric: IpFabric, node_id: str, name: str = "") -> None:
        self.sim = sim
        self.fabric = fabric
        self.node_id = node_id
        self.name = name or node_id
        self.addresses: list[str] = []
        self._listeners: Dict[Tuple[str, int], Store] = {}
        self._next_ephemeral = EPHEMERAL_PORT_START
        # Per-source-IP egress shaping (tc-style soft limits), bytes/s.
        self._rate_caps: Dict[str, float] = {}

    # -- addressing ---------------------------------------------------------

    def bind_address(self, ip: str) -> None:
        """Attach an IP to this stack (host address or bridged container)."""
        self.fabric.register(ip, self, self.node_id)
        self.addresses.append(ip)

    def unbind_address(self, ip: str) -> None:
        if ip in self.addresses:
            self.addresses.remove(ip)
            self.fabric.unregister(ip)

    def reset(self) -> None:
        """Tear the stack down: unbind every address, drop ports and caps.

        Used when a failed node is re-imaged -- its old stack must stop
        claiming fabric addresses so the replacement kernel can bind
        fresh ones without collisions.
        """
        for ip in list(self.addresses):
            self.unbind_address(ip)
        self._listeners.clear()
        self._rate_caps.clear()

    @property
    def primary_ip(self) -> str:
        if not self.addresses:
            raise AddressError(f"stack {self.name!r} has no bound address")
        return self.addresses[0]

    def ephemeral_port(self) -> int:
        port = self._next_ephemeral
        self._next_ephemeral += 1
        return port

    # -- egress shaping -------------------------------------------------------

    def set_rate_cap(self, ip: str, bytes_per_s: Optional[float]) -> None:
        """Cap (or uncap, with None) traffic *sent from* ``ip``.

        The tc-equivalent behind per-VM network limits: every flow whose
        source is ``ip`` is rate-limited at the sender, regardless of how
        much fabric capacity is free.
        """
        if bytes_per_s is None:
            self._rate_caps.pop(ip, None)
            return
        if bytes_per_s <= 0:
            raise NetworkError(f"rate cap for {ip} must be positive")
        self._rate_caps[ip] = bytes_per_s

    def rate_cap(self, ip: str) -> Optional[float]:
        return self._rate_caps.get(ip)

    # -- listening -----------------------------------------------------------

    def listen(self, port: int, ip: Optional[str] = None) -> Store:
        """Open a mailbox for ``(ip, port)``; returns the inbox Store."""
        address = ip or self.primary_ip
        if address not in self.addresses:
            raise AddressError(f"stack {self.name!r} does not own {address}")
        key = (address, port)
        if key in self._listeners:
            raise AddressError(f"{address}:{port} already has a listener")
        inbox = Store(self.sim, name=f"{self.name}:{port}")
        self._listeners[key] = inbox
        return inbox

    def close(self, port: int, ip: Optional[str] = None) -> None:
        address = ip or self.primary_ip
        self._listeners.pop((address, port), None)

    def listener_for(self, ip: str, port: int) -> Optional[Store]:
        return self._listeners.get((ip, port))

    def transfer_listeners(self, ip: str, to_stack: "NetStack") -> int:
        """Move every mailbox bound to ``ip`` onto another stack.

        Live migration uses this at switchover: the container's open
        server sockets (and any queued messages in them) travel with it.
        Returns the number of listeners moved.
        """
        moved = 0
        for key in [k for k in self._listeners if k[0] == ip]:
            to_stack._listeners[key] = self._listeners.pop(key)
            moved += 1
        return moved

    def rekey_listeners(self, old_ip: str, new_ip: str) -> int:
        """Re-address every mailbox from ``old_ip`` to ``new_ip`` in place.

        Used when a running container is re-leased (the IP-full migration
        mode): its server sockets keep their ports under the new address.
        """
        moved = 0
        for ip, port in [k for k in self._listeners if k[0] == old_ip]:
            self._listeners[(new_ip, port)] = self._listeners.pop((old_ip, port))
            moved += 1
        return moved

    # -- sending ----------------------------------------------------------------

    def send(
        self,
        dst_ip: str,
        dst_port: int,
        payload: Any,
        size: int,
        src_ip: Optional[str] = None,
        src_port: Optional[int] = None,
        flow_key: Any = None,
        tag: str = "",
        parent=None,
    ) -> Signal:
        """Transmit a message; the Signal fires with it once delivered.

        Fails with :class:`ConnectionRefusedError` if nothing listens on
        the destination, or a :class:`~repro.errors.NetworkError` if the
        fabric cannot carry the flow.  ``parent`` attributes the carrying
        flow to a causal trace (see :mod:`repro.trace`).
        """
        message = Message(
            src_ip=src_ip or self.primary_ip,
            src_port=src_port if src_port is not None else self.ephemeral_port(),
            dst_ip=dst_ip,
            dst_port=dst_port,
            payload=payload,
            size=size,
            sent_at=self.sim.now,
        )
        done = Signal(self.sim, name=f"{self.name}.send")
        try:
            destination = self.fabric.locate(dst_ip)
        except AddressError as exc:
            done.fail(exc)
            return done
        inbox = destination.stack.listener_for(dst_ip, dst_port)
        if inbox is None:
            done.fail(
                ConnectionRefusedError(f"nothing listening on {dst_ip}:{dst_port}")
            )
            return done

        key = flow_key if flow_key is not None else (
            message.src_ip, message.src_port, dst_ip, dst_port
        )
        flow = self.fabric.network.transfer(
            self.node_id,
            destination.node_id,
            size,
            flow_key=key,
            rate_cap=self._rate_caps.get(message.src_ip),
            tag=tag or f"msg:{dst_ip}:{dst_port}",
            parent=parent,
        )

        def on_flow(sig: Signal) -> None:
            exc = sig.exception
            if exc is not None:
                done.fail(exc)
                return
            message.delivered_at = self.sim.now
            # Listener may have closed while in flight.
            live_inbox = destination.stack.listener_for(dst_ip, dst_port)
            if live_inbox is None:
                done.fail(
                    ConnectionRefusedError(
                        f"listener on {dst_ip}:{dst_port} closed mid-flight"
                    )
                )
                return
            live_inbox.put(message)
            done.succeed(message)

        flow.done.add_done_callback(on_flow)
        return done

    def reply(self, request: Message, payload: Any, size: int, tag: str = "",
              parent=None) -> Signal:
        """Send a response back to a request's source address."""
        dst_ip, dst_port = request.reply_address
        return self.send(
            dst_ip, dst_port, payload, size,
            src_ip=request.dst_ip, src_port=request.dst_port, tag=tag,
            parent=parent,
        )
