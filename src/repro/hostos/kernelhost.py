"""The host kernel: what "running Raspbian" gives one machine.

A :class:`HostKernel` assembles the OS services on a booted machine:
the fair-share CPU scheduler, the cgroup tree, the SD-card filesystem and
the IP stack.  The LXC runtime (:mod:`repro.virt.lxc`) and the per-node
management daemon (:mod:`repro.mgmt.node_daemon`) are built on this.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.errors import PiCloudError
from repro.hardware.machine import Machine
from repro.hostos.cgroup import CGroup, DEFAULT_CPU_SHARES
from repro.hostos.filesystem import FileSystem
from repro.hostos.netstack import IpFabric, NetStack
from repro.hostos.scheduler import FairShareScheduler, Task
from repro.sim.kernel import Simulator
from repro.sim.process import Signal


class HostKernel:
    """OS services for one machine: scheduler + cgroups + fs + network."""

    def __init__(
        self,
        sim: Simulator,
        machine: Machine,
        ip_fabric: IpFabric,
        node_id: Optional[str] = None,
    ) -> None:
        if not machine.is_on:
            raise PiCloudError(
                f"{machine.machine_id}: cannot start a kernel on a machine "
                f"in state {machine.state.value}"
            )
        self.sim = sim
        self.machine = machine
        self.node_id = node_id or machine.machine_id
        self.scheduler = FairShareScheduler(sim, machine.cpu, owner=machine.machine_id)
        self.filesystem = FileSystem(sim, machine.storage, owner=machine.machine_id)
        self.netstack = NetStack(sim, ip_fabric, self.node_id, name=machine.machine_id)
        self._cgroups: Dict[str, CGroup] = {}

    # -- cgroup management ---------------------------------------------------

    def create_cgroup(
        self,
        name: str,
        cpu_shares: int = DEFAULT_CPU_SHARES,
        cpu_quota: Optional[float] = None,
        memory_limit_bytes: Optional[int] = None,
    ) -> CGroup:
        if name in self._cgroups:
            raise PiCloudError(f"{self.machine.machine_id}: cgroup {name!r} exists")
        group = CGroup(
            name,
            self.machine.memory,
            cpu_shares=cpu_shares,
            cpu_quota=cpu_quota,
            memory_limit_bytes=memory_limit_bytes,
        )
        self._cgroups[name] = group
        return group

    def remove_cgroup(self, name: str) -> None:
        group = self._cgroups.pop(name, None)
        if group is None:
            raise PiCloudError(f"{self.machine.machine_id}: no cgroup {name!r}")
        if group.memory_used > 0:
            group.uncharge_memory(group.memory_used)

    def cgroup(self, name: str) -> CGroup:
        try:
            return self._cgroups[name]
        except KeyError:
            raise PiCloudError(
                f"{self.machine.machine_id}: no cgroup {name!r}"
            ) from None

    def cgroups(self) -> list[str]:
        return sorted(self._cgroups)

    # -- convenience passthroughs ---------------------------------------------

    def run_cycles(self, cycles: float, cgroup: Optional[CGroup] = None,
                   name: str = "") -> Signal:
        """Execute CPU work under an optional cgroup; Signal on completion."""
        return self.scheduler.run(cycles, cgroup, name)

    def submit(self, cycles: float, cgroup: Optional[CGroup] = None,
               name: str = "") -> Task:
        return self.scheduler.submit(cycles, cgroup, name)

    def cpu_load(self) -> float:
        """Instantaneous CPU utilisation (the Fig. 4 dashboard number)."""
        return self.machine.cpu.utilization.value

    def describe(self) -> dict[str, Any]:
        return {
            "node": self.node_id,
            "cpu_util": self.cpu_load(),
            "runnable": self.scheduler.runnable_count,
            "cgroups": self.cgroups(),
            "mem_used": self.machine.memory.used,
            "mem_capacity": self.machine.memory.capacity,
            "disk_used": self.machine.storage.used,
        }
