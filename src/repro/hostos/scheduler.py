"""Fair-share CPU scheduling: the fluid model of Linux CFS + cgroup CPU.

The scheduler implements generalized processor sharing (GPS): at any
instant, the machine's cycle throughput is divided among cgroups with
runnable tasks in proportion to their ``cpu_shares`` (capped by their
``cpu_quota``), and equally among tasks within a cgroup.  Rates are
recomputed whenever a task arrives, finishes, or a knob changes, and each
task's completion event is rescheduled -- the same event-driven fluid
technique the network fabric uses.

This is where the cross-layer fidelity the paper argues for comes from:
a container's CPU contention directly stretches request service times,
which shifts network traffic timing, which moves congestion.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.errors import SchedulingError
from repro.hardware.cpu import Cpu
from repro.hostos.cgroup import CGroup
from repro.sim.kernel import Event, Simulator
from repro.sim.process import Signal


class Task:
    """A finite piece of CPU work (``cycles``) charged to a cgroup.

    The ``done`` Signal succeeds with the task when the last cycle
    executes.  Tasks can be cancelled (e.g. their container was stopped).
    """

    _next_id = 0

    def __init__(self, scheduler: "FairShareScheduler", cycles: float,
                 cgroup: Optional[CGroup], name: str) -> None:
        Task._next_id += 1
        self.task_id = Task._next_id
        self.scheduler = scheduler
        self.cycles = float(cycles)
        self.remaining = float(cycles)
        self.cgroup = cgroup
        self.name = name or f"task{self.task_id}"
        self.done = Signal(scheduler.sim, name=f"{self.name}.done")
        self.submitted_at = scheduler.sim.now
        self.completed_at: Optional[float] = None
        self.rate = 0.0
        self._last_update = scheduler.sim.now
        self._completion_event: Optional[Event] = None

    @property
    def finished(self) -> bool:
        return self.done.triggered

    @property
    def duration(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at

    def cancel(self) -> None:
        """Abort the task; its ``done`` signal fails."""
        self.scheduler._cancel(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Task {self.name} {self.remaining:.0f}/{self.cycles:.0f}cy>"


# The root cgroup: tasks submitted without an explicit group land here.
_ROOT_SHARES = 1024


class FairShareScheduler:
    """GPS over one machine's CPU with two-level (cgroup, task) sharing."""

    def __init__(self, sim: Simulator, cpu: Cpu, owner: str = "") -> None:
        self.sim = sim
        self.cpu = cpu
        self.owner = owner
        # Insertion-ordered (dict-as-set): iteration order is submission
        # order, identical in every interpreter process.  A real set of
        # Task objects iterates in id()-hash order, which leaks memory
        # layout into float-sum ordering and event scheduling order.
        self._tasks: Dict[Task, None] = {}
        self.tasks_completed = 0
        self.tasks_cancelled = 0

    # -- submission --------------------------------------------------------

    def submit(self, cycles: float, cgroup: Optional[CGroup] = None,
               name: str = "") -> Task:
        """Queue ``cycles`` of work; returns the Task (wait on ``task.done``)."""
        if cycles < 0:
            raise SchedulingError(f"{self.owner}: cannot submit {cycles} cycles")
        task = Task(self, cycles, cgroup, name)
        if cycles == 0:
            task.completed_at = self.sim.now
            task.done.succeed(task)
            return task
        self._tasks[task] = None
        self._recompute()
        return task

    def run(self, cycles: float, cgroup: Optional[CGroup] = None,
            name: str = "") -> Signal:
        """Convenience: submit and return just the completion Signal."""
        return self.submit(cycles, cgroup, name).done

    # -- knob changes ---------------------------------------------------------

    def notify_change(self) -> None:
        """Re-balance after a cgroup knob changed (shares/quota edits)."""
        self._recompute()

    # -- internals --------------------------------------------------------------

    def _cancel(self, task: Task) -> None:
        if task.finished:
            return
        self._settle(task)
        self._detach(task)
        self.tasks_cancelled += 1
        task.done.fail(SchedulingError(f"task {task.name} cancelled"))
        self._recompute()

    def _settle(self, task: Task) -> None:
        elapsed = self.sim.now - task._last_update
        if elapsed > 0 and task.rate > 0:
            executed = min(task.remaining, task.rate * elapsed)
            task.remaining -= executed
            self.cpu.account_cycles(executed)
        task._last_update = self.sim.now

    def _detach(self, task: Task) -> None:
        self._tasks.pop(task, None)
        if task._completion_event is not None:
            task._completion_event.cancel()
            task._completion_event = None

    def _group_rates(self) -> Dict[Optional[CGroup], float]:
        """Water-fill capacity across cgroups by shares, capped by quotas."""
        capacity = self.cpu.capacity
        groups: Dict[Optional[CGroup], int] = {}
        for task in self._tasks:
            groups[task.cgroup] = groups.get(task.cgroup, 0) + 1

        weights = {
            group: (group.cpu_shares if group is not None else _ROOT_SHARES)
            for group in groups
        }
        caps = {
            group: (
                group.cpu_quota * capacity
                if group is not None and group.cpu_quota is not None
                else math.inf
            )
            for group in groups
        }
        rates: Dict[Optional[CGroup], float] = {group: 0.0 for group in groups}
        # ``groups`` is insertion-ordered off the task list, so water-fill
        # rounds visit cgroups (and sum their float weights) in the same
        # order in every process.
        active = list(groups)
        remaining = capacity
        while active and remaining > 1e-9:
            total_weight = sum(weights[g] for g in active)
            capped = []
            for group in active:
                share = remaining * weights[group] / total_weight
                if rates[group] + share >= caps[group] - 1e-9:
                    capped.append(group)
            if capped:
                for group in capped:
                    remaining -= caps[group] - rates[group]
                    rates[group] = caps[group]
                active = [g for g in active if g not in capped]
                continue
            for group in active:
                rates[group] += remaining * weights[group] / total_weight
            remaining = 0.0
        return rates

    def _recompute(self) -> None:
        for task in self._tasks:
            self._settle(task)

        group_rates = self._group_rates()
        group_counts: Dict[Optional[CGroup], int] = {}
        for task in self._tasks:
            group_counts[task.cgroup] = group_counts.get(task.cgroup, 0) + 1

        demand = 0.0
        for task in self._tasks:
            task.rate = group_rates[task.cgroup] / group_counts[task.cgroup]
            demand += task.rate
            if task._completion_event is not None:
                task._completion_event.cancel()
                task._completion_event = None
            if task.rate > 0:
                eta = task.remaining / task.rate
                task._completion_event = self.sim.schedule(eta, self._complete, task)

        self.cpu.set_utilization(demand / self.cpu.capacity if self.cpu.capacity else 0.0)

    def _complete(self, task: Task) -> None:
        if task.finished:
            return
        self._settle(task)
        if task.remaining > max(1e-6, task.cycles * 1e-9):
            # Stale wakeup or floating-point residue: re-arm completion so
            # the task always finishes (a zero rate waits for recompute).
            if task.rate > 0:
                task._completion_event = self.sim.schedule(
                    task.remaining / task.rate, self._complete, task
                )
            return
        task.remaining = 0.0
        task.completed_at = self.sim.now
        self._detach(task)
        self.tasks_completed += 1
        # Rebalance *before* waking waiters: code resumed by this task's
        # completion (e.g. a REST handler reading CPU load) must observe
        # the post-completion utilisation, not its own finished work.
        self._recompute()
        task.done.succeed(task)

    # -- reporting -----------------------------------------------------------------

    @property
    def runnable_count(self) -> int:
        return len(self._tasks)

    def load_by_cgroup(self) -> Dict[str, int]:
        """Runnable task count per cgroup name (dashboard feed)."""
        counts: Dict[str, int] = {}
        for task in self._tasks:
            key = task.cgroup.name if task.cgroup else "<root>"
            counts[key] = counts.get(key, 0) + 1
        return counts


class FifoScheduler(FairShareScheduler):
    """Run-to-completion FIFO CPU model: the ablation baseline.

    Ignores cgroup shares/quotas entirely: tasks execute one at a time at
    full speed in arrival order.  Exists to quantify what the GPS model
    buys (DESIGN.md §4): under FIFO, a long batch task head-of-line
    blocks every interactive request behind it, so service latency
    distributions are qualitatively wrong for co-located workloads.
    """

    def _group_rates(self) -> Dict[Optional[CGroup], float]:  # pragma: no cover
        raise NotImplementedError("FIFO does not use group rates")

    def _recompute(self) -> None:
        for task in self._tasks:
            self._settle(task)
        # Oldest task (by id) runs alone at full speed; the rest wait.
        running = min(self._tasks, key=lambda t: t.task_id, default=None)
        demand = 0.0
        for task in self._tasks:
            task.rate = self.cpu.capacity if task is running else 0.0
            demand += task.rate
            if task._completion_event is not None:
                task._completion_event.cancel()
                task._completion_event = None
            if task.rate > 0:
                task._completion_event = self.sim.schedule(
                    task.remaining / task.rate, self._complete, task
                )
        self.cpu.set_utilization(
            demand / self.cpu.capacity if self.cpu.capacity else 0.0
        )
