"""Host operating system layer: the "Raspbian Linux" box of the paper's Fig. 3.

Each booted machine runs a :class:`~repro.hostos.kernelhost.HostKernel`
composed of:

* :mod:`~repro.hostos.scheduler` -- a generalized-processor-sharing (GPS)
  fair-share CPU scheduler with cgroup weights and quotas, the mechanism
  behind Linux CFS + the cgroup CPU controller that LXC relies on.
* :mod:`~repro.hostos.cgroup` -- the CGROUPS resource-isolation layer the
  paper names as what makes Linux Containers possible.
* :mod:`~repro.hostos.filesystem` -- an in-memory filesystem on the SD
  card with byte-accurate capacity accounting and timed I/O.
* :mod:`~repro.hostos.netstack` -- per-host IP networking (bridged
  container addresses, ports, message sockets) on top of the fabric.
"""

from repro.hostos.cgroup import CGroup
from repro.hostos.filesystem import FileSystem
from repro.hostos.kernelhost import HostKernel
from repro.hostos.netstack import IpFabric, Message, NetStack
from repro.hostos.scheduler import FairShareScheduler, Task

__all__ = [
    "CGroup",
    "FairShareScheduler",
    "FileSystem",
    "HostKernel",
    "IpFabric",
    "Message",
    "NetStack",
    "Task",
]
