"""Control groups: the kernel mechanism behind Linux Containers.

The paper (§II-B) is explicit that LXC "is supported by the Linux kernel's
CGROUPS functionality".  A :class:`CGroup` bundles the two controllers the
PiCloud experiments exercise:

* **cpu** -- ``cpu_shares`` (relative weight under contention, default
  1024 as in Linux) and ``cpu_quota`` (a hard cap as a fraction of the
  machine's capacity; ``None`` = uncapped).  Enforced by the
  :class:`~repro.hostos.scheduler.FairShareScheduler`.
* **memory** -- ``memory_limit_bytes`` charged against the machine's RAM;
  exceeding the limit raises OOM, exactly how a container's footprint is
  bounded on a 256 MB Pi.

These are also the paper's Fig. 4 "soft per-VM resource utilisation
limits": the management API adjusts shares/quota/limits at runtime.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import OutOfMemoryError
from repro.hardware.memory import Memory
from repro.units import fmt_bytes

DEFAULT_CPU_SHARES = 1024


class CGroup:
    """One control group: CPU weight/cap plus a memory budget."""

    def __init__(
        self,
        name: str,
        memory: Memory,
        cpu_shares: int = DEFAULT_CPU_SHARES,
        cpu_quota: Optional[float] = None,
        memory_limit_bytes: Optional[int] = None,
    ) -> None:
        if cpu_shares <= 0:
            raise ValueError(f"cgroup {name!r}: cpu_shares must be positive")
        if cpu_quota is not None and not (0.0 < cpu_quota <= 1.0):
            raise ValueError(f"cgroup {name!r}: cpu_quota must be in (0, 1]")
        if memory_limit_bytes is not None and memory_limit_bytes <= 0:
            raise ValueError(f"cgroup {name!r}: memory limit must be positive")
        self.name = name
        self._machine_memory = memory
        self.cpu_shares = cpu_shares
        self.cpu_quota = cpu_quota
        self.memory_limit_bytes = memory_limit_bytes
        self._charged = 0

    # -- memory controller ---------------------------------------------------

    @property
    def memory_used(self) -> int:
        return self._charged

    @property
    def memory_available(self) -> Optional[int]:
        if self.memory_limit_bytes is None:
            return None
        return self.memory_limit_bytes - self._charged

    def charge_memory(self, nbytes: int) -> None:
        """Charge an allocation to this group (and the machine).

        Raises :class:`OutOfMemoryError` when either the group limit or
        the machine's physical RAM would be exceeded.
        """
        if nbytes < 0:
            raise ValueError("cannot charge negative memory")
        if (
            self.memory_limit_bytes is not None
            and self._charged + nbytes > self.memory_limit_bytes
        ):
            raise OutOfMemoryError(
                f"cgroup {self.name!r}: limit {fmt_bytes(self.memory_limit_bytes)} "
                f"exceeded (used {fmt_bytes(self._charged)}, "
                f"requested {fmt_bytes(nbytes)})"
            )
        label = f"cgroup:{self.name}"
        if label in self._machine_memory.allocations():
            # resize() raises OutOfMemoryError if physical RAM lacks room.
            self._machine_memory.resize(label, self._charged + nbytes)
        else:
            self._machine_memory.allocate(label, nbytes)
        self._charged += nbytes

    def uncharge_memory(self, nbytes: int) -> None:
        if nbytes < 0 or nbytes > self._charged:
            raise ValueError(
                f"cgroup {self.name!r}: cannot uncharge {nbytes} of {self._charged}"
            )
        self._charged -= nbytes
        label = f"cgroup:{self.name}"
        if self._charged == 0:
            self._machine_memory.free(label)
        else:
            self._machine_memory.resize(label, self._charged)

    # -- cpu controller knobs (Fig. 4 "soft per-VM limits") ------------------

    def set_cpu_shares(self, shares: int) -> None:
        if shares <= 0:
            raise ValueError(f"cgroup {self.name!r}: cpu_shares must be positive")
        self.cpu_shares = shares

    def set_cpu_quota(self, quota: Optional[float]) -> None:
        if quota is not None and not (0.0 < quota <= 1.0):
            raise ValueError(f"cgroup {self.name!r}: cpu_quota must be in (0, 1]")
        self.cpu_quota = quota

    def set_memory_limit(self, limit: Optional[int]) -> None:
        """Adjust the memory ceiling; cannot drop below current usage."""
        if limit is not None and limit < self._charged:
            raise OutOfMemoryError(
                f"cgroup {self.name!r}: cannot set limit {fmt_bytes(limit)} below "
                f"current usage {fmt_bytes(self._charged)}"
            )
        self.memory_limit_bytes = limit

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<CGroup {self.name} shares={self.cpu_shares} "
            f"quota={self.cpu_quota} mem={fmt_bytes(self._charged)}>"
        )
