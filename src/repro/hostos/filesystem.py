"""An in-memory filesystem over the SD-card device.

Byte-accurate capacity accounting (reserving space on the
:class:`~repro.hardware.storage.StorageDevice`) plus timed reads/writes.
Container root filesystems, images pushed by pimaster, and application
data all live here.  Paths are POSIX-style absolute strings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import StorageFullError
from repro.hardware.storage import StorageDevice
from repro.sim.kernel import Simulator
from repro.sim.process import Signal


@dataclass
class FileEntry:
    """Metadata for one stored file."""

    path: str
    size: int
    created_at: float
    modified_at: float
    metadata: dict = field(default_factory=dict)


def _normalize(path: str) -> str:
    if not path.startswith("/"):
        raise ValueError(f"path must be absolute, got {path!r}")
    parts = [p for p in path.split("/") if p]
    if any(p in (".", "..") for p in parts):
        raise ValueError(f"path may not contain '.' or '..': {path!r}")
    return "/" + "/".join(parts)


class FileSystem:
    """Flat path-indexed files with directory-prefix queries."""

    def __init__(self, sim: Simulator, device: StorageDevice, owner: str = "") -> None:
        self.sim = sim
        self.device = device
        self.owner = owner
        self._files: Dict[str, FileEntry] = {}

    # -- synchronous metadata operations -------------------------------------

    def exists(self, path: str) -> bool:
        return _normalize(path) in self._files

    def stat(self, path: str) -> FileEntry:
        normalized = _normalize(path)
        try:
            return self._files[normalized]
        except KeyError:
            raise FileNotFoundError(f"{self.owner}: no file {normalized!r}") from None

    def create(self, path: str, size: int, metadata: Optional[dict] = None) -> FileEntry:
        """Create a file *instantly* (no timed I/O): metadata-only setup.

        Use :meth:`write` when the transfer time matters.
        """
        normalized = _normalize(path)
        if normalized in self._files:
            raise FileExistsError(f"{self.owner}: {normalized!r} already exists")
        if size < 0:
            raise ValueError("file size must be >= 0")
        self.device.reserve(size)  # raises StorageFullError
        entry = FileEntry(
            path=normalized,
            size=size,
            created_at=self.sim.now,
            modified_at=self.sim.now,
            metadata=dict(metadata or {}),
        )
        self._files[normalized] = entry
        return entry

    def delete(self, path: str) -> None:
        entry = self.stat(path)
        self.device.release(entry.size)
        del self._files[entry.path]

    def truncate(self, path: str, new_size: int) -> None:
        """Grow or shrink a file's on-disk footprint."""
        entry = self.stat(path)
        if new_size < 0:
            raise ValueError("file size must be >= 0")
        delta = new_size - entry.size
        if delta > 0:
            self.device.reserve(delta)
        elif delta < 0:
            self.device.release(-delta)
        entry.size = new_size
        entry.modified_at = self.sim.now

    def listdir(self, prefix: str) -> list[FileEntry]:
        """Files whose path starts with ``prefix`` (a directory-ish query)."""
        normalized = _normalize(prefix)
        anchored = normalized if normalized.endswith("/") else normalized + "/"
        return sorted(
            (e for p, e in self._files.items() if p.startswith(anchored) or p == normalized),
            key=lambda e: e.path,
        )

    def usage(self) -> int:
        """Total bytes of all files (== device reservation held by this FS)."""
        return sum(e.size for e in self._files.values())

    def wipe(self) -> int:
        """Delete every file, releasing its device reservation.

        Models re-imaging the SD card after a node failure; returns the
        number of bytes freed.
        """
        freed = 0
        for entry in self._files.values():
            self.device.release(entry.size)
            freed += entry.size
        self._files.clear()
        return freed

    # -- timed I/O --------------------------------------------------------------

    def write(self, path: str, size: int, metadata: Optional[dict] = None) -> Signal:
        """Create+write a file; the Signal fires after the device write."""
        self.create(path, size, metadata)  # reserve space up-front
        done = Signal(self.sim, name=f"{self.owner}.fs.write")

        def run():
            try:
                yield self.device.write(size)
            except StorageFullError as exc:  # pragma: no cover - reserve caught it
                done.fail(exc)
                return
            done.succeed(self.stat(path))

        self.sim.process(run(), name=f"{self.owner}.fs.write")
        return done

    def read(self, path: str) -> Signal:
        """Timed full-file read; the Signal fires with the FileEntry."""
        entry = self.stat(path)
        done = Signal(self.sim, name=f"{self.owner}.fs.read")

        def run():
            yield self.device.read(entry.size)
            done.succeed(entry)

        self.sim.process(run(), name=f"{self.owner}.fs.read")
        return done

    def copy(self, src: str, dst: str) -> Signal:
        """Timed copy (read + write) within this filesystem.

        Models ``lxc-create`` cloning an image into a container rootfs.
        """
        entry = self.stat(src)
        self.create(dst, entry.size, dict(entry.metadata))
        done = Signal(self.sim, name=f"{self.owner}.fs.copy")

        def run():
            yield self.device.read(entry.size)
            yield self.device.write(entry.size)
            done.succeed(self.stat(dst))

        self.sim.process(run(), name=f"{self.owner}.fs.copy")
        return done
