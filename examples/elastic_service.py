#!/usr/bin/env python
"""Elastic service: the autoscaler reacting to load on the PiCloud.

Resource management is the paper's CCRM framing: provisioning
virtualised resources against incoming demand.  This example runs a
replica group under the monitoring-driven autoscaler, saturates the
replicas' hosts, and watches capacity follow demand -- then idles and
watches it shrink back.

Run:  python examples/elastic_service.py
"""

from repro import PiCloud, PiCloudConfig
from repro.mgmt.autoscaler import Autoscaler, AutoscalerConfig

config = PiCloudConfig.small(
    racks=2, pis=3, start_monitoring=True, monitoring_interval_s=5.0,
    routing="shortest",
)
cloud = PiCloud(config)
cloud.boot()

scaler = Autoscaler(cloud.pimaster, AutoscalerConfig(
    image="base", group="svc",
    min_replicas=1, max_replicas=3,
    high_watermark=0.8, low_watermark=0.1,
    interval_s=5.0, cooldown_s=20.0,
))
scaler.start()

cloud.run_for(90.0)
print(f"t={cloud.sim.now:.0f}s  replicas={len(scaler.replicas())} "
      f"(floor established)")

# Demand arrives: burn the replica hosts' CPUs for a while.
burn_tasks = []
for record in scaler.replicas():
    burn_tasks.append(cloud.kernels[record.node_id].submit(700e6 * 400))
print("load applied to replica hosts...")

cloud.run_for(300.0)
replicas_at_peak = len(scaler.replicas())
print(f"t={cloud.sim.now:.0f}s  replicas={replicas_at_peak} (scaled out)")

# Demand subsides (the burn tasks finish on their own); watch scale-in.
cloud.run_for(600.0)
print(f"t={cloud.sim.now:.0f}s  replicas={len(scaler.replicas())} "
      f"(scaled back)")

print("\nscale events:")
for event in scaler.events:
    print(f"  t={event.time:7.1f}s  {event.action:3s}  {event.replica:10s} "
          f"(observed load {event.observed_load:.2f})")

scaler.stop()
cloud.pimaster.monitoring.stop()
print(f"\n=> replicas followed demand: 1 -> {replicas_at_peak} -> "
      f"{len(scaler.replicas())}, driven entirely by polled metrics over "
      f"the management plane.")
