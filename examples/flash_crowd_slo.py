#!/usr/bin/env python
"""Headline: p99 and SLO burn under a flash crowd, with and without TE.

A million users hit a webserver pool on a fat-tree whose uplinks are
deliberately tight, via the session-level load engine (``repro.load``):
session arrivals ramp from a baseline to a viral spike, each concurrent
session offers requests, and the fluid engine books the resulting
demand onto the fabric as one flow per (service, edge, replica)
aggregate per epoch -- so the kernel cost is thousands of events, not
millions.

The run is repeated with two control planes over identical arrivals:

* ``ecmp``                -- static per-flow hashing: collisions on the
  tight uplinks persist for the whole crowd, the affected aggregates
  back up, requests shed, and the error budget burns.
* ``sdn-least-congested`` -- the SDN TE arm: load-aware path placement
  plus the Hedera-style elephant rerouter moving big aggregates off hot
  links every 0.5 s.

The same comparison at campaign scale (grid x seeds, dashboard) is
``specs/flashcrowd_slo.yaml``; the per-run body is the
``flashcrowd_slo`` scenario in ``repro.campaign.scenarios``.

Run:  python examples/flash_crowd_slo.py [--nodes 224] [--duration 120]
"""

import argparse

from repro import (
    FlashCrowdArrivals,
    LoadEngine,
    PiCloud,
    PiCloudConfig,
    Service,
    ServiceProfile,
    SloObjective,
)
from repro.campaign.scenarios import SCALES
from repro.netsim.sdn import ElephantRerouter
from repro.telemetry.stats import format_table
from repro.units import mbit_per_s


def run_arm(args, routing):
    racks, pis, k = SCALES[args.nodes]
    config = PiCloudConfig(
        num_racks=racks, pis_per_rack=pis,
        topology="fat-tree", fat_tree_k=k,
        routing=routing, seed=args.seed,
        uplink_bandwidth=mbit_per_s(args.uplink_mbps),
        start_monitoring=False,
    )
    cloud = PiCloud(config)
    cloud.boot()
    for index in range(args.replicas):
        cloud.spawn_and_wait("webserver", name=f"web{index}", group="web")

    rerouter = None
    if routing == "sdn-least-congested":
        rerouter = ElephantRerouter(
            cloud.sim, cloud.network, cloud.controller,
            interval=0.5, congestion_threshold=0.7, min_flow_bytes=1e5,
        )

    service = Service(
        "web",
        profile=ServiceProfile(
            response_bytes=2048.0,
            requests_per_session_per_s=0.1,
            session_duration_s=120.0,
        ),
        slo=SloObjective(threshold_s=0.25, objective=0.999),
    )
    arrivals = FlashCrowdArrivals(
        base_rate_per_s=500.0, peak_rate_per_s=args.peak_rate,
        start_s=10.0, ramp_s=10.0, hold_s=args.duration - 40.0, decay_s=20.0,
    )
    engine = LoadEngine(cloud, [service], arrivals)
    events_before = cloud.sim.events_executed
    report = engine.run(args.duration)
    if rerouter is not None:
        rerouter.stop()
    return report, cloud.sim.events_executed - events_before, rerouter


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=224,
                        choices=sorted(SCALES),
                        help="fat-tree size (hosts)")
    parser.add_argument("--duration", type=float, default=120.0,
                        help="simulated seconds of load")
    parser.add_argument("--peak-rate", type=float, default=25_000.0,
                        help="flash-crowd peak session arrivals per second")
    parser.add_argument("--replicas", type=int, default=50,
                        help="webserver replicas behind DNS/placement")
    parser.add_argument("--uplink-mbps", type=float, default=100.0,
                        help="fabric uplink bandwidth (tight on purpose)")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)

    rows = []
    for routing in ("ecmp", "sdn-least-congested"):
        label = ("static ECMP" if routing == "ecmp"
                 else "SDN TE (least-congested + rerouter)")
        print(f"Running {label} ...")
        report, events, rerouter = run_arm(args, routing)
        fleet = report.fleet_summary()
        web = report.services["web"]
        rows.append([
            label,
            f"{report.peak_concurrent_sessions:,.0f}",
            f"{fleet.p50 * 1e3:.1f}",
            f"{fleet.p99 * 1e3:.1f}",
            f"{fleet.p999 * 1e3:.1f}",
            f"{web.slo.burn_rate():.2f}",
            f"{web.slo.peak_burn_rate():.2f}",
            f"{web.shed_requests:,.0f}",
            f"{events:,}",
            rerouter.reroutes if rerouter is not None else 0,
        ])

    print()
    print(format_table(
        ["control plane", "peak sessions", "p50 ms", "p99 ms", "p999 ms",
         "SLO burn", "peak burn", "shed", "kernel events", "reroutes"],
        rows,
    ))
    print("\n=> the same million-user crowd, the same fabric: traffic "
          "engineering is the difference between a latency SLO that "
          "holds and an error budget burning at double-digit rates.")


if __name__ == "__main__":
    main()
