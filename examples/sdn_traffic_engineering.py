#!/usr/bin/env python
"""SDN traffic engineering on the OpenFlow aggregation layer.

The paper makes the aggregation switches OpenFlow-enabled so "control
logic [can] be dynamically defined and programmed in software" (§IV).
This example pits three controller policies against the same elephant
workload on the multi-root tree:

* static shortest path (all flows pile onto one root),
* per-flow ECMP hashing (spread, but blind to load),
* least-congested path (global view, loads checked at setup time),

and finally adds the Hedera-style elephant rerouter on top of the static
baseline to show runtime repair.

Run:  python examples/sdn_traffic_engineering.py
"""

from repro import PiCloud, PiCloudConfig
from repro.netsim.sdn import ElephantRerouter
from repro.units import mib


def elephant_storm(cloud, flows=6, size=mib(20)):
    """Launch parallel inter-rack elephants; return their transfers."""
    transfers = []
    for index in range(flows):
        src = f"pi-r0-n{index % 3}"
        dst = f"pi-r1-n{index % 3}"
        transfers.append(cloud.network.transfer(
            src, dst, size, flow_key=index, tag=f"elephant{index}"
        ))
    return transfers


def run_mode(routing, with_rerouter=False):
    config = PiCloudConfig.small(
        racks=2, pis=3, routing=routing, start_monitoring=False,
        sdn_match_granularity="flow",
    )
    cloud = PiCloud(config)
    cloud.boot()
    rerouter = None
    if with_rerouter:
        rerouter = ElephantRerouter(
            cloud.sim, cloud.network, cloud.controller,
            interval=0.5, congestion_threshold=0.7, min_flow_bytes=mib(1),
        )
    transfers = elephant_storm(cloud)
    cloud.run_for(600.0)
    if rerouter is not None:
        rerouter.stop()
        cloud.run_for(1.0)
    finish = max(t.completed_at for t in transfers)
    roots_used = {t.path[2] for t in transfers if len(t.path) > 2}
    label = routing + (" + elephant-rerouter" if with_rerouter else "")
    reroutes = rerouter.reroutes if rerouter else 0
    print(f"{label:35s} completion={finish:7.2f}s "
          f"roots used={sorted(roots_used)} reroutes={reroutes}")
    return finish


print("6 x 20 MiB inter-rack elephants on the 2-root tree:\n")
static = run_mode("sdn-shortest")
ecmp = run_mode("sdn-ecmp")
te = run_mode("sdn-least-congested")
repaired = run_mode("sdn-shortest", with_rerouter=True)

print(f"\nSpeedup over the static baseline: "
      f"ECMP {static / ecmp:.2f}x, "
      f"least-congested {static / te:.2f}x, "
      f"rerouter {static / repaired:.2f}x")
print("\n=> the centralised view (least-congested / rerouter) exploits "
      "the multi-root redundancy that static routing wastes.")
