#!/usr/bin/env python
"""Availability under stochastic node failures, as a campaign sweep.

The paper motivates the testbed with real DC failure behaviour (§I
cites Gill et al.).  This experiment closes the loop at *campaign*
scale: a 12-cell grid of MTBF node-fault processes (failure rate x
repair speed x self-healing on/off) runs across worker processes under
the kernel's run budgets, every run lands as a structured record in a
JSONL result store, and a static HTML dashboard shows the availability
and recovery grids.  The per-run body is the ``availability_mtbf``
scenario in ``repro.campaign.scenarios``: heartbeat detection,
container evacuation through the placement policy, node re-imaging and
rejoin.

Run:  python examples/availability_experiment.py
      python examples/availability_experiment.py --quick
      python -m repro campaign run specs/availability_mtbf.yaml

CI runs the committed spec directly as the ``chaos-smoke`` job and
uploads the result store + dashboard as artifacts on every run.
"""

import argparse
import sys
from pathlib import Path

from repro.campaign import load_spec, run_campaign

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_SPEC = REPO_ROOT / "specs" / "availability_mtbf.yaml"

parser = argparse.ArgumentParser(description=__doc__)
parser.add_argument("--spec", default=str(DEFAULT_SPEC),
                    help="campaign spec to run (default: the committed "
                         "specs/availability_mtbf.yaml)")
parser.add_argument("--out", default="campaign-out/availability-mtbf",
                    help="result store / dashboard directory")
parser.add_argument("--workers", type=int, default=None,
                    help="worker processes (default: from the spec)")
parser.add_argument("--quick", action="store_true",
                    help="single seed and shorter fault window (for a "
                         "fast local look)")
args = parser.parse_args()

spec = load_spec(args.spec)
if args.quick:
    from dataclasses import replace

    spec = replace(spec, seeds=spec.seeds[:1],
                   params={**spec.params, "duration_s": 300.0})

print(f"campaign {spec.name!r}: {spec.cell_count} grid cells x "
      f"{len(spec.seeds)} seed(s) = {spec.run_count} runs "
      f"(MTBF x MTTR x self-healing)")
result = run_campaign(spec, args.out, workers=args.workers)

# -- the headline table: does self-healing keep the workload alive? ------
by_cell = {}
for record in result.records:
    if not record.ok:
        continue
    key = (record.cell.get("node_mtbf_s"), record.cell.get("mttr_s"))
    bucket = by_cell.setdefault(key, {True: [], False: []})
    bucket[bool(record.cell.get("self_healing"))].append(record)


def _mean(records, metric):
    values = [r.metrics[metric] for r in records if metric in r.metrics]
    return sum(values) / len(values) if values else float("nan")


print("\nfleet availability / containers still running "
      "(mean over seeds; workload starts with 4):")
print(f"  {'MTBF':>6s} {'MTTR':>6s}   {'self-healing':>22s}   "
      f"{'no self-healing':>22s}")
for (mtbf, mttr), bucket in sorted(by_cell.items()):
    columns = []
    for healing in (True, False):
        records = bucket[healing]
        columns.append(
            f"{_mean(records, 'fleet_availability') * 100:6.2f}%  "
            f"{_mean(records, 'containers_running'):4.1f} up"
        )
    print(f"  {mtbf:6.0f} {mttr:6.0f}   {columns[0]:>22s}   {columns[1]:>22s}")

failed = result.store.failed()
if failed:
    print(f"\n{len(failed)} run(s) did not complete cleanly "
          f"(recorded in the store, not crashed):")
    for record in failed:
        print(f"  {record.run_id} {record.status}: {record.error}")

print(f"\nresult store: {result.store.path}")
if result.dashboard_path:
    print(f"dashboard:    {result.dashboard_path}")
print("\n=> nodes die and come back, containers follow the survivors, and "
      "the campaign store quantifies the whole loop across the grid.")
sys.exit(0 if result.ok else 1)
