#!/usr/bin/env python
"""Availability under stochastic node failures, with self-healing on.

The paper motivates the testbed with real DC failure behaviour (§I cites
Gill et al.).  This experiment closes the loop: an MTBF process kills
Pis while the pimaster's self-healing plane detects the deaths
(heartbeats), evacuates the lost containers through the placement
policy, and re-enrolls repaired nodes.  At the end it reports measured
per-node and fleet availability plus the recovery plane's counters.

Run:  python examples/availability_experiment.py
      python examples/availability_experiment.py --trace-out chaos.json

CI runs this as the non-blocking ``chaos-smoke`` job under the kernel's
run-budget watchdog (``--max-events`` / ``--wall-timeout``), uploading
the trace on failure.
"""

import argparse
import random
import sys

from repro import HealthConfig, PiCloud, PiCloudConfig, SimBudgetConfig, TraceConfig
from repro.errors import SimBudgetExceeded
from repro.faults import MtbfFaultInjector
from repro.mgmt.health import NodeHealth

parser = argparse.ArgumentParser(description=__doc__)
parser.add_argument("--seed", type=int, default=42)
parser.add_argument("--duration", type=float, default=900.0,
                    help="fault-campaign length in simulated seconds")
parser.add_argument("--node-mtbf", type=float, default=150.0)
parser.add_argument("--mttr", type=float, default=60.0)
parser.add_argument("--max-events", type=int, default=None,
                    help="run budget: abort after N kernel events")
parser.add_argument("--wall-timeout", type=float, default=None,
                    help="watchdog: abort after S wall-clock seconds")
parser.add_argument("--trace-out", type=str, default=None,
                    help="record a causal trace and write it here")
args = parser.parse_args()

config = PiCloudConfig.small(
    racks=2, pis=3, start_monitoring=False, routing="shortest",
    seed=args.seed,
    health=HealthConfig(
        enabled=True,
        heartbeat_interval_s=2.0, heartbeat_timeout_s=1.0,
        suspect_after_misses=2, dead_after_misses=3,
    ),
    trace=TraceConfig(enabled=args.trace_out is not None),
    budget=SimBudgetConfig(max_events=args.max_events,
                           max_wall_s=args.wall_timeout),
)
cloud = PiCloud(config)
cloud.boot()
status = 0

try:
    print("phase 1: placing a baseline workload")
    for i in range(4):
        record = cloud.spawn_and_wait("webserver", name=f"web-{i}",
                                      group="web")
        print(f"  web-{i} -> {record.node_id}")

    window_start = cloud.sim.now
    print(f"\nphase 2: MTBF node-fault campaign "
          f"(MTBF {args.node_mtbf:.0f}s, MTTR {args.mttr:.0f}s, "
          f"{args.duration:.0f}s simulated)")
    injector = MtbfFaultInjector(
        cloud, rng=random.Random(args.seed),
        node_mtbf_s=args.node_mtbf, mttr_s=args.mttr,
        duration_s=args.duration,
    )
    cloud.run_for(args.duration + 2 * args.mttr)  # drain repairs/rejoins
    injector.stop()
    window_end = cloud.sim.now

    fails = sum(1 for e in injector.log if e.kind == "node-fail")
    repairs = sum(1 for e in injector.log if e.kind == "node-repair")
    print(f"  {fails} node failures, {repairs} repairs")

    print("\nphase 3: measured availability")
    for node in cloud.node_names:
        availability = injector.availability(node, window_start, window_end)
        state = cloud.pimaster.health.state(node).value
        print(f"  {node:10s} {availability * 100:6.2f}%  ({state})")
    fleet = injector.fleet_availability(window_start, window_end)
    print(f"  fleet availability: {fleet * 100:.2f}%")

    health = cloud.pimaster.health
    recovery = cloud.pimaster.recovery
    print("\nself-healing plane:")
    print(f"  heartbeats sent/missed: {health.heartbeats_sent}"
          f"/{health.heartbeats_missed}")
    print(f"  transitions: {dict(sorted(health.transitions.items()))}")
    print(f"  evacuations: {recovery.evacuations} "
          f"({recovery.containers_evacuated} containers, "
          f"{recovery.containers_respawned} respawned, "
          f"{len(recovery.unschedulable)} unschedulable)")
    print(f"  node rejoins: {cloud.pimaster.rejoins}")

    running = sum(d.runtime.running_count() for d in cloud.daemons.values())
    alive = len(health.nodes_in(NodeHealth.ALIVE))
    print(f"\nend state: {alive}/{len(cloud.node_names)} nodes alive, "
          f"{running} containers running")
    if fleet <= 0.0 or fleet > 1.0:
        print("fleet availability out of range", file=sys.stderr)
        status = 1
    print("\n=> nodes die and come back, containers follow the survivors, "
          "and the availability number quantifies the whole loop.")
except SimBudgetExceeded as exc:
    print("simulation aborted: run budget exceeded", file=sys.stderr)
    if exc.snapshot is not None:
        print(exc.snapshot.describe(), file=sys.stderr)
    status = 3
finally:
    if args.trace_out is not None and cloud.tracer is not None:
        path = cloud.write_trace(args.trace_out)
        print(f"trace written to {path}", file=sys.stderr)

sys.exit(status)
