#!/usr/bin/env python
"""A Hadoop-style MapReduce job on the PiCloud (the paper's Fig. 3 stack).

Spawns hadoop-worker containers through the pimaster, runs a job over a
synthetic input, and reports the phase breakdown -- then repeats with
rack-local placement to show how locality shrinks the shuffle phase,
one of the placement questions §III motivates.

Run:  python examples/mapreduce_on_picloud.py
"""

from repro import PiCloud, PiCloudConfig
from repro.apps import MapReduceJob
from repro.telemetry.stats import format_table
from repro.units import mib

config = PiCloudConfig.small(racks=2, pis=3, start_monitoring=False,
                             routing="shortest")
cloud = PiCloud(config)
cloud.boot()


def run_job(tag, nodes):
    workers = []
    for index, node in enumerate(nodes):
        record = cloud.spawn_and_wait(
            "hadoop-worker", name=f"{tag}-w{index}", node_id=node
        )
        workers.append(cloud.container(record.name))
    job = MapReduceJob(workers, input_bytes=mib(64), split_bytes=mib(8),
                       reducers=2)
    done = job.run()
    cloud.run_for(7200.0)
    report = done.value
    for worker in workers:
        cloud.pimaster.destroy_container(worker.name)
        cloud.run_for(120.0)
    return report


cross_rack = run_job("wide", ["pi-r0-n0", "pi-r0-n1", "pi-r1-n0", "pi-r1-n1"])
same_rack = run_job("local", ["pi-r0-n0", "pi-r0-n1", "pi-r0-n2", "pi-r0-n0"])

rows = []
for label, report in (("cross-rack", cross_rack), ("rack-local", same_rack)):
    rows.append([
        label,
        f"{report.read_s:.1f}s",
        f"{report.map_s:.1f}s",
        f"{report.shuffle_s:.1f}s",
        f"{report.reduce_s:.1f}s",
        f"{report.total_s:.1f}s",
        f"{report.cross_host_shuffle_bytes / 1e6:.0f} MB",
    ])

print("64 MiB MapReduce on 4 hadoop-worker containers:\n")
print(format_table(
    ["placement", "read", "map", "shuffle", "reduce", "total", "net shuffle"],
    rows,
))
print("\n=> map/reduce time is bounded by the 700 MHz ARM cores; shuffle "
      "cost depends on where the pimaster placed the workers -- the "
      "compute/placement coupling the paper's scale model exposes.")
