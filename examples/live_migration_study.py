#!/usr/bin/env python
"""Live migration study: pre-copy rounds, dirty rates and downtime.

Implements the paper's stated next step ("we will implement
sophisticated live migration within the PiCloud, to enable the study of
important Cloud resource management aspects in depth", §VI) and runs the
classic characterisation: how do total migration time and downtime react
to the container's page-dirtying rate, and what happens when the dirty
rate exceeds the network's copy bandwidth?

Run:  python examples/live_migration_study.py
"""

from repro import PiCloud, PiCloudConfig
from repro.telemetry.stats import format_table
from repro.virt.migration import live_migrate

config = PiCloudConfig.small(racks=2, pis=2, start_monitoring=False,
                             routing="shortest")
cloud = PiCloud(config)
cloud.boot()

record = cloud.spawn_and_wait("webserver", name="mover", node_id="pi-r0-n0")
container = cloud.container("mover")
runtimes = {name: daemon.runtime for name, daemon in cloud.daemons.items()}

rows = []
destinations = ["pi-r1-n0", "pi-r0-n0"]  # ping-pong between hosts
dirty_rates = [0.0, 100e3, 1e6, 5e6, 20e6]  # bytes/s; link is 12.5 MB/s

for index, dirty_rate in enumerate(dirty_rates):
    container.dirty_rate = dirty_rate
    destination = runtimes[destinations[index % 2]]
    done = live_migrate(container, destination)
    cloud.run_for(3600.0)
    report = done.value
    rows.append([
        f"{dirty_rate / 1e6:.2f} MB/s",
        report.rounds,
        f"{report.total_bytes / 1e6:.1f} MB",
        f"{report.duration_s:.2f} s",
        f"{report.downtime_s * 1e3:.2f} ms",
        "yes" if report.converged else "NO (stop-and-copy)",
    ])

print("Pre-copy live migration of a 30 MiB container over a 100 Mb/s link:\n")
print(format_table(
    ["dirty rate", "rounds", "copied", "total time", "downtime", "converged"],
    rows,
))
print("\n=> downtime stays in the milliseconds while pre-copy converges; "
      "once the dirty rate beats the link (20 MB/s > 12.5 MB/s), the "
      "algorithm falls back to a long stop-and-copy, exactly as on real "
      "testbeds.")
