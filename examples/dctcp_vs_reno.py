#!/usr/bin/env python
"""DCTCP vs Reno vs delay-based CC on the paper-scale fat-tree.

The fluid max-min fabric answers "who gets how much bandwidth" but says
nothing about *queues*: every protocol that shares a bottleneck fairly
looks identical.  The pluggable congestion-control rate model
(``rate_model="cc"``) adds the missing axis -- each flow runs a real
window (Reno AIMD, DCTCP's ECN-fraction EWMA, or a delay-based
variant) against shallow per-direction buffers with an ECN marking
threshold, so buffer-filling and buffer-keeping protocols separate.

Eight elephant senders converge on one receiver of a 224-host fat-tree
(the paper's 14-rack scale).  Expected shape, asserted by
``tests/test_cc.py`` and swept by ``specs/cc_contrast.yaml``:

* **Reno** is ECN-blind: it fills the 300 KB buffer until it overflows,
  then halves -- p99 queue depth pins at the limit and drops are its
  only feedback.
* **DCTCP** backs off proportionally to the fraction of marked time:
  p99 queue depth settles near the 45 KB ECN threshold (< 1/3 of
  Reno's) at >= 0.9x Reno's goodput.
* **delay** backs off on smoothed-RTT inflation and holds the shortest
  queues of all, trading a little goodput for them.
* **maxmin** is the default instantaneous fair-share model: no queue
  state exists at all (zero cost, byte-identical to the historic
  fabric).

Run:  python examples/dctcp_vs_reno.py [--hosts 224] [--duration 12]
"""

import argparse

from repro.campaign.scenarios import run_cc_contrast


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--hosts", type=int, default=224,
                        help="fat-tree hosts (fat-tree k is picked to fit)")
    parser.add_argument("--fat-tree-k", type=int, default=None,
                        help="override the fat-tree arity")
    parser.add_argument("--senders", type=int, default=8,
                        help="elephant senders converging on one receiver")
    parser.add_argument("--flow-mb", type=float, default=60.0,
                        help="bytes per elephant (MB)")
    parser.add_argument("--duration", type=float, default=12.0,
                        help="simulated seconds")
    args = parser.parse_args(argv)

    if args.fat_tree_k is None:
        # Smallest even k with k^3/4 >= hosts.
        k = 4
        while k ** 3 // 4 < args.hosts:
            k += 2
    else:
        k = args.fat_tree_k

    arms = {}
    print(f"{args.senders} senders -> 1 receiver, {args.hosts}-host "
          f"fat-tree (k={k}), {args.duration:.0f}s simulated\n")
    header = (f"{'arm':<14} {'goodput MB/s':>12} {'p99 queue KB':>13} "
              f"{'peak KB':>8} {'ECN frac':>9} {'drops':>6}")
    print(header)
    print("-" * len(header))
    for arm, rate_model, protocol in (
        ("maxmin", "maxmin", "reno"),
        ("cc/reno", "cc", "reno"),
        ("cc/dctcp", "cc", "dctcp"),
        ("cc/delay", "cc", "delay"),
    ):
        out = run_cc_contrast(
            rate_model=rate_model, protocol=protocol,
            hosts=args.hosts, fat_tree_k=k, senders=args.senders,
            flow_bytes=args.flow_mb * 1e6, duration_s=args.duration,
        )
        arms[arm] = out
        print(f"{arm:<14} {out['goodput_bytes_per_s'] / 1e6:>12.2f} "
              f"{out['queue_depth_p99'] / 1e3:>13.1f} "
              f"{out['queue_depth_peak'] / 1e3:>8.1f} "
              f"{out['ecn_mark_frac']:>9.3f} "
              f"{out['drop_events']:>6d}")

    reno, dctcp = arms["cc/reno"], arms["cc/dctcp"]
    p99_ratio = dctcp["queue_depth_p99"] / max(reno["queue_depth_p99"], 1.0)
    goodput_ratio = (dctcp["goodput_bytes_per_s"]
                     / max(reno["goodput_bytes_per_s"], 1.0))
    print(f"\nDCTCP vs Reno: p99 queue ratio {p99_ratio:.2f} "
          f"(want < 0.33), goodput ratio {goodput_ratio:.2f} "
          f"(want >= 0.90)")
    return arms


if __name__ == "__main__":
    main()
