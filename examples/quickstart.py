#!/usr/bin/env python
"""Quickstart: build a PiCloud, spawn containers, look at the dashboard.

This walks the full management chain of the paper's testbed: the
pimaster picks a Pi (placement policy), pushes the container image over
the fabric onto the node's SD card, grants a DHCP lease, starts the LXC
container through the node's REST daemon, registers it in DNS -- then we
point an HTTP load generator at it and read the Fig. 4 control panel.

Run:  python examples/quickstart.py
"""

import random

from repro import PiCloud, PiCloudConfig
from repro.apps import HttpClientApp, HttpServerApp

# A 2x3 cloud keeps the example snappy; swap in PiCloudConfig() for the
# paper's full 4 racks x 14 Pis.
config = PiCloudConfig.small(racks=2, pis=3, start_monitoring=True)
cloud = PiCloud(config)
cloud.boot()
print(f"Booted {config.node_count} Raspberry Pis "
      f"({cloud.describe()['topology']}, routing={config.routing})")

# Spawn a web server and a database through the pimaster.
web = cloud.spawn_and_wait("webserver", name="web-1")
db = cloud.spawn_and_wait("database", name="db-1")
print(f"web-1 placed on {web.node_id} at {web.ip} ({web.fqdn})")
print(f"db-1  placed on {db.node_id} at {db.ip}")

# Serve HTTP from inside the container, load it from another rack.
server = HttpServerApp(cloud.container("web-1"))
client = HttpClientApp(
    cloud.kernels["pi-r1-n0"].netstack, web.ip, rng=random.Random(42)
)
run = client.run_closed_loop(workers=4, duration_s=30.0, think_time_s=0.1)
cloud.run_for(120.0)
summary = run.value
print(f"\nHTTP load: {summary['completed']:.0f} requests, "
      f"p50={summary['latency_p50'] * 1e3:.1f}ms "
      f"p99={summary['latency_p99'] * 1e3:.1f}ms")

# The Fig. 4 web control panel.
print()
print(cloud.dashboard().render())

# Whole-cloud power, from the "single trailing power socket".
print(f"\nTotal draw right now: {cloud.total_watts():.1f} W "
      f"({cloud.energy_joules() / 3600:.2f} Wh since boot)")
