#!/usr/bin/env python
"""Fault injection: watch the testbed absorb (and expose) failures.

The paper cites DC failure studies (Gill et al.) as part of why real
infrastructure behaviour matters.  This example runs two campaigns:

1. A scripted scenario: cut a ToR uplink mid-transfer and watch flows
   fail, re-route and recover.
2. A stochastic MTBF campaign on links, reporting availability.

Run:  python examples/fault_injection.py
"""

import random

from repro import PiCloud, PiCloudConfig
from repro.faults import FaultSchedule, MtbfFaultInjector
from repro.units import mib

config = PiCloudConfig.small(racks=2, pis=3, start_monitoring=False,
                             routing="shortest")
cloud = PiCloud(config)
cloud.boot()

# --- campaign 1: scripted link cut under load -------------------------------
print("campaign 1: scripted uplink cut during a transfer")
flow = cloud.network.transfer("pi-r0-n0", "pi-r1-n0", mib(50), tag="victim")
cloud.run_for(1.0)
used_root = flow.path[2]
schedule = (
    FaultSchedule(cloud)
    .cut_link(2.0, "tor0", used_root)
    .repair_link(60.0, "tor0", used_root)
)
schedule.arm()
cloud.run_for(10.0)
print(f"  flow over {used_root}: state={flow.state.value} "
      f"(cut at t=2s killed it, as TCP would see a path loss)")

retry = cloud.network.transfer("pi-r0-n0", "pi-r1-n0", mib(50), tag="retry")
cloud.run_for(120.0)
print(f"  retry flow: state={retry.state.value}, path via {retry.path[2]} "
      f"(routed around the dead uplink)")
print(f"  fault log: {[(e.time, e.kind) for e in schedule.log]}")

# --- campaign 2: stochastic link MTBF ----------------------------------------
print("\ncampaign 2: stochastic link failures (MTBF 120s, MTTR 30s, 30min)")
injector = MtbfFaultInjector(
    cloud, rng=random.Random(42),
    link_mtbf_s=120.0, mttr_s=30.0, duration_s=1800.0,
)
cloud.run_for(2000.0)
injector.stop()

fails = [e for e in injector.log if e.kind == "link-fail"]
repairs = [e for e in injector.log if e.kind == "link-repair"]
print(f"  {len(fails)} link failures, {len(repairs)} repairs over 30 min")
for event in injector.log[:6]:
    print(f"    t={event.time:7.1f}s {event.kind:12s} {event.target}")
if len(injector.log) > 6:
    print(f"    ... ({len(injector.log) - 6} more)")

up_links = sum(1 for l in cloud.network.links() if l.up)
print(f"  links up at the end: {up_links}/{sum(1 for _ in cloud.network.links())}")
print("\n=> failures have real consequences at every layer -- flows die, "
      "routing heals, and the log quantifies availability.")
