#!/usr/bin/env python
"""The testbed-to-simulator feedback loop (§IV), end to end.

"We also anticipate that results from testbed experiments can be fed
back into the improvement of Cloud simulation and modelling processes."

1. Run a real mixed workload on the PiCloud and capture its flow trace.
2. Fit a generative model (empirical sizes, Poisson rate, traffic matrix).
3. Replay the fitted model on a fresh cloud and compare the per-link
   utilisation fingerprint -- the calibrated model stands in for the
   original workload.

Run:  python examples/calibration_loop.py
"""

import random

from repro import PiCloud, PiCloudConfig
from repro.calibration import (
    FittedWorkload,
    TraceRecorder,
    compare_link_profiles,
    link_utilization_profile,
)
from repro.core.experiments import chatty_pairs
from repro.units import kib


def build():
    config = PiCloudConfig.small(racks=2, pis=3, start_monitoring=False,
                                 routing="shortest")
    cloud = PiCloud(config)
    cloud.boot()
    return cloud


# --- 1. capture a real workload ----------------------------------------------
cloud = build()
recorder = TraceRecorder(cloud.network)
names = []
for index, node in enumerate(["pi-r0-n0", "pi-r0-n1", "pi-r1-n0", "pi-r1-n1"]):
    record = cloud.spawn_and_wait("base", name=f"c{index}", node_id=node)
    names.append(record.name)
sources = chatty_pairs(
    cloud, [("c0", "c2"), ("c1", "c3")], message_bytes=kib(128),
    rate_per_s=10.0,
)
cloud.run_for(300.0)
for source in sources:
    source.stop()
cloud.run_for(10.0)
print(f"captured {len(recorder)} flows over {recorder.span_s:.0f}s "
      f"of mixed management + application traffic")

# --- 2. fit -------------------------------------------------------------------
fitted = FittedWorkload.from_trace(recorder)
print(f"fitted model: {fitted.arrival_rate_per_s:.2f} flows/s, "
      f"{len(fitted.matrix)} (src,dst) pairs, "
      f"sizes {min(fitted.sizes):.0f}..{max(fitted.sizes):.0f} B")

original_profile = link_utilization_profile(cloud.network)

# --- 3. replay on a fresh cloud ------------------------------------------------
replay_cloud = build()
process = fitted.replay(replay_cloud.network, duration_s=300.0,
                        rng=random.Random(99))
replay_cloud.run_for(360.0)
replay_profile = link_utilization_profile(replay_cloud.network)

divergence = compare_link_profiles(original_profile, replay_profile)
print(f"replayed {process.stats['launched']} synthetic flows "
      f"({process.stats['skipped']} skipped)")
print(f"\nlink-utilisation divergence original vs replay: "
      f"{divergence * 100:.2f}% mean absolute")
print("\n=> a model calibrated on the testbed regenerates the workload's "
      "network signature -- the paper's proposed feedback into simulators.")
