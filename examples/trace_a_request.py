#!/usr/bin/env python
"""Walkthrough: causally trace one management request across every layer.

Spawns a single container with tracing on, then uses the repro.trace
query API to answer the questions a latency investigation asks:

1. What did the spawn *cause*?        (children_of, recursive)
2. Which chain set its finish time?   (critical_path)
3. Where did the time actually go?    (latency_by_layer)
4. What else was happening meanwhile? (overlapping)

Finally exports the trace for the Chrome trace viewer
(chrome://tracing or https://ui.perfetto.dev).

Run:  python examples/trace_a_request.py [out.json]
"""

import sys

from repro import PiCloud, PiCloudConfig, TraceConfig

cloud = PiCloud(PiCloudConfig.small(trace=TraceConfig(enabled=True), start_monitoring=False))
cloud.boot()
record = cloud.spawn_and_wait("webserver", name="web-1")
tracer = cloud.tracer

# 1. The spawn's causal subtree: the pimaster's REST call, each retry
# attempt, the daemon's serving span, the LXC create/start, and every
# network flow the exchange put on the fabric.
spawn = tracer.find_spans(name="mgmt.spawn")[0]
print(f"spawn of {record.name!r} on {record.node_id}: "
      f"{spawn.duration(cloud.sim.now):.2f}s simulated, status={spawn.status}")
print("\ncausal subtree:")
for span in tracer.children_of(spawn, recursive=True):
    indent = "  "
    parent_id = span.parent_id
    while parent_id is not None and parent_id != spawn.span_id:
        indent += "  "
        parent_id = tracer.span(parent_id).parent_id
    print(f"{indent}[{span.kind:<11}] {span.name}  "
          f"({span.duration(cloud.sim.now):.3f}s, {span.status})")

# 2. The critical path: the chain of spans that determined when the
# spawn finished -- what a latency optimiser should attack first.
print("\ncritical path:")
for span in tracer.critical_path(spawn):
    print(f"  {span.name}  ends at t={span.end_time:.3f}s")

# 3. Self-time per layer: how much of the spawn's latency each layer
# spent itself (children's time is not double-counted).
print("\nlatency by layer (self-time, seconds):")
for kind, seconds in sorted(tracer.latency_by_layer(spawn).items(),
                            key=lambda kv: -kv[1]):
    print(f"  {kind:<12} {seconds:8.3f}")

# 4. Interval queries: anything overlapping the spawn in simulated time,
# related by causality or not (congestion episodes, faults, ...).
flows = tracer.overlapping(spawn, kind="net")
print(f"\nnetwork flows overlapping the spawn window: {len(flows)}")

out = sys.argv[1] if len(sys.argv) > 1 else "trace_a_request.json"
cloud.write_trace(out)
print(f"\ntrace written to {out} -- load it in chrome://tracing")
