#!/usr/bin/env python
"""Peer-to-peer cloud management -- the §III 'radical departure', running.

No pimaster involved: every Pi runs a gossip agent; spawn requests can
enter at any node and are routed by consistent hashing to their ring
owner.  We kill an owner mid-run and show the ring healing.

Run:  python examples/p2p_management.py
"""

from repro import PiCloud, PiCloudConfig
from repro.mgmt.p2p import P2P_PORT, P2pAgent
from repro.mgmt.rest import RestClient
from repro.units import mib
from repro.virt.image import ContainerImage

config = PiCloudConfig.small(racks=2, pis=3, start_monitoring=False,
                             routing="shortest")
cloud = PiCloud(config)
cloud.boot()

TINY = ContainerImage(name="app", version=1, rootfs_bytes=mib(1),
                      idle_memory_bytes=mib(30))

# Stand up the agents, seeded with one bootstrap peer.
first = cloud.pimaster.node_ids()[0]
seeds = [(first, cloud.pimaster.node_ip(first))]
agents = {}
for index, node in enumerate(cloud.pimaster.node_ids()):
    agent = P2pAgent(
        cloud.kernels[node], cloud.daemons[node].runtime,
        container_subnet=f"10.{100 + index}.0.0/24",
        seeds=seeds, gossip_interval_s=2.0, suspect_timeout_s=12.0,
    )
    agent.seed_image(TINY)
    agents[node] = agent

cloud.run_for(40.0)
any_agent = agents[first]
print(f"membership after 40s of gossip: "
      f"{[m.node_id for m in any_agent.alive_members()]}")

client = RestClient(cloud.kernels["pimaster"].netstack, timeout_s=120.0)


def spawn(entry, name):
    call = client.post(agents[entry].ip, P2P_PORT, "/p2p/spawn",
                       body={"name": name, "image": "app:v1"})
    cloud.run_until_signal(call, max_seconds=600.0)
    response = call.value
    print(f"  spawn {name!r} via {entry}: {response.status} "
          f"-> placed on {response.body.get('node')}")
    return response


print("\ndecentralised spawns (any entry point):")
spawn("pi-r0-n0", "web-a")
spawn("pi-r1-n2", "web-b")
spawn("pi-r0-n2", "web-c")

victim = any_agent.owners_for("web-d")[0].node_id
print(f"\nkilling {victim} (the ring owner of the next name)...")
agents[victim].stop()
cloud.fail_node(victim)
cloud.run_for(60.0)

entry = next(n for n in agents if n != victim)
response = spawn(entry, "web-d")
print(f"\n=> no single point of failure: 'web-d' re-hashed from the dead "
      f"{victim} onto {response.body['node']} automatically.")
