#!/usr/bin/env python
"""Cross-layer study: consolidation saves power but congests the network.

The paper's core argument for a physical scale model (sections III-IV):
"imperfect VM migration or a naive consolidation algorithm may improve
server resource usage at the expense of frequent episodes of network
congestion" -- a ripple effect VM-only simulators cannot show.

We place chatty container pairs spread across racks, measure link
congestion and power, then consolidate aggressively and measure again:
power drops (machines powered off) while the packed hosts' access links
congest.  A session-level user load (``repro.load``) runs against the
same containers in both windows, so the trade-off is also reported the
way an operator would see it: p50/p99 request latency and SLO
error-budget burn, before and after consolidation.

With ``--trace-out trace.json`` the whole run is causally traced: every
migration is a ``virt.migrate`` span whose pre-copy rounds are child
``net.flow`` spans, and congestion episodes appear as ``congestion:*``
spans you can line up against them in the Chrome trace viewer
(chrome://tracing or https://ui.perfetto.dev) -- or query in code::

    migration = cloud.tracer.find_spans(name="virt.migrate")[0]
    cloud.tracer.overlapping(migration, name_prefix="congestion:")

Run:  python examples/consolidation_vs_congestion.py [--trace-out trace.json]
"""

import argparse
import random

from repro import (
    LoadEngine,
    PiCloud,
    PiCloudConfig,
    PoissonArrivals,
    Service,
    ServiceProfile,
    SloObjective,
    TraceConfig,
)
from repro.apps import OnOffTrafficSource
from repro.placement import Consolidator, WorstFit
from repro.units import kib


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="write a causal trace here (.jsonl = span "
                             "records, else Chrome trace-viewer JSON)")
    parser.add_argument("--pairs", type=int, default=3,
                        help="chatty client->server container pairs")
    parser.add_argument("--warmup", type=float, default=120.0,
                        help="simulated seconds of traffic before consolidation")
    parser.add_argument("--settle", type=float, default=600.0,
                        help="simulated seconds given to the consolidation round")
    parser.add_argument("--measure", type=float, default=120.0,
                        help="simulated seconds of traffic after consolidation")
    args = parser.parse_args(argv)

    config = PiCloudConfig.small(
        racks=2, pis=3, start_monitoring=False, routing="shortest",
        trace=TraceConfig(enabled=args.trace_out is not None),
    )
    cloud = PiCloud(config)
    cloud.boot()

    # Containers spread as wide as possible (WorstFit), forming
    # client->server pairs that talk continuously.
    # The receivers double as the "svc" replica pool for the session
    # load: group= resolution tracks them through consolidation moves.
    records = []
    for i in range(2 * args.pairs):
        group = "svc" if i >= args.pairs else None
        records.append(
            cloud.spawn_and_wait("base", name=f"c{i}", policy=WorstFit(),
                                 group=group)
        )
    print("Spread placement:", {r.name: r.node_id for r in records})

    rng = random.Random(7)
    pairs = [(records[i], records[i + args.pairs]) for i in range(args.pairs)]
    sources = []
    for sender, receiver in pairs:
        receiver_container = cloud.container(receiver.name)
        receiver_container.listen(9000)
        sender_container = cloud.container(sender.name)

        def make_send(src=sender_container, dst_ip=receiver.ip):
            return lambda: src.send(dst_ip, 9000, "chunk", size=kib(256))

        sources.append(OnOffTrafficSource(
            cloud.sim, rng, make_send(), on_mean_s=2.0, off_mean_s=0.5,
            rate_per_s=20.0,
        ))

    def congestion_snapshot():
        rows = cloud.network.congestion_report()
        worst = rows[0]
        total_congested = sum(r["congested_s"] for r in rows)
        return worst, total_congested

    # Open-loop user sessions against the svc pool, one engine per
    # measurement window, so latency/SLO numbers are window-local.
    service = Service(
        "svc",
        profile=ServiceProfile(response_bytes=kib(8),
                               requests_per_session_per_s=0.2),
        slo=SloObjective(threshold_s=0.25),
    )

    def run_load(seconds):
        engine = LoadEngine(cloud, [service], PoissonArrivals(40.0))
        report = engine.run(seconds)
        summary = report.fleet_summary()
        _, burn = report.worst_burn()
        return summary, burn

    load_before, burn_before = run_load(args.warmup)
    worst_before, congested_before = congestion_snapshot()
    watts_before = cloud.total_watts()
    print(f"\nBefore consolidation: {watts_before:.1f} W, "
          f"total congested link-seconds={congested_before:.1f} "
          f"(worst: {worst_before['direction']} {worst_before['congested_s']:.1f}s)")
    print(f"  user load: p50={load_before.p50 * 1e3:.1f} ms "
          f"p99={load_before.p99 * 1e3:.1f} ms SLO burn={burn_before:.2f}x")

    # Aggressive consolidation: pack everything, power off empty Pis.
    runtimes = {name: daemon.runtime for name, daemon in cloud.daemons.items()}
    consolidator = Consolidator(cloud.sim, runtimes, power_off_empty=True)
    round_done = consolidator.run_round()
    cloud.run_for(args.settle)
    report = round_done.value
    print(f"\nConsolidation: {report.executed_migrations} migrations, "
          f"{report.total_bytes_moved / 1e6:.0f} MB moved, "
          f"powered off {report.hosts_powered_off}")

    load_after, burn_after = run_load(args.measure)
    worst_after, congested_after = congestion_snapshot()
    watts_after = cloud.total_watts()
    print(f"\nAfter consolidation: {watts_after:.1f} W, "
          f"total congested link-seconds={congested_after:.1f} "
          f"(worst: {worst_after['direction']} {worst_after['congested_s']:.1f}s)")
    print(f"  user load: p50={load_after.p50 * 1e3:.1f} ms "
          f"p99={load_after.p99 * 1e3:.1f} ms SLO burn={burn_after:.2f}x")

    print(f"\nPower saved: {watts_before - watts_after:.1f} W "
          f"({(1 - watts_after / watts_before) * 100:.0f}%)")
    print(f"Congestion added: {congested_after - congested_before:.1f} link-seconds")
    print(f"p99 latency: {load_before.p99 * 1e3:.1f} -> "
          f"{load_after.p99 * 1e3:.1f} ms; "
          f"SLO burn: {burn_before:.2f}x -> {burn_after:.2f}x")
    print("\n=> consolidation trades network congestion for power -- the "
          "cross-layer ripple the PiCloud exists to expose.")

    if args.trace_out:
        path = cloud.write_trace(args.trace_out)
        migrations = cloud.tracer.find_spans(name="virt.migrate")
        episodes = cloud.tracer.find_spans(name_prefix="congestion:")
        linked = sum(
            1 for m in migrations
            if cloud.tracer.overlapping(m, name_prefix="congestion:")
        )
        print(f"\nTrace written to {path}: {len(cloud.tracer.spans)} spans, "
              f"{len(migrations)} migrations, {len(episodes)} congestion "
              f"episodes ({linked} migrations overlap an episode)")
    return cloud


if __name__ == "__main__":
    main()
