#!/usr/bin/env python
"""Cross-layer study: consolidation saves power but congests the network.

The paper's core argument for a physical scale model (sections III-IV):
"imperfect VM migration or a naive consolidation algorithm may improve
server resource usage at the expense of frequent episodes of network
congestion" -- a ripple effect VM-only simulators cannot show.

We place chatty container pairs spread across racks, measure link
congestion and power, then consolidate aggressively and measure again:
power drops (machines powered off) while the packed hosts' access links
congest.

Run:  python examples/consolidation_vs_congestion.py
"""

import random

from repro import PiCloud, PiCloudConfig
from repro.apps import OnOffTrafficSource
from repro.placement import Consolidator, WorstFit
from repro.units import kib

config = PiCloudConfig.small(
    racks=2, pis=3, start_monitoring=False, routing="shortest"
)
cloud = PiCloud(config)
cloud.boot()

# Six containers spread as wide as possible (WorstFit), forming three
# client->server pairs that talk continuously.
records = []
for i in range(6):
    records.append(cloud.spawn_and_wait("base", name=f"c{i}", policy=WorstFit()))
print("Spread placement:", {r.name: r.node_id for r in records})

rng = random.Random(7)
pairs = [(records[i], records[i + 3]) for i in range(3)]
sources = []
for sender, receiver in pairs:
    receiver_container = cloud.container(receiver.name)
    receiver_container.listen(9000)
    sender_container = cloud.container(sender.name)

    def make_send(src=sender_container, dst_ip=receiver.ip):
        return lambda: src.send(dst_ip, 9000, "chunk", size=kib(256))

    sources.append(OnOffTrafficSource(
        cloud.sim, rng, make_send(), on_mean_s=2.0, off_mean_s=0.5,
        rate_per_s=20.0,
    ))


def congestion_snapshot():
    rows = cloud.network.congestion_report()
    worst = rows[0]
    total_congested = sum(r["congested_s"] for r in rows)
    return worst, total_congested


cloud.run_for(120.0)
worst_before, congested_before = congestion_snapshot()
watts_before = cloud.total_watts()
print(f"\nBefore consolidation: {watts_before:.1f} W, "
      f"total congested link-seconds={congested_before:.1f} "
      f"(worst: {worst_before['direction']} {worst_before['congested_s']:.1f}s)")

# Aggressive consolidation: pack everything, power off empty Pis.
runtimes = {name: daemon.runtime for name, daemon in cloud.daemons.items()}
consolidator = Consolidator(cloud.sim, runtimes, power_off_empty=True)
round_done = consolidator.run_round()
cloud.run_for(600.0)
report = round_done.value
print(f"\nConsolidation: {report.executed_migrations} migrations, "
      f"{report.total_bytes_moved / 1e6:.0f} MB moved, "
      f"powered off {report.hosts_powered_off}")

cloud.run_for(120.0)
worst_after, congested_after = congestion_snapshot()
watts_after = cloud.total_watts()
print(f"\nAfter consolidation: {watts_after:.1f} W, "
      f"total congested link-seconds={congested_after:.1f} "
      f"(worst: {worst_after['direction']} {worst_after['congested_s']:.1f}s)")

print(f"\nPower saved: {watts_before - watts_after:.1f} W "
      f"({(1 - watts_after / watts_before) * 100:.0f}%)")
print(f"Congestion added: {congested_after - congested_before:.1f} link-seconds")
print("\n=> consolidation trades network congestion for power -- the "
      "cross-layer ripple the PiCloud exists to expose.")
