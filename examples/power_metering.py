#!/usr/bin/env python
"""Power instrumentation across the whole cloud (§III) and Table I.

Demonstrates the three power claims of the paper:

1. The whole 56-Pi cloud runs from a single power socket (< 200 W).
2. Individual components can be isolated and measured.
3. The x86 equivalent draws ~51x more, plus a cooling burden.

Run:  python examples/power_metering.py
"""

from repro import PiCloud, PiCloudConfig
from repro.core.comparison import testbed_comparison
from repro.telemetry.stats import format_table

# The paper's full 56-node deployment.
cloud = PiCloud(PiCloudConfig(start_monitoring=False))
cloud.boot()

print(f"PiCloud booted: {len(cloud.node_names)} Pis + pimaster")
print(f"Idle draw at the socket board: {cloud.total_watts():.1f} W")
print(f"Nameplate worst case: {cloud.power_meter.peak_possible_watts():.1f} W "
      f"-> fits a single socket: {cloud.power_meter.fits_single_socket()}")

# Load one rack and isolate its machines on the meter.
for node in cloud.rack_inventory()["rack0"]:
    cloud.kernels[node].submit(700e6 * 30)  # 30 s of full-tilt CPU each
cloud.run_for(10.0)

per_machine = cloud.power_meter.per_machine_watts()
loaded = {n: w for n, w in per_machine.items() if w > 2.6}
print(f"\nComponent isolation at t={cloud.sim.now:.0f}s: "
      f"{len(loaded)} machines above idle "
      f"(e.g. pi-r0-n0 = {per_machine['pi-r0-n0']:.1f} W, "
      f"pi-r1-n0 = {per_machine['pi-r1-n0']:.1f} W)")

cloud.run_for(60.0)
wh = cloud.energy_joules() / 3600.0
print(f"Energy since boot: {wh:.1f} Wh over {cloud.sim.now:.0f}s "
      f"(mean {cloud.power_meter.mean_watts():.1f} W)")

# Table I, regenerated.
comparison = testbed_comparison(count=56)
print("\nTable I -- cost breakdown of a 56-server testbed:\n")
rows = [
    [r["testbed"], r["server"], r["power"], r["needs_cooling"]]
    for r in comparison.table()
]
print(format_table(["Testbed", "Server", "Power", "Needs Cooling?"], rows))
print(f"\ncapex ratio: {comparison.cost_ratio:.0f}x | "
      f"power ratio: {comparison.power_ratio:.0f}x | "
      f"x86 with cooling: {comparison.x86_total_with_cooling_watts:,.0f} W "
      f"vs PiCloud {comparison.picloud_total_with_cooling_watts:.0f} W")
